//! Differential suite for the sharded & streaming instance subsystem.
//!
//! The contract under test (see `crates/core/src/shard.rs`,
//! `crates/database/src/snapshot.rs` and `crates/server/src/scatter.rs`):
//!
//! * scatter/gather shard solves return the same resilience and witness
//!   count as the whole-instance solve for every catalogue query, at any
//!   shard count and thread count, and their contingency sets are genuine
//!   minimum contingency sets of the *whole* instance (ids translated
//!   through the shard source-id maps);
//! * the merge handles every dispatch shape: component-minimum queries,
//!   the raw store-generic scan over an unfrozen [`Database`], already-false
//!   and unfalsifiable instances;
//! * snapshots round-trip losslessly — a written-and-reloaded instance
//!   (mmap and buffered) solves to a byte-identical rendered report;
//! * corrupted, truncated and wrong-version snapshot files are rejected
//!   with structured [`snapshot::SnapshotError`] kinds, and `resd` surfaces
//!   them as `"snapshot"` protocol errors without dying;
//! * a scatter across several `resd` processes equals the local solve.

use cq::catalogue;
use database::shard::partition_shards;
use database::snapshot::{self, LoadMode, LoadOptions, WriteOptions};
use database::{evaluate, Database, FrozenDb, TupleId};
use resilience_core::engine::{CompiledQuery, Engine, SolveOptions, SolveReport, SolveScratch};
use resilience_core::shard::{solve_sharded, ShardInstance};
use server::jsonio::{self, report_body, JsonValue};
use server::{Server, ServerConfig};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workloads::Workload;

/// Builds a randomized instance for `q` covering every relation: a random
/// R-graph, saturated unary relations, and a deterministic sprinkling for
/// the other binary and ternary relations (same shape as the solver
/// agreement suite).
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    // `R` is only a graph relation when it is binary (the catalogue also
    // has unary and ternary `R`s).
    let graph_r = q
        .schema()
        .relation_id("R")
        .is_some_and(|r| q.schema().arity(r) == 2);
    let mut db = if graph_r {
        workload.random_graph_relation(q, "R", nodes, density)
    } else {
        Database::for_query(q)
    };
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        let arity = q.schema().arity(rel);
        if arity == 2 && !(graph_r && name == "R") {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        db.insert_named(&name, &[a, b]);
                    }
                }
            }
        }
        if arity == 3 {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 5 + b * 11 + seed).is_multiple_of(3) {
                        db.insert_named(&name, &[a, b, (a + b) % nodes]);
                    }
                }
            }
        }
    }
    db
}

/// Asserts `merged` answers like `whole` on the same instance, and that a
/// merged contingency really is a minimum contingency set of the whole
/// instance.
fn assert_merge_sound(
    name: &str,
    q: &cq::Query,
    db: &Database,
    whole: &SolveReport,
    merged: &SolveReport,
) {
    assert_eq!(merged.resilience, whole.resilience, "{name}: resilience");
    assert_eq!(merged.witnesses, whole.witnesses, "{name}: witnesses");
    if let Some(gamma) = &merged.contingency {
        assert_eq!(
            Some(gamma.len()),
            merged.resilience.as_finite(),
            "{name}: contingency size"
        );
        let deleted: HashSet<TupleId> = gamma.iter().copied().collect();
        assert_eq!(deleted.len(), gamma.len(), "{name}: duplicate ids");
        assert!(
            !evaluate(q, &db.without(&deleted)),
            "{name}: contingency does not falsify"
        );
    }
}

fn solve_whole(compiled: &CompiledQuery, frozen: &FrozenDb) -> SolveReport {
    compiled
        .solve(frozen, &SolveOptions::new())
        .expect("whole solve")
}

#[test]
fn sharded_solves_match_whole_across_the_catalogue() {
    let opts = SolveOptions::new();
    for (i, nq) in catalogue::all_named_queries().into_iter().enumerate() {
        let q = &nq.query;
        let db = random_instance(q, 40 + i as u64, 6, 0.3);
        let frozen = db.freeze();
        let compiled = Engine::compile(q);
        let whole = solve_whole(&compiled, &frozen);
        for k in [1usize, 3] {
            let shards: Vec<ShardInstance> = partition_shards(&frozen, k)
                .into_iter()
                .map(Into::into)
                .collect();
            for threads in [1usize, 2] {
                let merged = solve_sharded(&compiled, &shards, &opts, threads)
                    .unwrap_or_else(|e| panic!("{}: sharded solve failed: {e}", nq.name));
                let label = format!("{} (k={k}, threads={threads})", nq.name);
                assert_merge_sound(&label, q, &db, &whole, &merged.report);
                assert_eq!(merged.shards, shards.len(), "{label}: shard count");
            }
        }
    }
}

#[test]
fn component_and_raw_scan_dispatch_shapes_agree_with_sharding() {
    // Disconnected query: the whole solve dispatches component-wise
    // (Lemma 14 minimum over components), the sharded path must re-derive
    // the same minimum from per-component scatters.
    let q = cq::parse_query("R(x,y), S(z,w)").unwrap();
    let mut db = Database::for_query(&q);
    db.insert_named("R", &[1, 2]);
    db.insert_named("R", &[2, 3]);
    db.insert_named("S", &[10, 11]);
    let frozen = db.freeze();
    let compiled = Engine::compile(&q);
    let whole = solve_whole(&compiled, &frozen);
    let shards: Vec<ShardInstance> = partition_shards(&frozen, 2)
        .into_iter()
        .map(Into::into)
        .collect();
    let merged = solve_sharded(&compiled, &shards, &SolveOptions::new(), 1).unwrap();
    assert_merge_sound("disconnected", &q, &db, &whole, &merged.report);
    assert_eq!(merged.query_components, 2);

    // Raw-scan dispatch: the store-generic solve over the *unfrozen*
    // mutable Database must agree with the gather over frozen shards.
    let mut scratch = SolveScratch::new();
    let raw = compiled
        .solve_store(&db, &SolveOptions::new(), &mut scratch)
        .unwrap();
    assert_merge_sound("raw-scan", &q, &db, &raw, &merged.report);
}

/// Temp directory for this test binary's snapshot files.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shard-suite-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn snapshot_round_trip_is_byte_identical_across_the_catalogue() {
    let dir = temp_dir("roundtrip");
    for (i, nq) in catalogue::all_named_queries().into_iter().enumerate() {
        let q = &nq.query;
        let db = random_instance(q, 100 + i as u64, 6, 0.3);
        let frozen = db.freeze();
        let compiled = Engine::compile(q);
        let whole = solve_whole(&compiled, &frozen);
        let rendered = report_body(&frozen, &whole);
        let path = dir.join(format!("q{i}.snap"));
        snapshot::write(&path, &frozen, &WriteOptions::default()).unwrap();
        for mode in [LoadMode::Mmap, LoadMode::Buffered] {
            let snap = snapshot::load(
                &path,
                &LoadOptions {
                    mode,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: load {mode:?} failed: {e}", nq.name));
            assert_eq!(
                snap.mapped,
                mode == LoadMode::Mmap,
                "{}: backing for {mode:?}",
                nq.name
            );
            let report = solve_whole(&compiled, &snap.db);
            assert_eq!(report, whole, "{}: report after {mode:?} load", nq.name);
            assert_eq!(
                report_body(&snap.db, &report),
                rendered,
                "{}: rendered report after {mode:?} load",
                nq.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a small valid snapshot and returns its path and bytes.
fn valid_snapshot(dir: &Path, name: &str) -> (PathBuf, Vec<u8>) {
    let q = cq::parse_query("R(x,y), R(y,z)").unwrap();
    let mut db = Database::for_query(&q);
    db.insert_named("R", &[1, 2]);
    db.insert_named("R", &[2, 3]);
    db.insert_named("R", &[3, 3]);
    let path = dir.join(name);
    snapshot::write(&path, &db.freeze(), &WriteOptions::default()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn snapshots_reject_corruption_with_structured_errors() {
    let dir = temp_dir("corruption");
    let (path, bytes) = valid_snapshot(&dir, "base.snap");
    let kind_of = |name: &str, mutate: &dyn Fn(&mut Vec<u8>)| -> &'static str {
        let mut copy = bytes.clone();
        mutate(&mut copy);
        let p = dir.join(name);
        std::fs::write(&p, &copy).unwrap();
        snapshot::load(&p, &LoadOptions::default())
            .expect_err("corrupted snapshot must not load")
            .kind()
    };
    assert_eq!(kind_of("magic.snap", &|b| b[0] = b'X'), "bad_magic");
    assert_eq!(
        kind_of("version.snap", &|b| b[8..12]
            .copy_from_slice(&99u32.to_le_bytes())),
        "bad_version"
    );
    assert_eq!(
        kind_of("flip.snap", &|b| {
            let last = b.len() - 1;
            b[last] ^= 0xff;
        }),
        "bad_checksum"
    );
    assert_eq!(
        kind_of("trunc.snap", &|b| b.truncate(bytes.len() - 10)),
        "truncated"
    );
    assert_eq!(
        kind_of("stub.snap", &|b| b.truncate(4)),
        "truncated",
        "shorter than the header"
    );
    // The untouched original still loads.
    assert!(snapshot::load(&path, &LoadOptions::default()).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

fn start_server(config: ServerConfig) -> (SocketAddr, ServerGuard) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (
        addr,
        ServerGuard {
            flag,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[test]
fn resd_loads_snapshots_and_rejects_bad_ones() {
    let dir = temp_dir("resd");
    let (path, bytes) = valid_snapshot(&dir, "chain.snap");
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0"));
    let mut client = server::client::Client::connect_retrying(
        &addr.to_string(),
        server::client::RetryPolicy::standard(),
    )
    .unwrap();
    let (qid, _, _) = client.compile("R(x,y), R(y,z)").unwrap();

    // Loading the snapshot answers like loading the equivalent text.
    let (v, _) = client
        .request(&format!(
            "{{\"op\": \"load\", \"query_id\": \"{qid}\", \"snapshot\": \"{}\"}}",
            jsonio::json_escape(&path.display().to_string())
        ))
        .unwrap();
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    let db_id = v
        .get("db_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert_eq!(v.get("tuples").and_then(JsonValue::as_f64), Some(3.0));
    let (solved, _) = client
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    assert_eq!(solved.get("ok").and_then(JsonValue::as_bool), Some(true));
    let q = cq::parse_query("R(x,y), R(y,z)").unwrap();
    let snap = snapshot::load(&path, &LoadOptions::default()).unwrap();
    let local = solve_whole(&Engine::compile(&q), &snap.db);
    assert_eq!(
        solved
            .get("result")
            .and_then(|r| r.get("resilience"))
            .and_then(JsonValue::as_f64),
        local.resilience.as_finite().map(|k| k as f64),
        "daemon solve over the snapshot differs from the local solve"
    );

    // A corrupted file is a structured protocol error, not a dead server.
    let expect_error_kind = |client: &mut server::client::Client, request: &str, kind: &str| {
        let raw = client.request_raw(request).unwrap();
        let v = jsonio::parse_json(&raw).unwrap();
        assert_eq!(
            v.get("ok").and_then(JsonValue::as_bool),
            Some(false),
            "expected an error for {request}, got {raw}"
        );
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some(kind),
            "{raw}"
        );
    };
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xff;
    let bad_path = dir.join("corrupt.snap");
    std::fs::write(&bad_path, &corrupt).unwrap();
    expect_error_kind(
        &mut client,
        &format!(
            "{{\"op\": \"load\", \"query_id\": \"{qid}\", \"snapshot\": \"{}\"}}",
            jsonio::json_escape(&bad_path.display().to_string())
        ),
        "snapshot",
    );

    // A snapshot written for a different schema is a schema_mismatch.
    let other = cq::parse_query("A(x), T(x,y)").unwrap();
    let mut other_db = Database::for_query(&other);
    other_db.insert_named("A", &[1]);
    other_db.insert_named("T", &[1, 2]);
    let other_path = dir.join("other.snap");
    snapshot::write(&other_path, &other_db.freeze(), &WriteOptions::default()).unwrap();
    expect_error_kind(
        &mut client,
        &format!(
            "{{\"op\": \"load\", \"query_id\": \"{qid}\", \"snapshot\": \"{}\"}}",
            jsonio::json_escape(&other_path.display().to_string())
        ),
        "schema_mismatch",
    );

    // The connection survived all of it.
    let (v, _) = client.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scatter_gather_across_daemons_matches_the_local_solve() {
    let dir = temp_dir("scatter");
    let opts = SolveOptions::new();

    // Connected chain over two data components, and a disconnected query
    // (per-component scatter queries) over the same instance.
    for (tag, text) in [
        ("connected", "R(x,y), S(y,z)"),
        ("disconnected", "R(x,y), S(z,w)"),
    ] {
        let q = cq::parse_query(text).unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("R", &[2, 2]);
        db.insert_named("R", &[10, 11]);
        db.insert_named("S", &[11, 12]);
        let frozen = db.freeze();
        let compiled = Engine::compile(&q);
        let whole = compiled.solve(&frozen, &opts).unwrap();

        let shards = partition_shards(&frozen, 2);
        let mut paths = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let path = dir.join(format!("{tag}-{i}.snap"));
            snapshot::write(
                &path,
                &shard.frozen,
                &WriteOptions {
                    source_ids: Some(&shard.source_ids),
                    ..Default::default()
                },
            )
            .unwrap();
            paths.push(path);
        }
        let path_refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();

        let (addr_a, _guard_a) = start_server(ServerConfig::new("127.0.0.1:0"));
        let (addr_b, _guard_b) = start_server(ServerConfig::new("127.0.0.1:0"));
        let endpoints = [addr_a.to_string(), addr_b.to_string()];
        let merged = server::scatter::scatter_solve(&q, &endpoints, &path_refs, None)
            .unwrap_or_else(|e| panic!("{tag}: scatter failed: {e}"));

        assert_eq!(
            merged.resilience,
            whole.resilience.as_finite(),
            "{tag}: scattered resilience"
        );
        assert_eq!(merged.witnesses, whole.witnesses, "{tag}: witnesses");
        assert_eq!(merged.shards, shards.len(), "{tag}: shard count");
        if let Some(gamma) = &merged.contingency {
            assert_eq!(
                Some(gamma.len()),
                whole.resilience.as_finite(),
                "{tag}: contingency size"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
