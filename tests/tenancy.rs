//! Tenancy suite: per-tenant namespaces, quotas, LRU eviction,
//! cross-connection session tokens and TTL reaping.
//!
//! The contract under test (see `crates/server/src/tenancy.rs`):
//!
//! * handles are scoped by `auth` token — another tenant's id answers
//!   `unauthorized`, nobody's id answers `unknown_handle`;
//! * count quotas evict the least recently used entry (whose id then
//!   answers `unknown_handle`), the byte quota evicts until the ledger
//!   fits, and the session quota is a hard `quota_exceeded` naming the
//!   offending limit;
//! * the `session` verb returns a routing token honoured from **any**
//!   connection under the owning tenant's `auth`, across all three session
//!   dispatch shapes, byte-identical to a local replay;
//! * sessions idle past the server TTL are reaped.

use resilience::core::engine::{Engine, SolveOptions};
use resilience::prelude::*;
use server::client::Client;
use server::dbtext::{parse_database_with_labels, to_text};
use server::jsonio::{self, JsonValue};
use server::{Server, ServerConfig, TenantQuotas};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workloads::Workload;

fn start_server(config: ServerConfig) -> (SocketAddr, ServerGuard) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (
        addr,
        ServerGuard {
            flag,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

const CHAIN: &str = "R(x,y), R(y,z)";
const CHAIN_DB: &str = "R(1,2)\nR(2,3)\nR(3,3)\n";

/// Sends a request expected to fail; returns `(kind, error, parsed)`.
fn expect_error(client: &mut Client, request: &str) -> (String, String, JsonValue) {
    let raw = client.request_raw(request).unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(false),
        "expected an error for {request}, got {raw}"
    );
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let error = v
        .get("error")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    (kind, error, v)
}

fn compile_as(client: &mut Client, auth: &str, id: &str, query: &str) -> String {
    let (v, _) = client
        .request(&format!(
            "{{\"op\": \"compile\", \"auth\": \"{auth}\", \"id\": \"{id}\", \"query\": \"{}\"}}",
            jsonio::json_escape(query)
        ))
        .unwrap();
    v.get("query_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string()
}

fn load_as(client: &mut Client, auth: &str, qid: &str, id: &str, text: &str) -> String {
    let (v, _) = client
        .request(&format!(
            "{{\"op\": \"load\", \"auth\": \"{auth}\", \"query_id\": \"{qid}\", \
             \"id\": \"{id}\", \"text\": \"{}\"}}",
            jsonio::json_escape(text)
        ))
        .unwrap();
    v.get("db_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string()
}

/// Opens a session under `auth`; returns `(session_id, token)`.
fn open_session(client: &mut Client, auth: &str, qid: &str, did: &str) -> (String, String) {
    let (v, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"auth\": \"{auth}\", \"query_id\": \"{qid}\", \
             \"db_id\": \"{did}\"}}"
        ))
        .unwrap();
    let sid = v
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    let token = v
        .get("token")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert!(token.starts_with("tk"), "token shape changed: {token}");
    (sid, token)
}

#[test]
fn cross_tenant_access_is_unauthorized_and_namespaces_are_disjoint() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut alice = Client::connect(addr).unwrap();
    let mut bob = Client::connect(addr).unwrap();

    let qid = compile_as(&mut alice, "alice", "q0", CHAIN);
    let did = load_as(&mut alice, "alice", &qid, "d0", CHAIN_DB);
    let (sid, token) = open_session(&mut alice, "alice", &qid, &did);

    // Bob presenting Alice's handles: unauthorized, with the kind of handle
    // named but nothing about its contents.
    let (kind, error, _) = expect_error(
        &mut bob,
        "{\"op\": \"solve\", \"auth\": \"bob\", \"query_id\": \"q0\", \"db_id\": \"d0\"}",
    );
    assert_eq!(kind, "unauthorized");
    assert!(error.contains("belongs to another tenant"), "{error}");

    // Handles nobody holds stay unknown_handle — the error distinguishes
    // "someone else's" from "nonexistent".
    let (kind, error, _) = expect_error(
        &mut bob,
        "{\"op\": \"solve\", \"auth\": \"bob\", \"query_id\": \"q77\", \"db_id\": \"d77\"}",
    );
    assert_eq!(kind, "unknown_handle");
    assert!(error.contains("unknown query_id"), "{error}");

    // Sessions: by id and by token, both refuse a foreign tenant.
    let (kind, _, _) = expect_error(
        &mut bob,
        &format!("{{\"op\": \"resolve\", \"auth\": \"bob\", \"session_id\": \"{sid}\"}}"),
    );
    assert_eq!(kind, "unauthorized");
    let (kind, error, _) = expect_error(
        &mut bob,
        &format!("{{\"op\": \"resolve\", \"auth\": \"bob\", \"token\": \"{token}\"}}"),
    );
    assert_eq!(kind, "unauthorized");
    assert!(error.contains("session token"), "{error}");
    // The anonymous tenant is just another tenant.
    let (kind, _, _) = expect_error(
        &mut bob,
        &format!("{{\"op\": \"resolve\", \"token\": \"{token}\"}}"),
    );
    assert_eq!(kind, "unauthorized");
    // A token nobody minted is unknown.
    let (kind, _, _) = expect_error(
        &mut bob,
        "{\"op\": \"resolve\", \"auth\": \"bob\", \"token\": \"tk0000000000000000\"}",
    );
    assert_eq!(kind, "unknown_handle");

    // Namespaces are fully disjoint: Bob can register his own q0/d0 without
    // touching Alice's, and each tenant solves its own.
    let qid_b = compile_as(&mut bob, "bob", "q0", "A(x), R(x,y), B(y)");
    let did_b = load_as(&mut bob, "bob", &qid_b, "d0", "A(1)\nR(1,2)\nB(2)\n");
    let (_, raw) = bob
        .request(&format!(
            "{{\"op\": \"solve\", \"auth\": \"bob\", \"query_id\": \"{qid_b}\", \
             \"db_id\": \"{did_b}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert!(raw.contains("\"resilience\": 1"), "{raw}");
    let (_, raw) = alice
        .request(&format!(
            "{{\"op\": \"solve\", \"auth\": \"alice\", \"query_id\": \"{qid}\", \
             \"db_id\": \"{did}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert!(raw.contains("\"resilience\": 2"), "{raw}");

    // Unload is namespace-scoped the same way.
    let (kind, _, _) = expect_error(
        &mut bob,
        "{\"op\": \"unload\", \"auth\": \"bob\", \"db_id\": \"d1\"}",
    );
    assert_eq!(kind, "unknown_handle");
    // Alice's close does not leak to Bob's namespace either.
    let (kind, _, _) = expect_error(
        &mut bob,
        &format!("{{\"op\": \"close\", \"auth\": \"bob\", \"session_id\": \"{sid}\"}}"),
    );
    assert_eq!(kind, "unauthorized");
    alice
        .request(&format!(
            "{{\"op\": \"close\", \"auth\": \"alice\", \"session_id\": \"{sid}\"}}"
        ))
        .unwrap();
}

#[test]
fn session_quota_is_a_hard_limit_naming_the_offender() {
    let quotas = TenantQuotas {
        max_open_sessions: 2,
        ..TenantQuotas::default()
    };
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).quotas(quotas));
    let mut client = Client::connect(addr).unwrap();
    let qid = compile_as(&mut client, "t1", "q0", CHAIN);
    let did = load_as(&mut client, "t1", &qid, "d0", CHAIN_DB);

    let (sid1, _) = open_session(&mut client, "t1", &qid, &did);
    open_session(&mut client, "t1", &qid, &did);
    let (kind, error, v) = expect_error(
        &mut client,
        &format!(
            "{{\"op\": \"session\", \"auth\": \"t1\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\"}}"
        ),
    );
    assert_eq!(kind, "quota_exceeded");
    assert!(error.contains("max_open_sessions"), "{error}");
    assert_eq!(
        v.get("limit").and_then(JsonValue::as_str),
        Some("max_open_sessions")
    );
    assert_eq!(v.get("max").and_then(JsonValue::as_usize), Some(2));

    // Re-opening an existing id replaces, never counts as a new session...
    let (v, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"auth\": \"t1\", \"query_id\": \"{qid}\", \
             \"db_id\": \"{did}\", \"session_id\": \"{sid1}\"}}"
        ))
        .unwrap();
    assert_eq!(
        v.get("session_id").and_then(JsonValue::as_str),
        Some(sid1.as_str())
    );
    // ...and closing one frees a slot.
    client
        .request(&format!(
            "{{\"op\": \"close\", \"auth\": \"t1\", \"session_id\": \"{sid1}\"}}"
        ))
        .unwrap();
    open_session(&mut client, "t1", &qid, &did);

    // The quota is per tenant: another tenant still opens sessions freely.
    let qid2 = compile_as(&mut client, "t2", "q0", CHAIN);
    let did2 = load_as(&mut client, "t2", &qid2, "d0", CHAIN_DB);
    open_session(&mut client, "t2", &qid2, &did2);
}

#[test]
fn count_quotas_evict_lru_and_victims_answer_unknown_handle() {
    let quotas = TenantQuotas {
        max_compiled_queries: 2,
        max_frozen_instances: 2,
        ..TenantQuotas::default()
    };
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).quotas(quotas));
    let mut client = Client::connect(addr).unwrap();

    // Three distinct (non-isomorphic) queries under a 2-entry quota.
    let qa = compile_as(&mut client, "t", "qa", CHAIN);
    let _qb = compile_as(&mut client, "t", "qb", "A(x), R(x,y), B(y)");
    // Touch qa so qb becomes the LRU victim of the next insert.
    let da = load_as(&mut client, "t", &qa, "da", CHAIN_DB);
    let _qc = compile_as(&mut client, "t", "qc", "R(x), S(x,y), R(y)");

    let (kind, error, _) = expect_error(
        &mut client,
        "{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"qb\", \"db_id\": \"da\"}",
    );
    assert_eq!(kind, "unknown_handle", "{error}");
    // The touched entry survived.
    let (_, raw) = client
        .request(&format!(
            "{{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"{qa}\", \
             \"db_id\": \"{da}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert!(raw.contains("\"resilience\": 2"), "{raw}");

    // Same for instances: db quota 2, load three, the untouched one goes.
    let _db = load_as(&mut client, "t", &qa, "db", "R(1,2)\n");
    // Touch da, then push dc in: db is evicted.
    client
        .request(&format!(
            "{{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"{qa}\", \"db_id\": \"{da}\"}}"
        ))
        .unwrap();
    let _dc = load_as(&mut client, "t", &qa, "dc", "R(5,6)\nR(6,7)\n");
    let (kind, _, _) = expect_error(
        &mut client,
        "{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"qa\", \"db_id\": \"db\"}",
    );
    assert_eq!(kind, "unknown_handle");

    // The eviction counters surface in stats.
    let (v, _) = client.request("{\"op\": \"stats\"}").unwrap();
    let tenancy = v
        .get("stats")
        .and_then(|s| s.get("tenancy"))
        .expect("stats carries a tenancy object");
    assert_eq!(
        tenancy.get("evicted_queries").and_then(JsonValue::as_usize),
        Some(1)
    );
    assert_eq!(
        tenancy.get("evicted_dbs").and_then(JsonValue::as_usize),
        Some(1)
    );
}

#[test]
fn byte_quota_evicts_to_fit_and_refuses_oversized_instances() {
    // Learn the instance's resident-byte estimate from an unconstrained
    // daemon's ledger first, so the quota below can be cut exactly.
    let (addr, guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let qid = compile_as(&mut client, "t", "q0", CHAIN);
    load_as(&mut client, "t", &qid, "d0", CHAIN_DB);
    let (v, _) = client.request("{\"op\": \"stats\"}").unwrap();
    let bytes = v
        .get("stats")
        .and_then(|s| s.get("tenancy"))
        .and_then(|t| t.get("resident_bytes"))
        .and_then(JsonValue::as_usize)
        .unwrap();
    assert!(bytes > 0, "resident_bytes estimate is zero");
    drop(client);
    drop(guard);

    // Budget for one instance but not two: the second load evicts the
    // first (LRU), and its handle answers unknown_handle afterwards.
    let quotas = TenantQuotas {
        max_resident_bytes: bytes + bytes / 2,
        ..TenantQuotas::default()
    };
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).quotas(quotas));
    let mut client = Client::connect(addr).unwrap();
    let qid = compile_as(&mut client, "t", "q0", CHAIN);
    load_as(&mut client, "t", &qid, "d0", CHAIN_DB);
    load_as(&mut client, "t", &qid, "d1", CHAIN_DB);
    let (kind, _, _) = expect_error(
        &mut client,
        "{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"q0\", \"db_id\": \"d0\"}",
    );
    assert_eq!(kind, "unknown_handle");
    let (_, raw) = client
        .request("{\"op\": \"solve\", \"auth\": \"t\", \"query_id\": \"q0\", \"db_id\": \"d1\", \"tag\": \"t\"}")
        .unwrap();
    assert!(raw.contains("\"resilience\": 2"), "{raw}");

    // An instance whose own estimate exceeds the whole budget is refused
    // outright, naming the limit.
    let quotas = TenantQuotas {
        max_resident_bytes: bytes - 1,
        ..TenantQuotas::default()
    };
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).quotas(quotas));
    let mut client = Client::connect(addr).unwrap();
    let qid = compile_as(&mut client, "t", "q0", CHAIN);
    let (kind, error, v) = expect_error(
        &mut client,
        &format!(
            "{{\"op\": \"load\", \"auth\": \"t\", \"query_id\": \"{qid}\", \"text\": \"{}\"}}",
            jsonio::json_escape(CHAIN_DB)
        ),
    );
    assert_eq!(kind, "quota_exceeded");
    assert!(error.contains("max_resident_bytes"), "{error}");
    assert_eq!(
        v.get("limit").and_then(JsonValue::as_str),
        Some("max_resident_bytes")
    );
    assert_eq!(v.get("max").and_then(JsonValue::as_usize), Some(bytes - 1));
}

/// The standard randomized instance (mirrors tests/server.rs).
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let r_is_binary = q
        .schema()
        .relation_id("R")
        .is_some_and(|r| q.schema().arity(r) == 2);
    let mut db = if r_is_binary {
        workload.random_graph_relation(q, "R", nodes, density)
    } else {
        Database::for_query(q)
    };
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        let arity = q.schema().arity(rel);
        if arity >= 2 && !(name == "R" && r_is_binary) {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        let values: Vec<u64> = (0..arity as u64)
                            .map(|pos| match pos {
                                0 => a,
                                1 => b,
                                _ => (a + b + pos) % nodes.max(1),
                            })
                            .collect();
                        db.insert_named(&name, &values);
                    }
                }
            }
        }
    }
    db
}

fn query_text(q: &cq::Query) -> String {
    let text = q.to_string();
    match text.split_once(" :- ") {
        Some((_, body)) => body.to_string(),
        None => text,
    }
}

#[test]
fn session_tokens_survive_reconnects_across_all_dispatch_shapes() {
    // For each of the three session dispatch shapes (witness branch-and-
    // bound, p-time flow, raw-scan construction), drive every step over a
    // **fresh connection** addressing the session only by its token; each
    // event must be byte-identical to an uninterrupted local session.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    for (text, seed) in [
        ("R(x,y), R(y,z)", 3u64),
        ("A(x), R(x,y), R(z,y), C(z)", 5),
        (query_text(&catalogue::q_ts3conf().query).leak() as &str, 9),
    ] {
        let q = parse_query(text).unwrap();
        let db = random_instance(&q, seed, 5, 0.35);
        let db_text = to_text(&db);
        let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
        let compiled = Engine::compile(&q);
        let frozen = local_db.freeze();
        let opts = SolveOptions::new();
        let mut local = compiled.session(&frozen).unwrap();

        let mut setup = Client::connect(addr).unwrap();
        let qid = compile_as(&mut setup, "t", &format!("q{seed}"), text);
        let did = load_as(&mut setup, "t", &qid, &format!("d{seed}"), &db_text);
        let (_, token) = open_session(&mut setup, "t", &qid, &did);
        drop(setup);

        let sequence = Workload::new(seed ^ 0xabc).random_deletion_sequence(&q, &local_db, 5);
        for (step, &t) in sequence.iter().enumerate() {
            // Every step arrives on a brand-new connection: the token is
            // the only thing carrying the session across.
            let mut client = Client::connect(addr).unwrap();
            let fact = jsonio::render_tuple(&local_db, t);
            let (_, raw) = client
                .request(&format!(
                    "{{\"op\": \"delete\", \"auth\": \"t\", \"token\": \"{token}\", \
                     \"tuple\": \"{fact}\"}}"
                ))
                .unwrap();
            let changed = local.delete(&[t]);
            let expected = jsonio::mutation_event_json(
                "delete",
                &fact,
                changed,
                local.live_witnesses(),
                local.deleted_count(),
            );
            assert_eq!(
                jsonio::extract_raw(&raw, "event"),
                Some(expected.as_str()),
                "{text} seed {seed} step {step}"
            );
            let (_, raw) = client
                .request(&format!(
                    "{{\"op\": \"resolve\", \"auth\": \"t\", \"token\": \"{token}\"}}"
                ))
                .unwrap();
            let report = local.solve(&opts).unwrap();
            let expected = jsonio::solve_event_json(&local_db, &report, &local.last_solve_stats());
            assert_eq!(
                jsonio::extract_raw(&raw, "event"),
                Some(expected.as_str()),
                "{text} seed {seed} step {step} solve"
            );
        }
    }
}

#[test]
fn idle_sessions_are_reaped_after_the_ttl() {
    let (addr, _guard) = start_server(
        ServerConfig::new("127.0.0.1:0")
            .workers(1)
            .session_ttl_ms(400),
    );
    let mut client = Client::connect(addr).unwrap();
    let qid = compile_as(&mut client, "t", "q0", CHAIN);
    let did = load_as(&mut client, "t", &qid, "d0", CHAIN_DB);
    let (sid, token) = open_session(&mut client, "t", &qid, &did);

    // Activity within the TTL keeps the session alive well past it.
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(120));
        client
            .request(&format!(
                "{{\"op\": \"resolve\", \"auth\": \"t\", \"token\": \"{token}\"}}"
            ))
            .unwrap();
    }

    // Idle past the TTL: reaped — both the id and the token are gone.
    std::thread::sleep(Duration::from_millis(1200));
    let (kind, _, _) = expect_error(
        &mut client,
        &format!("{{\"op\": \"resolve\", \"auth\": \"t\", \"token\": \"{token}\"}}"),
    );
    assert_eq!(kind, "unknown_handle");
    let (kind, _, _) = expect_error(
        &mut client,
        &format!("{{\"op\": \"resolve\", \"auth\": \"t\", \"session_id\": \"{sid}\"}}"),
    );
    assert_eq!(kind, "unknown_handle");
    let (v, _) = client.request("{\"op\": \"stats\"}").unwrap();
    let reaped = v
        .get("stats")
        .and_then(|s| s.get("tenancy"))
        .and_then(|t| t.get("reaped_sessions"))
        .and_then(JsonValue::as_usize)
        .unwrap();
    assert!(reaped >= 1, "reaped_sessions = {reaped}");
}
