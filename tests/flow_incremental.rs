//! Property-based differential tests for the decremental (warm) flow path:
//! on random vertex-capacitated networks, after every capacity-zeroing or
//! restore step the repaired resident flow must have exactly the value a
//! from-scratch min vertex cut reports, and the warm cut vertices must form
//! a valid cut of the current network together with the zeroed vertices.

use flow::{VertexCutNetwork, INF};
use proptest::prelude::*;

/// A random network blueprint: `mids` capacitated middle vertices, random
/// wiring among them plus random source/target attachments, and a step
/// sequence toggling middle vertices dead/alive.
fn network_strategy() -> impl Strategy<Value = (Vec<u64>, Vec<(u64, u64)>, Vec<u64>)> {
    (
        prop::collection::vec(1u64..4, 2..9), // middle-vertex capacities
        prop::collection::vec((0u64..12, 0u64..12), 4..40), // random arcs (mod wiring)
        prop::collection::vec(0u64..9, 1..12), // toggle sequence (mod mids)
    )
}

struct Instance {
    graph: VertexCutNetwork,
    s: usize,
    t: usize,
    /// Built capacity of every vertex (INF for s/t).
    caps: Vec<u64>,
    /// Current alive/dead state of every vertex.
    dead: Vec<bool>,
}

impl Instance {
    /// Builds the vertex-capacitated network: s and t plus `caps.len()`
    /// middle vertices; each random arc `(a, b)` is interpreted over
    /// `mids + 2` slots so some arcs attach to s/t and some connect middles.
    fn build(mid_caps: &[u64], arcs: &[(u64, u64)]) -> Self {
        let mut graph = VertexCutNetwork::new();
        let s = graph.add_vertex(INF);
        let t = graph.add_vertex(INF);
        let mut caps = vec![INF, INF];
        for &c in mid_caps {
            graph.add_vertex(c);
            caps.push(c);
        }
        let n = graph.num_vertices() as u64;
        // Guarantee at least one s->mid and one mid->t attachment so the
        // instance is not trivially disconnected for every draw.
        graph.add_edge(s, 2);
        graph.add_edge(2 + (mid_caps.len() - 1), t);
        for &(a, b) in arcs {
            let from = (a % n) as usize;
            let to = (b % n) as usize;
            if from == to || to == s || from == t {
                continue;
            }
            graph.add_edge(from, to);
        }
        let dead = vec![false; caps.len()];
        Self {
            graph,
            s,
            t,
            caps,
            dead,
        }
    }

    /// Cold reference: a fresh network with the current (dead-aware)
    /// capacities, solved from scratch.
    fn cold(&self) -> VertexCutNetwork {
        let mut g = VertexCutNetwork::new();
        for v in 0..self.caps.len() {
            let cap = if self.dead[v] { 0 } else { self.caps[v] };
            g.add_vertex(cap);
        }
        for e in 0..self.graph.num_edges() {
            let (from, to) = self.graph.edge(e);
            g.add_edge(from, to);
        }
        g
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn repaired_flow_value_matches_from_scratch_after_every_step(
        (mid_caps, arcs, toggles) in network_strategy()
    ) {
        let mut inst = Instance::build(&mid_caps, &arcs);
        let (s, t) = (inst.s, inst.t);
        let warm_value = inst.graph.warm_build(s, t);
        prop_assert_eq!(warm_value, inst.cold().min_vertex_cut_value(s, t));
        for &raw in &toggles {
            let v = 2 + (raw as usize % mid_caps.len());
            inst.dead[v] = !inst.dead[v];
            let cap = if inst.dead[v] { 0 } else { inst.caps[v] };
            inst.graph.warm_set_capacity(v, cap);
            let (value, _paths) = inst.graph.warm_reaugment();
            let cold = inst.cold().min_vertex_cut_value(s, t);
            prop_assert!(value == cold, "warm value {} != cold {} after toggling {}", value, cold, v);
        }
    }

    #[test]
    fn warm_cut_vertices_form_a_valid_cut_after_every_step(
        (mid_caps, arcs, toggles) in network_strategy()
    ) {
        let mut inst = Instance::build(&mid_caps, &arcs);
        let (s, t) = (inst.s, inst.t);
        inst.graph.warm_build(s, t);
        let mut cut = Vec::new();
        for &raw in &toggles {
            let v = 2 + (raw as usize % mid_caps.len());
            inst.dead[v] = !inst.dead[v];
            let cap = if inst.dead[v] { 0 } else { inst.caps[v] };
            inst.graph.warm_set_capacity(v, cap);
            let (value, _paths) = inst.graph.warm_reaugment();
            if value >= INF / 2 {
                // Uncuttable: an all-INF path exists; no finite cut to check.
                continue;
            }
            inst.graph.warm_cut_vertices(&mut cut);
            // Every reported vertex is alive, is not s/t, and the cut pays
            // exactly the flow value.
            let mut paid = 0u64;
            for &v in &cut {
                prop_assert!(v != s && v != t);
                prop_assert!(!inst.dead[v], "cut reports deleted vertex {}", v);
                paid += inst.caps[v];
            }
            prop_assert!(paid == value, "cut capacity {} != flow value {}", paid, value);
            // Zeroing the reported vertices in a cold network disconnects
            // s from t (dead vertices already carry capacity 0 there).
            let mut check = inst.cold();
            for &v in &cut {
                check.set_capacity(v, 0);
            }
            let residual = check.min_vertex_cut_value(s, t);
            prop_assert!(residual == 0, "reported cut leaves residual value {}", residual);
        }
    }
}
