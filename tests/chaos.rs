//! Chaos suite: the daemon must stay fully serviceable after every
//! injected fault. Each scenario drives one failure mode — stalled
//! clients, mid-request disconnects, truncated frames, forced solver
//! panics, expired deadlines, queue overload — and then proves recovery
//! the strongest way available: a fresh `ping` + `solve` whose `result`
//! is **byte-identical** to the locally rendered report.
//!
//! Server-side fault hooks (`"fault": "panic"`, `"fault_sleep_ms"`,
//! `"fault": "expire_deadline"`) only exist under the `faults` feature,
//! which this test target enables via the root dev-dependency; release
//! builds of `resd` never compile them in.

use resilience::core::engine::{Engine, SolveOptions};
use resilience::prelude::*;
use server::client::{Client, RetryPolicy};
use server::dbtext::{parse_database_with_labels, to_text};
use server::faults;
use server::jsonio::{self, JsonValue};
use server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::Workload;

/// `q_vc`: witnesses are the edges of `S` between `R`-nodes, so resilience
/// is minimum vertex cover — NP-hard, the exact branch-and-bound path.
const QVC: &str = "R(x), S(x,y), R(y)";

fn start_server(config: ServerConfig) -> (SocketAddr, ServerGuard) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (
        addr,
        ServerGuard {
            flag,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A small `q_vc` instance (5-cycle plus a chord) with known structure,
/// used for the byte-identity probes.
fn easy_instance_text() -> String {
    "S(0,1)\nS(1,2)\nS(2,3)\nS(3,4)\nS(4,0)\nS(0,2)\n\
     R(0)\nR(1)\nR(2)\nR(3)\nR(4)\n"
        .to_string()
}

/// A dense-ish random `q_vc` instance big enough that exact vertex cover
/// cannot finish inside any test deadline.
fn hard_instance_text() -> String {
    let q = parse_query(QVC).unwrap();
    let mut workload = Workload::new(42);
    let mut db = workload.random_graph_relation(&q, "S", 200, 0.1);
    workload.saturate_unary_relations(&q, &mut db, 200);
    to_text(&db)
}

/// Uploads query + instance and returns `(query_id, db_id, expected)`
/// where `expected` is the locally rendered `report_json` the daemon's
/// `solve` result must reproduce byte for byte (tag `"t"`).
fn upload(client: &mut Client, db_text: &str) -> (String, String, String) {
    let (qid, _, _) = client.compile(QVC).unwrap();
    let (did, _) = client.load_text(&qid, db_text).unwrap();
    let q = parse_query(QVC).unwrap();
    let (db, _) = parse_database_with_labels(&q, db_text).unwrap();
    let frozen = db.freeze();
    let report = Engine::compile(&q)
        .solve(&frozen, &SolveOptions::new())
        .unwrap();
    let expected = jsonio::report_json("t", &frozen, &report);
    (qid, did, expected)
}

/// The post-fault serviceability probe: fresh connection, `ping`, then a
/// `solve` whose result must be byte-identical to the local rendering.
fn assert_serviceable(addr: SocketAddr, qid: &str, did: &str, expected: &str) {
    let mut probe = Client::connect(addr).unwrap();
    let (pong, _) = probe.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    let (_, raw) = probe
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert_eq!(jsonio::extract_raw(&raw, "result"), Some(expected));
}

#[test]
fn stalled_client_does_not_wedge_the_daemon() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client); // workers serve a connection to completion; free the slot

    // A client that writes half a request and then just sits there.
    let stalled = faults::stalled_client(&addr.to_string(), b"{\"op\": \"pi").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_serviceable(addr, &qid, &did, &expected);

    // Completing the line after the long stall still gets an answer: the
    // worker kept accumulating the partial frame across read timeouts.
    let mut stalled = stalled;
    stalled.write_all(b"ng\"}\n").unwrap();
    let mut reader = BufReader::new(stalled);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\": true"), "got: {line}");
    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn mid_request_disconnect_is_survivable_with_one_worker() {
    // One worker: if the dropped connection wedged or killed it, the probe
    // below could never be answered.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client); // free the single worker for the fault + probes

    for _ in 0..3 {
        faults::disconnect_mid_request(&addr.to_string(), b"{\"op\": \"solve\", \"query").unwrap();
        assert_serviceable(addr, &qid, &did, &expected);
    }
}

#[test]
fn truncated_and_pathological_frames_get_structured_errors() {
    let (addr, _guard) = start_server(
        ServerConfig::new("127.0.0.1:0")
            .workers(2)
            .max_line_bytes(4096),
    );
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    // Truncated JSON (complete frame, incomplete document) → parse error.
    let resp =
        faults::send_raw_line(&addr.to_string(), b"{\"op\": \"solve\", \"query_id\": ").unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("parse"));

    // Garbage bytes → parse error, not a hang or crash.
    let resp = faults::send_raw_line(&addr.to_string(), b"\x01\x02garbage\xff").unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("parse"));

    // A depth bomb inside a well-formed frame → structured bad_request.
    let bomb = format!("{}{}{}", "{\"op\": ", "[".repeat(80), "1]}");
    let resp = faults::send_raw_line(&addr.to_string(), bomb.as_bytes()).unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    // A frame over the server's line cap → bad_request, connection closed.
    let oversized = format!("{{\"op\": \"ping\", \"pad\": \"{}\"}}", "x".repeat(8192));
    let resp = faults::send_raw_line(&addr.to_string(), oversized.as_bytes()).unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn forced_solver_panic_answers_internal_and_the_worker_survives() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    for _ in 0..3 {
        // The panic fires inside the dispatch catch_unwind; the same
        // connection and the same (sole) worker must keep serving.
        let raw = client
            .request_raw(&format!(
                "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
                 \"fault\": \"panic\"}}"
            ))
            .unwrap();
        let v = jsonio::parse_json(&raw).unwrap();
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("internal"));

        let (_, raw) = client
            .request(&format!(
                "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
                 \"tag\": \"t\"}}"
            ))
            .unwrap();
        assert_eq!(jsonio::extract_raw(&raw, "result"), Some(expected.as_str()));
    }
    drop(client); // free the single worker for the fresh probe
    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn expired_deadline_returns_cancelled_and_session_state_survives() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    // Solve with an injected already-expired deadline: structured
    // `cancelled`, no bounds (nothing ran).
    let raw = client
        .request_raw(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"fault\": \"expire_deadline\"}}"
        ))
        .unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    assert!(v.get("bounds").is_some_and(JsonValue::is_null));

    // The same holds mid-session, and the session stays usable: the next
    // resolve answers exactly what an untouched local session would.
    client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"session_id\": \"s\"}}"
        ))
        .unwrap();
    let raw = client
        .request_raw("{\"op\": \"resolve\", \"session_id\": \"s\", \"fault\": \"expire_deadline\"}")
        .unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    let (v, _) = client
        .request("{\"op\": \"resolve\", \"session_id\": \"s\"}")
        .unwrap();
    assert!(v.get("event").is_some(), "session did not survive: {v:?}");

    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn hard_instance_cancels_within_the_deadline_with_valid_bounds() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, _, _) = client.compile(QVC).unwrap();
    let (did, _) = client.load_text(&qid, &hard_instance_text()).unwrap();

    let timeout_ms = 400u64;
    let started = Instant::now();
    let raw = client
        .request_raw(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"options\": {{\"timeout_ms\": {timeout_ms}}}}}"
        ))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(timeout_ms + 50),
        "cancellation took {elapsed:?}, deadline was {timeout_ms}ms + 50ms grace"
    );
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    let bounds = v.get("bounds").expect("cancelled response carries bounds");
    assert!(!bounds.is_null(), "expected anytime bounds, got null");
    let lower = bounds.get("lower").and_then(JsonValue::as_usize).unwrap();
    let upper = bounds.get("upper").and_then(JsonValue::as_usize).unwrap();
    let nodes = bounds
        .get("nodes_explored")
        .and_then(JsonValue::as_usize)
        .unwrap();
    assert!(lower >= 1, "dense instance has a positive packing bound");
    assert!(
        lower <= upper,
        "anytime interval inverted: [{lower}, {upper}]"
    );
    assert!(
        nodes > 0,
        "search should have explored nodes before cancelling"
    );

    // The daemon is still fully serviceable afterwards (fresh upload so the
    // identity probe uses a tractable instance).
    drop(client);
    let mut fresh = Client::connect(addr).unwrap();
    let (qid2, did2, expected) = upload(&mut fresh, &easy_instance_text());
    drop(fresh);
    assert_serviceable(addr, &qid2, &did2, &expected);
}

#[test]
fn queue_overload_refuses_with_retry_hint_and_recovers() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).queue_depth(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client); // free the single worker

    // Occupy the worker for a while...
    let addr_str = addr.to_string();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&*addr_str).unwrap();
        let raw = c
            .request_raw("{\"op\": \"ping\", \"fault_sleep_ms\": 600}")
            .unwrap();
        assert!(raw.contains("pong"));
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the queue with an idle connection...
    let filler = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // ...and every further connection is refused immediately with a
    // structured overloaded error carrying a retry hint.
    let mut refused = BufReader::new(TcpStream::connect(addr).unwrap());
    let mut line = String::new();
    refused.read_line(&mut line).unwrap();
    let v = jsonio::parse_json(line.trim()).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("overloaded")
    );
    assert!(v
        .get("retry_after_ms")
        .and_then(JsonValue::as_usize)
        .is_some());

    // A retrying client rides the overload out: refusals and the busy
    // window are absorbed by reconnect + backoff. The queued filler is only
    // drained once the busy request finishes (~600ms), and the server's
    // retry hint is 50ms per attempt, so give the client enough attempts to
    // span the whole window.
    drop(filler);
    let patient = RetryPolicy {
        attempts: 40,
        base_delay_ms: 25,
        max_delay_ms: 100,
    };
    let mut retrying = Client::connect_retrying(&addr.to_string(), patient).unwrap();
    let (pong, _) = retrying.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    drop(retrying); // free the single worker for the fresh probe

    busy.join().unwrap();
    assert_serviceable(addr, &qid, &did, &expected);
}
