//! Chaos suite: the daemon must stay fully serviceable after every
//! injected fault. Each scenario drives one failure mode — stalled
//! clients, mid-request disconnects, truncated frames, forced solver
//! panics, expired deadlines, queue overload — and then proves recovery
//! the strongest way available: a fresh `ping` + `solve` whose `result`
//! is **byte-identical** to the locally rendered report.
//!
//! Server-side fault hooks (`"fault": "panic"`, `"fault_sleep_ms"`,
//! `"fault": "expire_deadline"`) only exist under the `faults` feature,
//! which this test target enables via the root dev-dependency; release
//! builds of `resd` never compile them in.

use resilience::core::engine::{Engine, SolveOptions};
use resilience::prelude::*;
use server::client::{Client, RetryPolicy};
use server::dbtext::{parse_database_with_labels, to_text};
use server::faults;
use server::jsonio::{self, JsonValue};
use server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::Workload;

/// `q_vc`: witnesses are the edges of `S` between `R`-nodes, so resilience
/// is minimum vertex cover — NP-hard, the exact branch-and-bound path.
const QVC: &str = "R(x), S(x,y), R(y)";

fn start_server(config: ServerConfig) -> (SocketAddr, ServerGuard) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (
        addr,
        ServerGuard {
            flag,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A small `q_vc` instance (5-cycle plus a chord) with known structure,
/// used for the byte-identity probes.
fn easy_instance_text() -> String {
    "S(0,1)\nS(1,2)\nS(2,3)\nS(3,4)\nS(4,0)\nS(0,2)\n\
     R(0)\nR(1)\nR(2)\nR(3)\nR(4)\n"
        .to_string()
}

/// A dense-ish random `q_vc` instance big enough that exact vertex cover
/// cannot finish inside any test deadline.
fn hard_instance_text() -> String {
    let q = parse_query(QVC).unwrap();
    let mut workload = Workload::new(42);
    let mut db = workload.random_graph_relation(&q, "S", 200, 0.1);
    workload.saturate_unary_relations(&q, &mut db, 200);
    to_text(&db)
}

/// Uploads query + instance and returns `(query_id, db_id, expected)`
/// where `expected` is the locally rendered `report_json` the daemon's
/// `solve` result must reproduce byte for byte (tag `"t"`).
fn upload(client: &mut Client, db_text: &str) -> (String, String, String) {
    let (qid, _, _) = client.compile(QVC).unwrap();
    let (did, _) = client.load_text(&qid, db_text).unwrap();
    let q = parse_query(QVC).unwrap();
    let (db, _) = parse_database_with_labels(&q, db_text).unwrap();
    let frozen = db.freeze();
    let report = Engine::compile(&q)
        .solve(&frozen, &SolveOptions::new())
        .unwrap();
    let expected = jsonio::report_json("t", &frozen, &report);
    (qid, did, expected)
}

/// The post-fault serviceability probe: fresh connection, `ping`, then a
/// `solve` whose result must be byte-identical to the local rendering.
fn assert_serviceable(addr: SocketAddr, qid: &str, did: &str, expected: &str) {
    let mut probe = Client::connect(addr).unwrap();
    let (pong, _) = probe.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    let (_, raw) = probe
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert_eq!(jsonio::extract_raw(&raw, "result"), Some(expected));
}

#[test]
fn stalled_client_does_not_wedge_the_daemon() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client); // workers serve a connection to completion; free the slot

    // A client that writes half a request and then just sits there.
    let stalled = faults::stalled_client(&addr.to_string(), b"{\"op\": \"pi").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_serviceable(addr, &qid, &did, &expected);

    // Completing the line after the long stall still gets an answer: the
    // worker kept accumulating the partial frame across read timeouts.
    let mut stalled = stalled;
    stalled.write_all(b"ng\"}\n").unwrap();
    let mut reader = BufReader::new(stalled);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\": true"), "got: {line}");
    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn mid_request_disconnect_is_survivable_with_one_worker() {
    // One worker: if the dropped connection wedged or killed it, the probe
    // below could never be answered.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client); // free the single worker for the fault + probes

    for _ in 0..3 {
        faults::disconnect_mid_request(&addr.to_string(), b"{\"op\": \"solve\", \"query").unwrap();
        assert_serviceable(addr, &qid, &did, &expected);
    }
}

#[test]
fn truncated_and_pathological_frames_get_structured_errors() {
    let (addr, _guard) = start_server(
        ServerConfig::new("127.0.0.1:0")
            .workers(2)
            .max_line_bytes(4096),
    );
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    // Truncated JSON (complete frame, incomplete document) → parse error.
    let resp =
        faults::send_raw_line(&addr.to_string(), b"{\"op\": \"solve\", \"query_id\": ").unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("parse"));

    // Garbage bytes → parse error, not a hang or crash.
    let resp = faults::send_raw_line(&addr.to_string(), b"\x01\x02garbage\xff").unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("parse"));

    // A depth bomb inside a well-formed frame → structured bad_request.
    let bomb = format!("{}{}{}", "{\"op\": ", "[".repeat(80), "1]}");
    let resp = faults::send_raw_line(&addr.to_string(), bomb.as_bytes()).unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    // A frame over the server's line cap → bad_request, connection closed.
    let oversized = format!("{{\"op\": \"ping\", \"pad\": \"{}\"}}", "x".repeat(8192));
    let resp = faults::send_raw_line(&addr.to_string(), oversized.as_bytes()).unwrap();
    let v = jsonio::parse_json(&resp).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("bad_request")
    );

    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn forced_solver_panic_answers_internal_and_the_worker_survives() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    for _ in 0..3 {
        // The panic fires inside the dispatch catch_unwind; the same
        // connection and the same (sole) worker must keep serving.
        let raw = client
            .request_raw(&format!(
                "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
                 \"fault\": \"panic\"}}"
            ))
            .unwrap();
        let v = jsonio::parse_json(&raw).unwrap();
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("internal"));

        let (_, raw) = client
            .request(&format!(
                "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
                 \"tag\": \"t\"}}"
            ))
            .unwrap();
        assert_eq!(jsonio::extract_raw(&raw, "result"), Some(expected.as_str()));
    }
    drop(client); // free the single worker for the fresh probe
    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn expired_deadline_returns_cancelled_and_session_state_survives() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    // Solve with an injected already-expired deadline: structured
    // `cancelled`, no bounds (nothing ran).
    let raw = client
        .request_raw(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"fault\": \"expire_deadline\"}}"
        ))
        .unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    assert!(v.get("bounds").is_some_and(JsonValue::is_null));

    // The same holds mid-session, and the session stays usable: the next
    // resolve answers exactly what an untouched local session would.
    client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"session_id\": \"s\"}}"
        ))
        .unwrap();
    let raw = client
        .request_raw("{\"op\": \"resolve\", \"session_id\": \"s\", \"fault\": \"expire_deadline\"}")
        .unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    let (v, _) = client
        .request("{\"op\": \"resolve\", \"session_id\": \"s\"}")
        .unwrap();
    assert!(v.get("event").is_some(), "session did not survive: {v:?}");

    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn hard_instance_cancels_within_the_deadline_with_valid_bounds() {
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, _, _) = client.compile(QVC).unwrap();
    let (did, _) = client.load_text(&qid, &hard_instance_text()).unwrap();

    let timeout_ms = 400u64;
    let started = Instant::now();
    let raw = client
        .request_raw(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \
             \"options\": {{\"timeout_ms\": {timeout_ms}}}}}"
        ))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(timeout_ms + 50),
        "cancellation took {elapsed:?}, deadline was {timeout_ms}ms + 50ms grace"
    );
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("cancelled"));
    let bounds = v.get("bounds").expect("cancelled response carries bounds");
    assert!(!bounds.is_null(), "expected anytime bounds, got null");
    let lower = bounds.get("lower").and_then(JsonValue::as_usize).unwrap();
    let upper = bounds.get("upper").and_then(JsonValue::as_usize).unwrap();
    let nodes = bounds
        .get("nodes_explored")
        .and_then(JsonValue::as_usize)
        .unwrap();
    assert!(lower >= 1, "dense instance has a positive packing bound");
    assert!(
        lower <= upper,
        "anytime interval inverted: [{lower}, {upper}]"
    );
    assert!(
        nodes > 0,
        "search should have explored nodes before cancelling"
    );

    // The daemon is still fully serviceable afterwards (fresh upload so the
    // identity probe uses a tractable instance).
    drop(client);
    let mut fresh = Client::connect(addr).unwrap();
    let (qid2, did2, expected) = upload(&mut fresh, &easy_instance_text());
    drop(fresh);
    assert_serviceable(addr, &qid2, &did2, &expected);
}

#[test]
fn queue_overload_refuses_with_retry_hint_and_recovers() {
    // Admission control is per *request* now, not per connection: with one
    // worker and a one-slot queue, a long-running request plus one queued
    // request mean the next frame — from any connection, idle ones cost
    // nothing — is answered `overloaded` with a retry hint, on a connection
    // that stays open.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1).queue_depth(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client);

    // Occupy the sole worker for a while...
    let addr_str = addr.to_string();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&*addr_str).unwrap();
        let raw = c
            .request_raw("{\"op\": \"ping\", \"fault_sleep_ms\": 600}")
            .unwrap();
        assert!(raw.contains("pong"));
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the one queue slot with a second request...
    let mut filler = TcpStream::connect(addr).unwrap();
    filler.write_all(b"{\"op\": \"ping\"}\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // ...and a further request is refused immediately with a structured
    // overloaded error carrying a retry hint.
    let mut refused = Client::connect(addr).unwrap();
    let raw = refused.request_raw("{\"op\": \"ping\"}").unwrap();
    let v = jsonio::parse_json(&raw).unwrap();
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("overloaded")
    );
    assert!(v
        .get("retry_after_ms")
        .and_then(JsonValue::as_usize)
        .is_some());
    // The refusal did not tear down the connection: the same socket gets
    // answers again once the worker drains (give it the busy window).
    std::thread::sleep(Duration::from_millis(700));
    let (pong, _) = refused.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    drop(refused);

    // The queued filler was answered, not dropped.
    let mut filler = BufReader::new(filler);
    let mut line = String::new();
    filler.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\": true"), "got: {line}");
    drop(filler);

    busy.join().unwrap();

    // A retrying client rides a fresh overload window out on backoff alone.
    let addr_str = addr.to_string();
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(&*addr_str).unwrap();
        let raw = c
            .request_raw("{\"op\": \"ping\", \"fault_sleep_ms\": 400}")
            .unwrap();
        assert!(raw.contains("pong"));
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut filler = TcpStream::connect(addr).unwrap();
    filler.write_all(b"{\"op\": \"ping\"}\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let patient = RetryPolicy {
        attempts: 40,
        base_delay_ms: 25,
        max_delay_ms: 100,
    };
    let mut retrying = Client::connect_retrying(&addr.to_string(), patient).unwrap();
    let (pong, _) = retrying.request("{\"op\": \"ping\"}").unwrap();
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    drop(retrying);
    drop(filler);
    busy.join().unwrap();

    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn slow_loris_and_idle_horde_do_not_delay_solves() {
    // 512 held-open idle keep-alive connections plus a byte-at-a-time
    // slow-loris writer: neither may pin a worker, so a concurrent solve
    // must stay within a bounded factor of the unloaded baseline.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());

    // Baseline: the easy solve with nothing else connected.
    let solve_req = format!(
        "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \"tag\": \"t\"}}"
    );
    let started = Instant::now();
    for _ in 0..3 {
        client.request(&solve_req).unwrap();
    }
    let baseline = started.elapsed() / 3;

    // The idle horde: connected, never writing a byte.
    let horde: Vec<TcpStream> = (0..512)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();

    // The slow loris: one byte of a valid ping every few milliseconds.
    let stop = Arc::new(AtomicBool::new(false));
    let loris_stop = Arc::clone(&stop);
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let frame = b"{\"op\": \"ping\"}\n";
        let mut sent = 0usize;
        while !loris_stop.load(Ordering::SeqCst) {
            s.write_all(&frame[sent..sent + 1]).unwrap();
            sent = (sent + 1) % frame.len();
            std::thread::sleep(Duration::from_millis(2));
        }
        s
    });

    // Solves sampled while the horde sits and the loris trickles.
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    for _ in 0..3 {
        let (_, raw) = client.request(&solve_req).unwrap();
        assert_eq!(jsonio::extract_raw(&raw, "result"), Some(expected.as_str()));
    }
    let loaded = started.elapsed() / 3;

    // Bounded factor: generous (shared CI hardware; the loris thread and
    // 512 sockets add real scheduler noise) but far below the
    // seconds-per-connection a thread-per-connection server would burn.
    let bound = baseline * 20 + Duration::from_millis(500);
    assert!(
        loaded <= bound,
        "solve under idle horde took {loaded:?} (baseline {baseline:?}, bound {bound:?})"
    );

    // The loris's frame completes eventually once we let it finish a whole
    // line quickly — the accumulated partial frame was kept across passes.
    stop.store(true, Ordering::SeqCst);
    let mut s = loris.join().unwrap();
    s.write_all(b"\n{\"op\": \"ping\"}\n").unwrap();
    let mut reader = BufReader::new(s);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(!line.is_empty(), "loris connection got no answer");

    drop(horde);
    assert_serviceable(addr, &qid, &did, &expected);
}

#[test]
fn mid_pipeline_disconnect_leaves_daemon_byte_identical() {
    // A client pipelines several frames, reads only part of the answers and
    // vanishes mid-stream; with one worker, any wedge would be fatal for
    // the probe. The daemon must keep answering byte-identically.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(1));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client);

    for round in 0..3 {
        let mut s = TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for _ in 0..4 {
            burst.push_str("{\"op\": \"ping\"}\n");
        }
        burst.push_str(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \"tag\": \"t\"}}\n"
        ));
        s.write_all(burst.as_bytes()).unwrap();
        if round % 2 == 0 {
            // Read one answer, then vanish with the rest in flight.
            let mut reader = BufReader::new(&s);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"pong\": true"), "got: {line}");
        }
        drop(s);
        assert_serviceable(addr, &qid, &did, &expected);
    }
}

#[test]
fn pipelined_frames_answer_in_arrival_order() {
    // One write carrying many frames: every response arrives, in order,
    // and the solve in the middle is byte-identical to the local report.
    let (addr, _guard) = start_server(ServerConfig::new("127.0.0.1:0").workers(2));
    let mut client = Client::connect(addr).unwrap();
    let (qid, did, expected) = upload(&mut client, &easy_instance_text());
    drop(client);

    let mut s = TcpStream::connect(addr).unwrap();
    let mut burst = String::new();
    burst.push_str("{\"op\": \"ping\"}\n");
    burst.push_str(&format!(
        "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{did}\", \"tag\": \"t\"}}\n"
    ));
    burst.push_str("{\"op\": \"nonsense\"}\n");
    burst.push_str("{\"op\": \"ping\"}\n");
    s.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(s);
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    assert!(read_line().contains("\"pong\": true"));
    let solve = read_line();
    assert_eq!(
        jsonio::extract_raw(solve.trim(), "result"),
        Some(expected.as_str())
    );
    let err = read_line();
    assert!(err.contains("\"bad_request\""), "got: {err}");
    assert!(read_line().contains("\"pong\": true"));
}
