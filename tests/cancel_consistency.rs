//! Interrupted solves must not poison a [`SolveSession`]: after
//! `BudgetExhausted` or `Cancelled`, the session's deletion state, witness
//! counters and caches are untouched, and the next solve answers exactly
//! what a from-scratch solve over the reduced instance answers.
//!
//! The session dispatches through three distinct shapes, all covered here:
//!
//! 1. **zero-deletion** — dispatch on the session's own witness set;
//! 2. **raw-store scan** — component-wise / catalogue targets that need
//!    deletions physically absent (a reduced copy is materialized);
//! 3. **live view** — survivor iteration over the shared witness index,
//!    with a warm-start incumbent when one is cached.

use cq::classify::{Complexity, PtimeAlgorithm};
use database::{Database, TupleId};
use resilience_core::engine::{Engine, Resilience, SolveError, SolveOptions};
use resilience_core::CancelToken;
use std::collections::HashSet;
use std::time::Duration;
use workloads::Workload;

/// NP-hard vertex-cover query (Proposition 9): solves through the exact
/// branch-and-bound, so both node budgets and cancellation apply.
const QVC: &str = "R(x), S(x,y), R(y)";

/// Disconnected P-time query (Section 4.2): its dispatch scans the raw
/// store, which is the one session shape that materializes a reduced copy.
const QCOMP: &str = "A(x), R(x,y), R(z,w), B(w)";

/// A pre-cancelled token: fires before any solving work, the deterministic
/// way to exercise the cancellation paths without racing a real deadline.
fn fired() -> CancelToken {
    let token = CancelToken::new();
    token.cancel();
    token
}

fn vc_instance(nodes: u64, density: f64) -> Database {
    let q = cq::parse_query(QVC).unwrap();
    let mut workload = Workload::new(7);
    let mut db = workload.random_graph_relation(&q, "S", nodes, density);
    workload.saturate_unary_relations(&q, &mut db, nodes);
    db
}

#[test]
fn budget_exhaustion_leaves_the_session_resolvable() {
    let q = cq::parse_query(QVC).unwrap();
    let compiled = Engine::compile(&q);
    let db = vc_instance(24, 0.3);
    let frozen = db.freeze();
    let mut session = compiled.session(&frozen).unwrap();
    let witnesses = session.live_witnesses();
    let tight = SolveOptions::new().node_budget(2);

    // Shape 1: zero deletions. The tight budget fails loudly...
    match session.solve(&tight) {
        Err(SolveError::BudgetExhausted { nodes_explored }) => assert!(nodes_explored <= 2),
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    // ...and leaves no residue: counters unchanged, next solve exact.
    assert_eq!(session.live_witnesses(), witnesses);
    assert_eq!(session.deleted_count(), 0);
    let clean = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
    assert_eq!(session.solve(&SolveOptions::new()).unwrap(), clean);

    // Shape 3: live view (with a cached report, so the re-solve after the
    // failure also exercises the warm-start incumbent path).
    let deleted: Vec<TupleId> = (0..db.num_tuples() as u32)
        .step_by(5)
        .map(TupleId)
        .collect();
    session.delete(&deleted);
    match session.solve(&tight) {
        Err(SolveError::BudgetExhausted { .. }) => {}
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
    assert_eq!(session.deleted_count(), deleted.len());
    let mask: HashSet<TupleId> = deleted.iter().copied().collect();
    let scratch = compiled
        .solve(&db.without(&mask).freeze(), &SolveOptions::new())
        .unwrap();
    let via_session = session.solve(&SolveOptions::new()).unwrap();
    assert_eq!(via_session.resilience, scratch.resilience);
    assert_eq!(via_session.witnesses, scratch.witnesses);
}

#[test]
fn cancellation_leaves_the_session_resolvable_in_every_shape() {
    // Shapes 1 and 3: the exact query.
    let q = cq::parse_query(QVC).unwrap();
    let compiled = Engine::compile(&q);
    let db = vc_instance(24, 0.3);
    let frozen = db.freeze();
    let mut session = compiled.session(&frozen).unwrap();

    match session.solve(&SolveOptions::new().cancel_token(fired())) {
        Err(SolveError::Cancelled { .. }) => {}
        other => panic!("shape 1: expected cancellation, got {other:?}"),
    }
    let clean = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
    assert_eq!(session.solve(&SolveOptions::new()).unwrap(), clean);

    let deleted: Vec<TupleId> = (0..db.num_tuples() as u32)
        .step_by(4)
        .map(TupleId)
        .collect();
    session.delete(&deleted);
    match session.solve(&SolveOptions::new().cancel_token(fired())) {
        Err(SolveError::Cancelled { .. }) => {}
        other => panic!("shape 3: expected cancellation, got {other:?}"),
    }
    let mask: HashSet<TupleId> = deleted.iter().copied().collect();
    let scratch = compiled
        .solve(&db.without(&mask).freeze(), &SolveOptions::new())
        .unwrap();
    let via_session = session.solve(&SolveOptions::new()).unwrap();
    assert_eq!(via_session.resilience, scratch.resilience);
    assert_eq!(via_session.witnesses, scratch.witnesses);

    // A deadline that has already passed behaves like an explicit cancel.
    session.restore(&deleted);
    let expired = SolveOptions::new().cancel_token(CancelToken::with_deadline(Duration::ZERO));
    match session.solve(&expired) {
        Err(SolveError::Cancelled { .. }) => {}
        other => panic!("expired deadline: expected cancellation, got {other:?}"),
    }
    assert_eq!(session.solve(&SolveOptions::new()).unwrap(), clean);

    // Shape 2: the raw-store-scanning dispatch (reduced copy per solve).
    let qc = cq::parse_query(QCOMP).unwrap();
    let compiled = Engine::compile(&qc);
    assert!(
        matches!(
            compiled.classification().complexity,
            Complexity::PTime(PtimeAlgorithm::ComponentWise)
        ),
        "test premise: {QCOMP} must dispatch component-wise, got {}",
        compiled.classification().complexity
    );
    let mut workload = Workload::new(11);
    let mut db = workload.random_graph_relation(&qc, "R", 12, 0.4);
    workload.saturate_unary_relations(&qc, &mut db, 12);
    let frozen = db.freeze();
    let mut session = compiled.session(&frozen).unwrap();
    let deleted: Vec<TupleId> = (0..db.num_tuples() as u32)
        .step_by(3)
        .map(TupleId)
        .collect();
    session.delete(&deleted);
    match session.solve(&SolveOptions::new().cancel_token(fired())) {
        // The token fires before the reduced copy is even built.
        Err(SolveError::Cancelled { partial: None }) => {}
        other => panic!("shape 2: expected pre-work cancellation, got {other:?}"),
    }
    let mask: HashSet<TupleId> = deleted.iter().copied().collect();
    let scratch = compiled
        .solve(&db.without(&mask).freeze(), &SolveOptions::new())
        .unwrap();
    let via_session = session.solve(&SolveOptions::new()).unwrap();
    assert_eq!(via_session.resilience, scratch.resilience);
    assert_eq!(via_session.witnesses, scratch.witnesses);
}

#[test]
fn whatif_batch_cancellation_does_not_disturb_the_session() {
    let q = cq::parse_query(QVC).unwrap();
    let compiled = Engine::compile(&q);
    let db = vc_instance(20, 0.3);
    let frozen = db.freeze();
    let session = compiled.session(&frozen).unwrap();
    let sets: Vec<Vec<TupleId>> = vec![
        vec![],
        vec![TupleId(0)],
        (0..db.num_tuples() as u32)
            .step_by(2)
            .map(TupleId)
            .collect(),
    ];

    // Every hypothetical reports cancellation; none of them mutates the
    // session (what-if sets are overlays by contract).
    let cancelled = session.solve_whatif_batch(&sets, &SolveOptions::new().cancel_token(fired()));
    assert_eq!(cancelled.len(), sets.len());
    for result in &cancelled {
        assert!(
            matches!(result, Err(SolveError::Cancelled { .. })),
            "expected cancellation, got {result:?}"
        );
    }
    assert_eq!(session.deleted_count(), 0);

    // The same batch afterwards answers exactly the from-scratch values.
    let results = session.solve_whatif_batch(&sets, &SolveOptions::new());
    for (set, result) in sets.iter().zip(&results) {
        let mask: HashSet<TupleId> = set.iter().copied().collect();
        let scratch = compiled
            .solve(&db.without(&mask).freeze(), &SolveOptions::new())
            .unwrap();
        let got = result.as_ref().unwrap();
        assert_eq!(got.resilience, scratch.resilience);
        assert_eq!(got.witnesses, scratch.witnesses);
    }
}

#[test]
fn mid_search_deadline_yields_sane_bounds_and_a_live_session() {
    // Dense enough that the exact search cannot finish in 150ms even in
    // release builds, while the deadline is generous enough that debug
    // builds get past witness enumeration and root bounds into the search
    // proper — so the deadline reliably fires mid-search.
    let q = cq::parse_query(QVC).unwrap();
    let compiled = Engine::compile(&q);
    let db = vc_instance(200, 0.1);
    let frozen = db.freeze();
    let mut session = compiled.session(&frozen).unwrap();
    let witnesses = session.live_witnesses();

    let opts =
        SolveOptions::new().cancel_token(CancelToken::with_deadline(Duration::from_millis(150)));
    match session.solve(&opts) {
        Err(SolveError::Cancelled {
            partial: Some(bounds),
        }) => {
            assert!(
                bounds.lower >= 1,
                "dense instance has a positive packing bound"
            );
            if let Some(upper) = bounds.upper {
                assert!(bounds.lower <= upper, "inverted interval");
            }
            assert!(bounds.nodes_explored > 0);
        }
        other => panic!("expected mid-search cancellation with bounds, got {other:?}"),
    }

    // The abandoned search left the session intact: counters agree, and
    // deleting every tuple drains the witnesses and solves instantly.
    assert_eq!(session.live_witnesses(), witnesses);
    let everything: Vec<TupleId> = (0..db.num_tuples() as u32).map(TupleId).collect();
    session.delete(&everything);
    assert_eq!(session.live_witnesses(), 0);
    let report = session.solve(&SolveOptions::new()).unwrap();
    assert_eq!(report.resilience, Resilience::Finite(0));
}
