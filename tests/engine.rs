//! Differential and property tests for the compiled engine API:
//!
//! * (a) solving a `FrozenDb` through `CompiledQuery` returns exactly the
//!   same results as the store-generic path over the mutable `Database`
//!   (`CompiledQuery::solve_store`), on random workloads;
//! * (b) `solve_batch` equals a sequential `solve` loop instance-by-instance;
//! * (c) the two store paths agree on the full named-query catalogue;
//! * structured-result invariants: `Resilience::Unfalsifiable` appears
//!   exactly where the legacy `None` did, and `want_contingency(false)`
//!   never changes the computed value.

use cq::catalogue;
use cq::parse_query;
use database::{Database, FrozenDb, TupleId, WitnessSet};
use proptest::prelude::*;
use resilience_core::engine::{
    CompiledQuery, Engine, Resilience, SolveOptions, SolveReport, SolveScratch,
};
use std::collections::HashSet;
use workloads::Workload;

/// Builds the standard randomized instance used across the test-suite: a
/// random `R`-graph, saturated unary relations, and a deterministic
/// sprinkling of tuples for every other binary relation of the query.
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let r_is_binary = q
        .schema()
        .relation_id("R")
        .is_some_and(|r| q.schema().arity(r) == 2);
    let mut db = if r_is_binary {
        workload.random_graph_relation(q, "R", nodes, density)
    } else {
        Database::for_query(q)
    };
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        let arity = q.schema().arity(rel);
        if arity >= 2 && !(name == "R" && r_is_binary) {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        // Deterministic pseudo-random tuples of any arity.
                        let values: Vec<u64> = (0..arity as u64)
                            .map(|pos| match pos {
                                0 => a,
                                1 => b,
                                _ => (a + b + pos) % nodes.max(1),
                            })
                            .collect();
                        db.insert_named(&name, &values);
                    }
                }
            }
        }
    }
    db
}

/// Solves over the mutable store (no freeze) through the store-generic
/// engine core, with fresh scratch — the legacy one-call shape.
fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

/// Asserts the mutable-store report and the frozen-path report describe the
/// same result.
fn assert_outcome_matches_report(name: &str, outcome: &SolveReport, report: &SolveReport) {
    assert_eq!(
        outcome.resilience, report.resilience,
        "{name}: value mismatch between store and frozen paths"
    );
    assert_eq!(
        outcome.contingency, report.contingency,
        "{name}: contingency mismatch between store and frozen paths"
    );
    assert_eq!(
        outcome.method, report.method,
        "{name}: method mismatch between store and frozen paths"
    );
}

#[test]
fn store_path_agrees_with_frozen_path_on_the_full_catalogue() {
    // (c): every named query of the paper's catalogue, on two random
    // instances each: the mutable-store path and the frozen path must
    // agree exactly (value, contingency, method).
    for nq in catalogue::all_named_queries() {
        let compiled = Engine::compile(&nq.query);
        for seed in [3u64, 11] {
            let db = random_instance(&nq.query, seed, 6, 0.25);
            let outcome = solve_store_once(&compiled, &db);
            let report = compiled
                .solve(&db.freeze(), &SolveOptions::new())
                .unwrap_or_else(|e| panic!("{}: engine failed: {e}", nq.name));
            assert_outcome_matches_report(nq.name, &outcome, &report);
        }
    }
}

#[test]
fn batch_equals_sequential_loop_on_catalogue_queries() {
    // (b) at catalogue scale: a mixed bag of PTIME and NP-complete queries.
    for nq in [
        catalogue::q_chain(),
        catalogue::q_acconf(),
        catalogue::q_aperm(),
        catalogue::z3(),
    ] {
        let compiled = Engine::compile(&nq.query);
        let opts = SolveOptions::new();
        let frozen: Vec<FrozenDb> = (0..24u64)
            .map(|seed| random_instance(&nq.query, seed, 6, 0.22).freeze())
            .collect();
        let batch = compiled.solve_batch(&frozen, &opts);
        assert_eq!(batch.len(), frozen.len());
        for (i, (db, from_batch)) in frozen.iter().zip(&batch).enumerate() {
            let sequential = compiled.solve(db, &opts);
            assert_eq!(
                from_batch, &sequential,
                "{} instance {i}: batch and sequential solves disagree",
                nq.name
            );
        }
    }
}

#[test]
fn contingency_sets_from_the_frozen_path_are_valid() {
    for nq in [catalogue::q_acconf(), catalogue::q_aperm()] {
        let compiled = Engine::compile(&nq.query);
        for seed in [1u64, 2, 3] {
            let db = random_instance(&nq.query, seed, 7, 0.3);
            let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
            if let (Resilience::Finite(value), Some(gamma)) =
                (report.resilience, &report.contingency)
            {
                let gamma: HashSet<TupleId> = gamma.iter().copied().collect();
                assert_eq!(gamma.len(), value, "{}: contingency size", nq.name);
                // Frozen tuple ids reference the original database verbatim.
                let ws = WitnessSet::build(&nq.query, &db);
                assert!(
                    ws.is_contingency_set(&gamma),
                    "{}: invalid contingency from the frozen path",
                    nq.name
                );
                assert!(!database::evaluate(&nq.query, &db.without(&gamma)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn frozen_and_legacy_paths_agree_on_random_chain_instances(
        edges in prop::collection::vec((0..6u64, 0..6u64), 0..14)
    ) {
        // (a) on the NP-complete chain query: exact branch and bound through
        // both paths.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        let compiled = Engine::compile(&q);
        let outcome = solve_store_once(&compiled, &db);
        let report = compiled
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap();
        prop_assert_eq!(outcome.resilience, report.resilience);
        prop_assert_eq!(outcome.contingency, report.contingency);
        prop_assert_eq!(outcome.method, report.method);
    }

    #[test]
    fn frozen_and_legacy_paths_agree_on_random_acconf_instances(
        edges in prop::collection::vec((0..6u64, 0..6u64), 0..12),
        a_vals in prop::collection::vec(0..6u64, 0..6),
        c_vals in prop::collection::vec(0..6u64, 0..6),
    ) {
        // (a) on a PTIME flow query.
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        for &c in &c_vals {
            db.insert_named("C", &[c]);
        }
        let compiled = Engine::compile(&q);
        let outcome = solve_store_once(&compiled, &db);
        let report = compiled
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap();
        prop_assert_eq!(outcome.resilience, report.resilience);
        prop_assert_eq!(outcome.contingency, report.contingency);
        prop_assert_eq!(outcome.method, report.method);
    }

    #[test]
    fn batch_equals_sequential_on_random_instance_sets(
        seeds in prop::collection::vec(0..1000u64, 1..10)
    ) {
        // (b): every batch entry equals its sequential counterpart, for
        // arbitrary batch sizes (including size 1).
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let compiled = Engine::compile(&q);
        let opts = SolveOptions::new();
        let frozen: Vec<FrozenDb> = seeds
            .iter()
            .map(|&s| random_instance(&q, s, 5, 0.3).freeze())
            .collect();
        let batch = compiled.solve_batch(&frozen, &opts);
        for (db, from_batch) in frozen.iter().zip(&batch) {
            prop_assert_eq!(from_batch, &compiled.solve(db, &opts));
        }
    }

    #[test]
    fn want_contingency_off_never_changes_the_value(
        edges in prop::collection::vec((0..6u64, 0..6u64), 0..12),
        a_vals in prop::collection::vec(0..6u64, 0..6),
    ) {
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let with = compiled
            .solve(&frozen, &SolveOptions::new().want_contingency(true))
            .unwrap();
        let without = compiled
            .solve(&frozen, &SolveOptions::new().want_contingency(false))
            .unwrap();
        prop_assert_eq!(with.resilience, without.resilience);
        prop_assert_eq!(with.method, without.method);
        prop_assert!(without.contingency.is_none());
    }

    #[test]
    fn unfalsifiable_maps_exactly_to_legacy_none(
        edges in prop::collection::vec((0..5u64, 0..5u64), 0..10)
    ) {
        // The exogenous query is unfalsifiable whenever it has a witness.
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        let compiled = Engine::compile(&q);
        let outcome = solve_store_once(&compiled, &db);
        let report = compiled
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap();
        prop_assert_eq!(outcome.resilience, report.resilience);
        if db.num_tuples() > 0 {
            prop_assert_eq!(report.resilience, Resilience::Unfalsifiable);
        } else {
            prop_assert_eq!(report.resilience, Resilience::Finite(0));
        }
    }
}
