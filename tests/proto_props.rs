//! Malformed-input property tests for the daemon's decoding layers:
//! `jsonio`'s minimal JSON parser and `dbtext`'s database/fact format.
//!
//! The daemon feeds both parsers bytes from the network, so the properties
//! that matter are totality (no panic, no unbounded work on any input) and
//! faithfulness (whatever parses renders back to the same value). The
//! vendored proptest shim has no string strategies, so strings are built
//! from `u8` palettes.

use proptest::prelude::*;
use server::dbtext;
use server::jsonio::{self, JsonValue};

/// Bytes → characters over a palette chosen to exercise the JSON lexer:
/// quotes, backslashes, braces, digits, whitespace and a multi-byte
/// scalar.
fn soup_char(b: u8) -> char {
    const PALETTE: &[char] = &[
        '{', '}', '[', ']', '"', '\\', ':', ',', 'a', 'z', '0', '9', '-', '.', 'e', '+', ' ', '\n',
        '\t', 't', 'r', 'u', 'f', 'l', 's', 'n', 'µ', '∀',
    ];
    PALETTE[b as usize % PALETTE.len()]
}

/// Bytes → characters that are always legal **inside** a JSON string
/// value (escaping handles the quote and backslash).
fn string_char(b: u8) -> char {
    const PALETTE: &[char] = &[
        'a', 'b', 'c', '"', '\\', '\n', '\t', '\u{8}', ' ', '(', ')', ',', '0', '7', 'µ', '∀',
    ];
    PALETTE[b as usize % PALETTE.len()]
}

/// Deterministically builds a JSON value from a byte budget: structure and
/// leaves are all decided by the bytes, depth is bounded so the value
/// always fits the parser's limits. Numbers are integer-valued so `f64`
/// equality is exact across the round trip.
fn build_value(bytes: &mut std::slice::Iter<'_, u8>, depth: usize) -> JsonValue {
    let tag = *bytes.next().unwrap_or(&0);
    match tag % 6 {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(tag.is_multiple_of(2)),
        2 => JsonValue::Num(f64::from(*bytes.next().unwrap_or(&0)) - 128.0),
        3 => {
            let len = (*bytes.next().unwrap_or(&0) % 8) as usize;
            JsonValue::Str(
                (0..len)
                    .map(|_| string_char(*bytes.next().unwrap_or(&0)))
                    .collect(),
            )
        }
        4 if depth < 4 => {
            let len = (*bytes.next().unwrap_or(&0) % 4) as usize;
            JsonValue::Arr((0..len).map(|_| build_value(bytes, depth + 1)).collect())
        }
        _ if depth < 4 => {
            let len = (*bytes.next().unwrap_or(&0) % 4) as usize;
            JsonValue::Obj(
                (0..len)
                    .map(|i| {
                        let key = format!("k{}{}", i, string_char(*bytes.next().unwrap_or(&0)));
                        (key, build_value(bytes, depth + 1))
                    })
                    .collect(),
            )
        }
        _ => JsonValue::Null,
    }
}

/// Renders a [`JsonValue`] in the same dialect the protocol emits; the
/// parser must accept it and reproduce the value exactly.
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => format!("\"{}\"", jsonio::json_escape(s)),
        JsonValue::Arr(items) => {
            let rows: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", rows.join(", "))
        }
        JsonValue::Obj(fields) => {
            let rows: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", jsonio::json_escape(k), render(v)))
                .collect();
            format!("{{{}}}", rows.join(", "))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the JSON parser — it answers
    /// `Ok`/`Err` and, on success, leaves no trailing input unaccounted.
    #[test]
    fn json_parser_is_total_on_soup(bytes in prop::collection::vec(0u8..255, 0..200)) {
        let text: String = bytes.iter().map(|&b| soup_char(b)).collect();
        let _ = jsonio::parse_json(&text);
    }

    /// Every value the protocol can emit round-trips exactly through
    /// render → parse.
    #[test]
    fn json_round_trips_rendered_values(bytes in prop::collection::vec(0u8..255, 0..120)) {
        let value = build_value(&mut bytes.iter(), 0);
        let parsed = jsonio::parse_json(&render(&value));
        prop_assert_eq!(parsed.as_ref(), Ok(&value));
    }

    /// `json_escape` output always re-parses to the original string, for
    /// any characters including quotes, backslashes and controls.
    #[test]
    fn json_escape_round_trips(bytes in prop::collection::vec(0u8..255, 0..64)) {
        let s: String = bytes.iter().map(|&b| string_char(b)).collect();
        let doc = format!("\"{}\"", jsonio::json_escape(&s));
        let parsed = jsonio::parse_json(&doc);
        prop_assert_eq!(parsed.ok().as_ref().and_then(|v| v.as_str()), Some(s.as_str()));
    }

    /// Nesting past the parser's cap is refused with a `limit:` error (the
    /// daemon reports those as `bad_request`), never a stack overflow.
    #[test]
    fn json_depth_bombs_are_refused(extra in 1usize..240) {
        let n = 64 + extra;
        let doc = format!("{}1{}", "[".repeat(n), "]".repeat(n));
        let err = jsonio::parse_json(&doc).unwrap_err();
        prop_assert!(err.starts_with("limit:"), "unexpected error: {}", err);
    }

    /// Arbitrary text never panics the database parser, and an `Ok` parse
    /// yields at most one tuple per input line.
    #[test]
    fn dbtext_parser_is_total_on_soup(bytes in prop::collection::vec(0u8..255, 0..200)) {
        let q = cq::parse_query("A(x), R(x,y)").unwrap();
        let text: String = bytes.iter().map(|&b| string_char(b)).collect();
        if let Ok(db) = dbtext::parse_database(&q, &text) {
            prop_assert!(db.num_tuples() <= text.lines().count());
        }
    }

    /// Well-formed generated instances parse, round-trip through
    /// `to_text`, and resolve their own facts; unknown labels error
    /// without panicking.
    #[test]
    fn dbtext_round_trips_generated_instances(
        pairs in prop::collection::vec((0u64..50, 0u64..50), 1..40),
        unary in prop::collection::vec(0u64..50, 1..20),
    ) {
        let q = cq::parse_query("A(x), R(x,y)").unwrap();
        let mut text = String::new();
        for x in &unary {
            text.push_str(&format!("A({x})\n"));
        }
        for (x, y) in &pairs {
            text.push_str(&format!("R({x},{y})\n"));
        }
        let (db, labels) = dbtext::parse_database_with_labels(&q, &text).unwrap();
        let re = dbtext::parse_database(&q, &dbtext::to_text(&db)).unwrap();
        prop_assert_eq!(re.num_tuples(), db.num_tuples());
        let frozen = db.freeze();
        let fact = format!("R({},{})", pairs[0].0, pairs[0].1);
        prop_assert!(dbtext::lookup_fact(&q, &labels, &frozen, &fact).is_ok());
        prop_assert!(dbtext::lookup_fact(&q, &labels, &frozen, "R(nolabel,0)").is_err());
    }

    /// Fact resolution is total over soup fact texts.
    #[test]
    fn fact_resolution_is_total_on_soup(bytes in prop::collection::vec(0u8..255, 0..60)) {
        let q = cq::parse_query("A(x), R(x,y)").unwrap();
        let labels = std::collections::HashMap::new();
        let fact: String = bytes.iter().map(|&b| string_char(b)).collect();
        let _ = dbtext::resolve_fact(&q, &labels, &fact);
    }
}
