//! Property-based tests (proptest) over the core invariants of the library:
//!
//! * witness semantics: a reported contingency set really falsifies the
//!   query; resilience never exceeds the number of relevant tuples;
//! * monotonicity: deleting a tuple never increases resilience and never
//!   decreases it by more than one;
//! * flow/exact agreement on random instances of PTIME queries;
//! * minimization is idempotent and preserves equivalence;
//! * domination normal form preserves resilience (Proposition 18);
//! * gadget soundness on random vertex-cover instances.

use cq::domination::normalize;
use cq::homomorphism::{are_equivalent, is_minimal, minimize};
use cq::{classify, parse_query};
use database::{Database, TupleId, WitnessSet};
use proptest::prelude::*;
use resilience_core::engine::{CompiledQuery, Engine, SolveOptions, SolveReport, SolveScratch};
use resilience_core::ExactSolver;
use satgad::{min_vertex_cover_size, UndirectedGraph};
use std::collections::HashSet;

/// Strategy: a random small directed graph given as an edge list over
/// `0..domain`.
fn edges_strategy(domain: u64, max_edges: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..domain, 0..domain), 0..max_edges)
}

fn chain_db(edges: &[(u64, u64)]) -> (cq::Query, Database) {
    let q = parse_query("R(x,y), R(y,z)").unwrap();
    let mut db = Database::for_query(&q);
    for &(a, b) in edges {
        db.insert_named("R", &[a, b]);
    }
    (q, db)
}

/// Solves over the mutable store (no freeze) through the store-generic
/// engine core, with fresh scratch per call.
fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_contingency_sets_falsify_the_query(edges in edges_strategy(6, 14)) {
        let (q, db) = chain_db(&edges);
        let result = ExactSolver::new().resilience(&q, &db);
        if let Some(value) = result.resilience {
            let gamma: HashSet<TupleId> = result.contingency.iter().copied().collect();
            prop_assert_eq!(gamma.len(), value);
            let ws = WitnessSet::build(&q, &db);
            prop_assert!(ws.is_contingency_set(&gamma));
            prop_assert!(!database::evaluate(&q, &db.without(&gamma)));
            prop_assert!(value <= ws.relevant_tuples().len());
        }
    }

    #[test]
    fn deleting_one_tuple_changes_resilience_by_at_most_one(edges in edges_strategy(5, 12)) {
        let (q, db) = chain_db(&edges);
        let solver = ExactSolver::new();
        let full = solver.resilience_value(&q, &db).unwrap();
        for t in db.all_tuples() {
            let deleted: HashSet<TupleId> = [t].into_iter().collect();
            let reduced = solver.resilience_value(&q, &db.without(&deleted)).unwrap();
            prop_assert!(reduced <= full);
            prop_assert!(full <= reduced + 1);
        }
    }

    #[test]
    fn acconf_flow_equals_exact_on_random_instances(
        edges in edges_strategy(6, 12),
        a_vals in prop::collection::vec(0..6u64, 0..6),
        c_vals in prop::collection::vec(0..6u64, 0..6),
    ) {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        for &c in &c_vals {
            db.insert_named("C", &[c]);
        }
        let solver = Engine::compile(&q);
        let flow = solve_store_once(&solver, &db).resilience.as_finite();
        let exact = ExactSolver::new().resilience_value(&q, &db);
        prop_assert_eq!(flow, exact);
    }

    #[test]
    fn permutation_flow_equals_exact_on_random_instances(
        edges in edges_strategy(6, 14),
        a_vals in prop::collection::vec(0..6u64, 0..6),
    ) {
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        let solver = Engine::compile(&q);
        prop_assert_eq!(
            solve_store_once(&solver, &db).resilience.as_finite(),
            ExactSolver::new().resilience_value(&q, &db)
        );
    }

    #[test]
    fn rep_flow_equals_exact_on_random_instances(
        edges in edges_strategy(5, 12),
        a_vals in prop::collection::vec(0..5u64, 0..5),
    ) {
        let q = parse_query("R(x,x), R(x,y), A(y)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        let solver = Engine::compile(&q);
        prop_assert_eq!(
            solve_store_once(&solver, &db).resilience.as_finite(),
            ExactSolver::new().resilience_value(&q, &db)
        );
    }

    #[test]
    fn domination_normal_form_preserves_resilience(
        edges in edges_strategy(5, 10),
        a_vals in prop::collection::vec(0..5u64, 1..5),
    ) {
        // q2 of Example 17: A dominates both R and S.
        let q = parse_query("R(x,y), A(y), R(z,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for &(a, b) in &edges {
            db.insert_named("R", &[a, b]);
            db.insert_named("S", &[b, a]);
        }
        for &a in &a_vals {
            db.insert_named("A", &[a]);
        }
        let normalized = normalize(&q);
        let solver = ExactSolver::new();
        let rho_original = solver.resilience_value(&q, &db);
        let rho_normalized = solver.resilience_value(&normalized, &db);
        prop_assert_eq!(rho_original, rho_normalized);
    }

    #[test]
    fn minimization_is_idempotent_and_preserves_equivalence(
        extra in prop::collection::vec((0..3usize, 0..3usize), 0..4)
    ) {
        // Build a query with a fixed core plus duplicated atoms over a small
        // variable pool; minimization must be idempotent and equivalent.
        let vars = ["x", "y", "z"];
        let mut builder = cq::Query::builder().atom("R", &["x", "y"]).atom("S", &["y", "z"]);
        for (a, b) in extra {
            builder = builder.atom("R", &[vars[a], vars[b]]);
        }
        let q = builder.build();
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        prop_assert_eq!(m1.num_atoms(), m2.num_atoms());
        prop_assert!(is_minimal(&m1));
        prop_assert!(are_equivalent(&q, &m1));
    }

    #[test]
    fn vc_gadget_is_sound_on_random_graphs(
        edge_pairs in prop::collection::vec((0..7usize, 0..7usize), 1..12)
    ) {
        let mut graph = UndirectedGraph::new(7);
        for (u, v) in edge_pairs {
            if u != v {
                graph.add_edge(u, v);
            }
        }
        prop_assume!(graph.num_edges() > 0);
        let gadget = gadgets::vc_qvc::vc_to_qvc(&graph);
        let vc = min_vertex_cover_size(&graph);
        let rho = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        prop_assert_eq!(rho, vc);
    }

    #[test]
    fn classification_does_not_panic_on_random_two_atom_queries(
        args in prop::collection::vec(0..4usize, 4)
    ) {
        // Random two-atom self-join queries over up to four variables: the
        // classifier must always return a verdict without panicking, and the
        // verdict must be stable across calls.
        let vars = ["x", "y", "z", "w"];
        let q = cq::Query::builder()
            .atom("R", &[vars[args[0]], vars[args[1]]])
            .atom("R", &[vars[args[2]], vars[args[3]]])
            .atom("A", &[vars[args[0]]])
            .build();
        let c1 = classify(&q).complexity;
        let c2 = classify(&q).complexity;
        prop_assert_eq!(c1, c2);
    }
}
