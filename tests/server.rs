//! Differential tests for `resd`, the resilience service daemon:
//!
//! * remote `solve` responses are **byte-identical** to the locally rendered
//!   report across the full named-query catalogue;
//! * remote sessions (delete/restore/resolve/reset) echo byte-identical
//!   events and deterministic (sorted) deletion state;
//! * the `batch` and `batch_whatif` verbs match local `solve_batch` /
//!   `Session::solve_whatif_batch` row by row;
//! * ≥ 8 concurrent clients with interleaved sessions each see exactly what
//!   a single-threaded local replay sees.
//!
//! Every comparison goes through `server::jsonio` — the same renderer both
//! `rescli --json` and the daemon use — so "identical" here means identical
//! bytes on the wire, not just equal values.

use resilience::core::engine::{Engine, SolveOptions};
use resilience::prelude::*;
use server::client::Client;
use server::dbtext::{parse_database_with_labels, to_text};
use server::jsonio::{self, JsonValue};
use server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use workloads::Workload;

/// The standard randomized instance used across the test-suite (mirrors
/// tests/session.rs).
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let r_is_binary = q
        .schema()
        .relation_id("R")
        .is_some_and(|r| q.schema().arity(r) == 2);
    let mut db = if r_is_binary {
        workload.random_graph_relation(q, "R", nodes, density)
    } else {
        Database::for_query(q)
    };
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        let arity = q.schema().arity(rel);
        if arity >= 2 && !(name == "R" && r_is_binary) {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        let values: Vec<u64> = (0..arity as u64)
                            .map(|pos| match pos {
                                0 => a,
                                1 => b,
                                _ => (a + b + pos) % nodes.max(1),
                            })
                            .collect();
                        db.insert_named(&name, &values);
                    }
                }
            }
        }
    }
    db
}

/// The parseable body of a (possibly named) query's display form.
fn query_text(q: &cq::Query) -> String {
    let text = q.to_string();
    match text.split_once(" :- ") {
        Some((_, body)) => body.to_string(),
        None => text,
    }
}

/// Starts an in-process daemon on a free loopback port; returns the address
/// and a guard that shuts it down (flag + join) on drop.
fn start_server(workers: usize) -> (SocketAddr, ServerGuard) {
    let server = Server::bind(ServerConfig::new("127.0.0.1:0").workers(workers)).unwrap();
    let addr = server.local_addr().unwrap();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (
        addr,
        ServerGuard {
            flag,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    flag: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[test]
fn remote_solve_is_byte_identical_to_local_across_the_catalogue() {
    let (addr, _guard) = start_server(4);
    let mut client = Client::connect(addr).unwrap();
    let opts = SolveOptions::new();
    for nq in catalogue::all_named_queries() {
        let text = query_text(&nq.query);
        let q = parse_query(&text).unwrap();
        let db_text = to_text(&random_instance(&q, 7, 5, 0.3));
        // Local: the canonical compiled solve over the same uploaded text.
        let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
        let compiled = Engine::compile(&q);
        let local = compiled.solve(&local_db.freeze(), &opts);

        let (qid, _, complexity) = client.compile(&text).unwrap();
        assert_eq!(
            complexity,
            compiled.classification().complexity.to_string(),
            "{}",
            nq.name
        );
        let (db_id, tuples) = client.load_text(&qid, &db_text).unwrap();
        assert_eq!(tuples, local_db.num_tuples(), "{}", nq.name);
        let request = format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\", \"tag\": \"t\"}}"
        );
        match (&local, client.request(&request)) {
            (Ok(report), Ok((_, raw))) => {
                let expected = jsonio::report_json("t", &local_db, report);
                assert_eq!(
                    jsonio::extract_raw(&raw, "result"),
                    Some(expected.as_str()),
                    "{}: remote report differs from local rendering",
                    nq.name
                );
            }
            (Err(e), Err(remote)) => {
                assert_eq!(remote, e.to_string(), "{}", nq.name);
            }
            (local, remote) => panic!("{}: local {local:?} vs remote {remote:?}", nq.name),
        }
    }
}

#[test]
fn remote_batch_matches_local_solve_batch() {
    let (addr, _guard) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    let text = "R(x,y), R(y,z)";
    let q = parse_query(text).unwrap();
    let compiled = Engine::compile(&q);
    let opts = SolveOptions::new();

    let (qid, _, _) = client.compile(text).unwrap();
    let mut db_ids = Vec::new();
    let mut locals = Vec::new();
    for seed in 0..4u64 {
        let db_text = to_text(&random_instance(&q, seed, 6, 0.3));
        let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
        let (db_id, _) = client.load_text(&qid, &db_text).unwrap();
        db_ids.push(db_id);
        locals.push(local_db);
    }
    let frozen: Vec<FrozenDb> = locals.iter().map(Database::freeze).collect();
    let reports = compiled.solve_batch(&frozen, &opts);
    let ids: Vec<String> = db_ids.iter().map(|id| format!("\"{id}\"")).collect();
    let tags: Vec<String> = (0..db_ids.len()).map(|i| format!("\"i{i}\"")).collect();
    let (_, raw) = client
        .request(&format!(
            "{{\"op\": \"batch\", \"query_id\": \"{qid}\", \"db_ids\": [{}], \"tags\": [{}]}}",
            ids.join(", "),
            tags.join(", ")
        ))
        .unwrap();
    let rows: Vec<String> = locals
        .iter()
        .zip(&reports)
        .enumerate()
        .map(|(i, (db, report))| {
            jsonio::report_json(&format!("i{i}"), db, report.as_ref().unwrap())
        })
        .collect();
    let expected = format!("[{}]", rows.join(", "));
    assert_eq!(
        jsonio::extract_raw(&raw, "results"),
        Some(expected.as_str())
    );
}

/// Replays one random delete/restore/solve sequence against a remote
/// session and a local one, asserting byte-identical events at every step;
/// returns the raw event texts (used by the concurrency test to compare
/// against a single-threaded replay).
fn replay_session_differential(
    client: &mut Client,
    text: &str,
    seed: u64,
    steps: usize,
) -> Vec<String> {
    let q = parse_query(text).unwrap();
    let db = random_instance(&q, seed, 5, 0.35);
    let db_text = to_text(&db);
    let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
    let compiled = Engine::compile(&q);
    let frozen = local_db.freeze();
    let opts = SolveOptions::new();
    let mut local = compiled.session(&frozen).unwrap();

    let (qid, _, _) = client.compile(text).unwrap();
    let (db_id, _) = client.load_text(&qid, &db_text).unwrap();
    let (resp, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\", \
             \"session_id\": \"sess-{seed}\"}}"
        ))
        .unwrap();
    assert_eq!(
        resp.get("witnesses").and_then(JsonValue::as_usize),
        Some(local.total_witnesses())
    );
    let sid = resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();

    let sequence = Workload::new(seed ^ 0xabc).random_deletion_sequence(&q, &local_db, steps);
    let mut events = Vec::new();
    for (step, &t) in sequence.iter().enumerate() {
        // Mutation: delete this step's tuple, with an interleaved restore of
        // an earlier one every third step.
        let mut mutations = vec![("delete", t)];
        if step % 3 == 2 {
            mutations.push(("restore", sequence[step / 2]));
        }
        for (verb, t) in mutations {
            let fact = jsonio::render_tuple(&local_db, t);
            let (resp, raw) = client
                .request(&format!(
                    "{{\"op\": \"{verb}\", \"session_id\": \"{sid}\", \"tuple\": \"{fact}\"}}"
                ))
                .unwrap();
            let changed = if verb == "delete" {
                local.delete(&[t])
            } else {
                local.restore(&[t])
            };
            let expected = jsonio::mutation_event_json(
                verb,
                &fact,
                changed,
                local.live_witnesses(),
                local.deleted_count(),
            );
            let raw_event = jsonio::extract_raw(&raw, "event").unwrap().to_string();
            assert_eq!(raw_event, expected, "seed {seed} step {step} {verb}");
            // The echoed deletion state is the sorted local state.
            let echoed: Vec<String> = resp
                .get("deleted")
                .and_then(JsonValue::as_array)
                .unwrap()
                .iter()
                .filter_map(JsonValue::as_str)
                .map(str::to_string)
                .collect();
            assert_eq!(
                echoed,
                jsonio::render_contingency(&local_db, &local.deleted_tuples()),
                "seed {seed} step {step}: deleted echo"
            );
            events.push(raw_event);
        }
        // Solve (twice every few steps to cover the replay path remotely).
        let solves = if step % 4 == 3 { 2 } else { 1 };
        for _ in 0..solves {
            let response = client.request(&format!(
                "{{\"op\": \"resolve\", \"session_id\": \"{sid}\"}}"
            ));
            match (local.solve(&opts), response) {
                (Ok(report), Ok((_, raw))) => {
                    let expected =
                        jsonio::solve_event_json(&local_db, &report, &local.last_solve_stats());
                    let raw_event = jsonio::extract_raw(&raw, "event").unwrap().to_string();
                    assert_eq!(raw_event, expected, "seed {seed} step {step} solve");
                    events.push(raw_event);
                }
                (Err(e), Err(remote)) => assert_eq!(remote, e.to_string()),
                (local, remote) => {
                    panic!("seed {seed} step {step}: local {local:?} vs remote {remote:?}")
                }
            }
        }
    }
    // Reset round-trips too.
    let (_, raw) = client
        .request(&format!("{{\"op\": \"reset\", \"session_id\": \"{sid}\"}}"))
        .unwrap();
    local.reset();
    let expected = jsonio::reset_event_json(local.live_witnesses());
    assert_eq!(jsonio::extract_raw(&raw, "event"), Some(expected.as_str()));
    events.push(expected);
    let (resp, _) = client
        .request(&format!("{{\"op\": \"close\", \"session_id\": \"{sid}\"}}"))
        .unwrap();
    assert_eq!(
        resp.get("closed").and_then(JsonValue::as_str),
        Some(sid.as_str())
    );
    events
}

#[test]
fn remote_sessions_replay_byte_identically() {
    let (addr, _guard) = start_server(2);
    // Witness-driven (NP-complete chain), p-time flow (q_ACconf), and a
    // raw-store-scanning catalogue construction (q_TS3conf) — the three
    // dispatch shapes a session can take.
    for (text, seed) in [
        ("R(x,y), R(y,z)", 3u64),
        ("A(x), R(x,y), R(z,y), C(z)", 5),
        (query_text(&catalogue::q_ts3conf().query).leak() as &str, 9),
    ] {
        let mut client = Client::connect(addr).unwrap();
        replay_session_differential(&mut client, text, seed, 6);
    }
}

#[test]
fn concurrent_clients_match_single_threaded_replays() {
    // ≥ 8 client threads with interleaved sessions against one daemon: each
    // client's event stream must equal the event stream of a fresh
    // single-connection replay of the same (query, seed) workload — i.e.
    // concurrency changes nothing about any client's results.
    let (addr, _guard) = start_server(4);
    let workloads: Vec<(&str, u64)> = (0..8)
        .map(|i| {
            let text = if i % 2 == 0 {
                "R(x,y), R(y,z)"
            } else {
                "A(x), R(x,y), R(z,y), C(z)"
            };
            (text, 11 + i as u64)
        })
        .collect();
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|&(text, seed)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    replay_session_differential(&mut client, text, seed, 5)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Sequential replays on a fresh connection; the daemon still has the
    // concurrent runs' registry entries, which must not matter.
    for (&(text, seed), events) in workloads.iter().zip(&concurrent) {
        let mut client = Client::connect(addr).unwrap();
        let replay = replay_session_differential(&mut client, text, seed, 5);
        assert_eq!(&replay, events, "{text} seed {seed}");
    }
}

#[test]
fn remote_batch_whatif_matches_local_batched_and_sequential_solves() {
    let (addr, _guard) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    let text = "R(x,y), R(y,z)";
    let q = parse_query(text).unwrap();
    let db = random_instance(&q, 21, 6, 0.35);
    let db_text = to_text(&db);
    let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
    let compiled = Engine::compile(&q);
    let frozen = local_db.freeze();
    let opts = SolveOptions::new();
    let local = compiled.session(&frozen).unwrap();

    let (qid, _, _) = client.compile(text).unwrap();
    let (db_id, _) = client.load_text(&qid, &db_text).unwrap();
    let (resp, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    let sid = resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();

    let sequence = Workload::new(99).random_deletion_sequence(&q, &local_db, 6);
    if sequence.len() < 3 {
        return; // degenerate random instance
    }
    let sets: Vec<Vec<TupleId>> = vec![
        vec![sequence[0]],
        vec![sequence[1], sequence[2]],
        Vec::new(),
        sequence.clone(),
    ];
    let sets_json: Vec<String> = sets
        .iter()
        .map(|set| {
            let facts: Vec<String> = set
                .iter()
                .map(|&t| format!("\"{}\"", jsonio::render_tuple(&local_db, t)))
                .collect();
            format!("[{}]", facts.join(", "))
        })
        .collect();
    let (_, raw) = client
        .request(&format!(
            "{{\"op\": \"batch_whatif\", \"session_id\": \"{sid}\", \"sets\": [{}]}}",
            sets_json.join(", ")
        ))
        .unwrap();
    let local_batch = local.solve_whatif_batch(&sets, &opts);
    let rows: Vec<String> = local_batch
        .iter()
        .map(|r| format!("{{{}}}", jsonio::report_body(&frozen, r.as_ref().unwrap())))
        .collect();
    let expected = format!("[{}]", rows.join(", "));
    assert_eq!(
        jsonio::extract_raw(&raw, "results"),
        Some(expected.as_str())
    );

    // And each row equals an independent sequential session solve.
    for (set, row) in sets.iter().zip(&local_batch) {
        let mut clone = local.clone();
        clone.delete(set);
        let seq = clone.solve(&SolveOptions::new().warm_start(false)).unwrap();
        let row = row.as_ref().unwrap();
        assert_eq!(row.resilience, seq.resilience);
        assert_eq!(row.witnesses, seq.witnesses);
    }
}

#[test]
fn protocol_errors_are_structured() {
    let (addr, _guard) = start_server(1);
    let mut client = Client::connect(addr).unwrap();
    // Malformed JSON.
    let raw = client.request_raw("{nope").unwrap();
    assert!(raw.contains("\"ok\": false"), "{raw}");
    assert!(raw.contains("\"kind\": \"parse\""), "{raw}");
    // Unknown op / handle.
    assert!(client
        .request("{\"op\": \"frobnicate\"}")
        .unwrap_err()
        .contains("unknown op"));
    assert!(client
        .request("{\"op\": \"solve\", \"query_id\": \"q999\", \"db_id\": \"d0\"}")
        .unwrap_err()
        .contains("unknown query_id"));
    // Bad query text and bad facts surface the shared parser's messages.
    assert!(client
        .request("{\"op\": \"compile\", \"query\": \"???\"}")
        .unwrap_err()
        .contains("could not parse query"));
    let (qid, _, _) = client.compile("R(x,y), R(y,z)").unwrap();
    let (db_id, _) = client.load_text(&qid, "R(1,2)\nR(2,3)\n").unwrap();
    let (resp, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    let sid = resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert!(client
        .request(&format!(
            "{{\"op\": \"delete\", \"session_id\": \"{sid}\", \"tuple\": \"R(9,9)\"}}"
        ))
        .unwrap_err()
        .contains("no such tuple"));
    assert!(client
        .request(&format!(
            "{{\"op\": \"delete\", \"session_id\": \"{sid}\", \"tuple\": \"Z(1,2)\"}}"
        ))
        .unwrap_err()
        .contains("relation Z"));
    // Budget exhaustion is a structured error, mirroring SolveError.
    let raw = client
        .request_raw(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\", \
             \"options\": {{\"node_budget\": 0}}}}"
        ))
        .unwrap();
    assert!(
        raw.contains("\"kind\": \"budget_exhausted\"") || raw.contains("\"ok\": true"),
        "{raw}"
    );
    // Unknown options are rejected.
    assert!(client
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\", \
             \"options\": {{\"frob\": 1}}}}"
        ))
        .unwrap_err()
        .contains("unknown option"));
}

#[test]
fn auto_ids_never_replace_explicit_registrations() {
    // Regression: the auto-id counters must skip ids a client registered
    // explicitly — client A's "q0"/"d0" must survive client B registering
    // without an id. (Two workers: both clients hold their connections open
    // at once, and the pool serves at most one connection per worker.)
    let (addr, _guard) = start_server(2);
    let mut a = Client::connect(addr).unwrap();
    let (_, raw) = a
        .request("{\"op\": \"compile\", \"id\": \"q0\", \"query\": \"R(x,y), R(y,z)\"}")
        .unwrap();
    assert!(raw.contains("\"query_id\": \"q0\""));
    let (db_id, _) = a.load_text("q0", "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
    assert_eq!(db_id, "d0");

    let mut b = Client::connect(addr).unwrap();
    let (qid_b, _, _) = b.compile("A(x), R(x,y), B(y)").unwrap();
    assert_ne!(qid_b, "q0", "auto id replaced an explicit registration");
    let (db_b, _) = b.load_text(&qid_b, "A(1)\nR(1,2)\nB(2)\n").unwrap();
    assert_ne!(db_b, "d0");

    // A's handles still answer for A's query: the chain instance has
    // resilience 2 under the chain query.
    let (_, raw) = a
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"q0\", \"db_id\": \"{db_id}\", \"tag\": \"t\"}}"
        ))
        .unwrap();
    assert!(raw.contains("\"resilience\": 2"), "{raw}");

    // Explicit sessions are not replaced by auto session ids either.
    let (resp, _) = a
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"q0\", \"db_id\": \"{db_id}\", \
             \"session_id\": \"s0\"}}"
        ))
        .unwrap();
    assert_eq!(
        resp.get("session_id").and_then(JsonValue::as_str),
        Some("s0")
    );
    let (resp, _) = a
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"q0\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    let auto_sid = resp.get("session_id").and_then(JsonValue::as_str).unwrap();
    assert_ne!(auto_sid, "s0");
}

#[test]
fn unload_evicts_registry_entries_but_open_sessions_survive() {
    let (addr, _guard) = start_server(1);
    let mut client = Client::connect(addr).unwrap();
    let (qid, _, _) = client.compile("R(x,y), R(y,z)").unwrap();
    let (db_id, _) = client.load_text(&qid, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
    let (resp, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    let sid = resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();

    // Unknown handles are rejected atomically: nothing is unloaded when one
    // of the two ids is wrong.
    assert!(client
        .request(&format!(
            "{{\"op\": \"unload\", \"query_id\": \"{qid}\", \"db_id\": \"nope\"}}"
        ))
        .unwrap_err()
        .contains("unknown db_id"));
    assert!(client
        .request("{\"op\": \"unload\"}")
        .unwrap_err()
        .contains("unload needs"));

    let (_, raw) = client
        .request(&format!(
            "{{\"op\": \"unload\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    assert!(
        raw.contains(&format!("\"unloaded\": [\"{qid}\", \"{db_id}\"]")),
        "{raw}"
    );

    // The registry handles are gone...
    assert!(client
        .request(&format!(
            "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap_err()
        .contains("unknown"));
    // ...but the open session still owns its Arcs and keeps solving.
    let (_, raw) = client
        .request(&format!(
            "{{\"op\": \"resolve\", \"session_id\": \"{sid}\"}}"
        ))
        .unwrap();
    assert!(raw.contains("\"resilience\": 2"), "{raw}");
}

#[test]
fn shutdown_verb_stops_the_daemon() {
    let (addr, mut guard) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    // run() returns on its own (join without setting the flag ourselves).
    guard.handle.take().unwrap().join().unwrap();
    guard.flag.store(true, Ordering::SeqCst); // idempotent
                                              // New connections are refused or die immediately afterwards.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut late = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return,
    };
    assert!(late.request_raw("{\"op\": \"ping\"}").is_err());
}

#[test]
fn stats_verb_counts_requests_errors_and_plan_cache_hits() {
    let (addr, _guard) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    client.request("{\"op\": \"ping\"}").unwrap();
    // Two isomorphic shapes: the second compile must hit the shared plan
    // cache and echo the first (representative) query's rendering.
    let (_, rep_query, rep_cx) = client.compile("A(x), R(x,y)").unwrap();
    let (_, hit_query, hit_cx) = client.compile("R(u,w), A(u)").unwrap();
    assert_eq!(
        hit_query, rep_query,
        "cache hit must echo the representative"
    );
    assert_eq!(hit_cx, rep_cx);
    // One unrecognized verb (bad_request) and one unparseable line (parse);
    // both land in the bounded "unknown"/"invalid" request buckets.
    assert!(client.request("{\"op\": \"nonsense\"}").is_err());
    let raw = client.request_raw("not json").unwrap();
    assert!(raw.starts_with("{\"ok\": false"), "{raw}");

    let (v, _) = client.request("{\"op\": \"stats\"}").unwrap();
    let stats = v.get("stats").expect("stats object");
    let count = |path: &[&str]| -> usize {
        let mut node = stats;
        for key in path {
            node = node.get(key).unwrap_or(&JsonValue::Null);
        }
        node.as_usize().unwrap_or(0)
    };
    assert!(stats.get("uptime_ms").is_some());
    assert_eq!(count(&["requests", "ping"]), 1);
    assert_eq!(count(&["requests", "compile"]), 2);
    assert_eq!(count(&["requests", "unknown"]), 1);
    assert_eq!(count(&["requests", "invalid"]), 1);
    // The stats verb counts its own request.
    assert_eq!(count(&["requests", "stats"]), 1);
    assert_eq!(count(&["errors", "bad_request"]), 1);
    assert_eq!(count(&["errors", "parse"]), 1);
    assert_eq!(count(&["plan_cache", "entries"]), 1);
    assert_eq!(count(&["plan_cache", "misses"]), 1);
    assert_eq!(count(&["plan_cache", "hits"]), 1);
    assert_eq!(count(&["plan_cache", "bypasses"]), 0);
    // The warm-flow aggregate renders next to the plan cache even before
    // any session resolves.
    assert_eq!(count(&["warm_flow", "flow_warm_reuses"]), 0);
    assert_eq!(count(&["warm_flow", "flow_cold_rebuilds"]), 0);
}

#[test]
fn stats_verb_aggregates_warm_flow_counters() {
    // A flow-dispatched session driven through several delete+resolve steps
    // must surface its warm-start activity in the daemon-wide stats: one
    // cold rebuild for the first deleted-state solve, warm reuses after.
    let (addr, _guard) = start_server(2);
    let mut client = Client::connect(addr).unwrap();
    let text = "A(x), R(x,y), R(z,y), C(z)";
    let q = parse_query(text).unwrap();
    let db = random_instance(&q, 41, 8, 0.3);
    let db_text = to_text(&db);
    let (local_db, _) = parse_database_with_labels(&q, &db_text).unwrap();
    let (qid, _, _) = client.compile(text).unwrap();
    let (db_id, _) = client.load_text(&qid, &db_text).unwrap();
    let (resp, _) = client
        .request(&format!(
            "{{\"op\": \"session\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\"}}"
        ))
        .unwrap();
    let sid = resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    let sequence = Workload::new(41 ^ 0xf10).random_deletion_sequence(&q, &local_db, 6);
    assert!(sequence.len() >= 2, "instance too sparse for the sweep");
    for &t in &sequence {
        let fact = jsonio::render_tuple(&local_db, t);
        client
            .request(&format!(
                "{{\"op\": \"delete\", \"session_id\": \"{sid}\", \"tuple\": \"{fact}\"}}"
            ))
            .unwrap();
        client
            .request(&format!(
                "{{\"op\": \"resolve\", \"session_id\": \"{sid}\"}}"
            ))
            .unwrap();
    }
    let (v, _) = client.request("{\"op\": \"stats\"}").unwrap();
    let stats = v.get("stats").expect("stats object");
    let count = |path: &[&str]| -> usize {
        let mut node = stats;
        for key in path {
            node = node.get(key).unwrap_or(&JsonValue::Null);
        }
        node.as_usize().unwrap_or(0)
    };
    assert_eq!(
        count(&["warm_flow", "flow_cold_rebuilds"]),
        1,
        "exactly one cold build of the warm network"
    );
    assert_eq!(
        count(&["warm_flow", "flow_warm_reuses"]),
        sequence.len() - 1,
        "every later deleted-state solve must reuse the resident flow"
    );
    assert!(
        count(&["warm_flow", "flow_paths_repaired"])
            + count(&["warm_flow", "flow_paths_reaugmented"])
            > 0,
        "the sweep must exercise residual repair or re-augmentation"
    );
}
