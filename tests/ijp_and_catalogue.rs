//! Integration tests for experiment E9 (Independent Join Paths) and for
//! cross-crate consistency of the named-query catalogue.

use cq::catalogue::{self, PaperClass};
use cq::{classify, parse_query};
use database::Database;
use resilience_core::engine::{CompiledQuery, Engine, SolveOptions, SolveReport, SolveScratch};
use resilience_core::ijp::{check_ijp, find_ijp_pair, search_ijp};
use resilience_core::ExactSolver;

/// Solves over the mutable store (no freeze) through the store-generic
/// engine core, with fresh scratch per call.
fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

#[test]
fn example_58_and_59_are_ijps() {
    let qvc = parse_query("R(x), S(x,y), R(y)").unwrap();
    let mut d58 = Database::for_query(&qvc);
    d58.insert_named("R", &[1u64]);
    d58.insert_named("S", &[1u64, 2]);
    d58.insert_named("R", &[2u64]);
    let cert = find_ijp_pair(&qvc, &d58).expect("Example 58");
    assert_eq!(cert.relation, "R");

    let triangle = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
    let mut d59 = Database::for_query(&triangle);
    for (rel, vals) in [
        ("R", [1u64, 2]),
        ("R", [4, 2]),
        ("R", [4, 5]),
        ("S", [2, 3]),
        ("S", [5, 3]),
        ("T", [3, 1]),
        ("T", [3, 4]),
    ] {
        d59.insert_named(rel, &vals);
    }
    assert!(check_ijp(&triangle, &d59));
}

#[test]
fn automated_ijp_search_finds_certificates_for_hard_queries() {
    // Queries the paper proves hard admit IJPs discoverable by the Appendix
    // C.2 search with a small budget.
    let qvc = parse_query("R(x), S(x,y), R(y)").unwrap();
    assert!(search_ijp(&qvc, 2, 1_000).is_some());
    let chain = parse_query("R(x,y), R(y,z)").unwrap();
    assert!(search_ijp(&chain, 2, 5_000).is_some());
}

#[test]
fn ptime_catalogue_queries_do_not_trip_the_hard_solver_path() {
    // Every PTIME catalogue query gets a solver whose classification is
    // PTIME; every NP-complete one is NP-complete; open ones are open.
    for nq in catalogue::all_named_queries() {
        let solver = Engine::compile(&nq.query);
        let complexity = &solver.classification().complexity;
        match nq.paper_class {
            PaperClass::PTime => assert!(complexity.is_ptime(), "{}", nq.name),
            PaperClass::NpComplete => assert!(complexity.is_np_complete(), "{}", nq.name),
            PaperClass::Open => assert!(complexity.is_open(), "{}", nq.name),
        }
    }
}

#[test]
fn every_catalogue_query_solves_a_small_random_instance() {
    // Smoke test across the entire catalogue: generate a small random
    // instance and check that the dispatched solver agrees with the exact
    // solver (for PTIME queries) or at least produces a valid contingency set
    // (for hard/open queries, where it *is* the exact solver).
    let exact = ExactSolver::new();
    for nq in catalogue::all_named_queries() {
        let mut workload = workloads::Workload::new(9_000);
        let db = workload.random_database(&nq.query, 12, 5);
        let solver = Engine::compile(&nq.query);
        let outcome = solve_store_once(&solver, &db);
        let truth = exact.resilience_value(&nq.query, &db);
        assert_eq!(
            outcome.resilience.as_finite(),
            truth,
            "{} disagrees on random instance",
            nq.name
        );
    }
}

#[test]
fn classification_notes_mention_the_relevant_theorem() {
    let c = classify(&parse_query("R(x,y), R(y,z)").unwrap());
    assert!(c
        .evidence
        .notes
        .iter()
        .any(|n| n.contains("Proposition 30") || n.contains("chain")));
    let c = classify(&parse_query("R(x,y), S(y,z), T(z,x)").unwrap());
    assert!(c.evidence.notes.iter().any(|n| n.contains("Theorem 24")));
}
