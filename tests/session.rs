//! Differential tests for the deletion-aware [`SolveSession`] and parallel
//! witness enumeration:
//!
//! * any random delete/restore sequence through a session yields the same
//!   resilience and witness count as solving `Database::without(deleted)`
//!   from scratch (full re-enumeration), across the named-query catalogue;
//! * session contingency sets reference the *original* tuple ids and really
//!   falsify the live view;
//! * restore order does not matter (set semantics of the deletion state);
//! * parallel enumeration (2, 4 threads) is bit-identical to sequential on
//!   catalogue queries, over both store types.

use cq::catalogue;
use database::{
    try_relation_translation, witnesses_with_plan_into, witnesses_with_plan_parallel_into,
    Database, QueryPlan, TupleId,
};
use resilience_core::engine::{Engine, Resilience, SolveOptions};
use std::collections::HashSet;
use workloads::Workload;

/// The standard randomized instance used across the test-suite (mirrors
/// tests/engine.rs): a random `R`-graph, saturated unary relations, and a
/// deterministic sprinkling of tuples for every other non-unary relation.
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let r_is_binary = q
        .schema()
        .relation_id("R")
        .is_some_and(|r| q.schema().arity(r) == 2);
    let mut db = if r_is_binary {
        workload.random_graph_relation(q, "R", nodes, density)
    } else {
        Database::for_query(q)
    };
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        let arity = q.schema().arity(rel);
        if arity >= 2 && !(name == "R" && r_is_binary) {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        let values: Vec<u64> = (0..arity as u64)
                            .map(|pos| match pos {
                                0 => a,
                                1 => b,
                                _ => (a + b + pos) % nodes.max(1),
                            })
                            .collect();
                        db.insert_named(&name, &values);
                    }
                }
            }
        }
    }
    db
}

#[test]
fn session_equals_from_scratch_on_random_delete_restore_sequences() {
    let opts = SolveOptions::new();
    for nq in catalogue::all_named_queries() {
        let compiled = Engine::compile(&nq.query);
        for seed in [5u64, 17] {
            let db = random_instance(&nq.query, seed, 5, 0.3);
            let frozen = db.freeze();
            let mut session = compiled
                .session(&frozen)
                .unwrap_or_else(|e| panic!("{}: cannot open session: {e}", nq.name));
            assert_eq!(session.total_witnesses(), session.live_witnesses());

            let sequence = Workload::new(seed ^ 0xdead).random_deletion_sequence(&nq.query, &db, 6);
            let mut deleted: HashSet<TupleId> = HashSet::new();
            for (step, &t) in sequence.iter().enumerate() {
                session.delete(&[t]);
                deleted.insert(t);
                // Interleave restores of earlier deletions: the session must
                // track the *set*, not the order.
                if step % 2 == 1 {
                    let back = sequence[step / 2];
                    session.restore(&[back]);
                    deleted.remove(&back);
                }

                let scratch = compiled.solve(&db.without(&deleted).freeze(), &opts);
                let via_session = session.solve(&opts);
                match (&via_session, &scratch) {
                    (Ok(s), Ok(f)) => {
                        assert_eq!(
                            s.resilience, f.resilience,
                            "{} seed {seed} step {step}: session vs from-scratch value",
                            nq.name
                        );
                        assert_eq!(
                            s.witnesses, f.witnesses,
                            "{} seed {seed} step {step}: session vs from-scratch witness count",
                            nq.name
                        );
                        assert_eq!(s.witnesses, session.live_witnesses());
                        // A session certificate references original ids,
                        // avoids deleted tuples, and falsifies the live view.
                        if let (Resilience::Finite(k), Some(gamma)) = (s.resilience, &s.contingency)
                        {
                            assert_eq!(gamma.len(), k, "{} step {step}", nq.name);
                            let mut removal = deleted.clone();
                            for &g in gamma {
                                assert!(
                                    !deleted.contains(&g),
                                    "{} step {step}: certificate re-deletes a deleted tuple",
                                    nq.name
                                );
                                removal.insert(g);
                            }
                            assert!(
                                !database::evaluate(&nq.query, &db.without(&removal)),
                                "{} seed {seed} step {step}: certificate does not falsify",
                                nq.name
                            );
                        }
                    }
                    (Err(_), Err(_)) => {} // both budgets exhausted: agree
                    _ => panic!(
                        "{} seed {seed} step {step}: one path failed, the other did not: \
                         session {via_session:?} vs scratch {scratch:?}",
                        nq.name
                    ),
                }
            }
        }
    }
}

#[test]
fn session_restore_order_does_not_matter() {
    let q = cq::parse_query("R(x,y), R(y,z)").unwrap();
    let compiled = Engine::compile(&q);
    let db = random_instance(&q, 9, 6, 0.35);
    let frozen = db.freeze();
    let opts = SolveOptions::new();
    let seq = Workload::new(4).random_deletion_sequence(&q, &db, 4);
    if seq.len() < 4 {
        return; // degenerate random instance
    }
    let (a, b, c, d) = (seq[0], seq[1], seq[2], seq[3]);

    let mut forward = compiled.session(&frozen).unwrap();
    forward.delete(&[a, b, c, d]);
    forward.restore(&[a, b]);

    let mut scrambled = compiled.session(&frozen).unwrap();
    scrambled.delete(&[d]);
    scrambled.delete(&[a, a, b]); // duplicate delete is a no-op
    scrambled.delete(&[c]);
    scrambled.restore(&[b, a]); // reversed restore order
    scrambled.restore(&[b]); // double restore is a no-op

    assert_eq!(forward.live_witnesses(), scrambled.live_witnesses());
    assert_eq!(forward.deleted_tuples(), scrambled.deleted_tuples());
    assert_eq!(
        forward.solve(&opts).unwrap(),
        scrambled.solve(&opts).unwrap()
    );

    let expected: HashSet<TupleId> = [c, d].into_iter().collect();
    let scratch = compiled
        .solve(&db.without(&expected).freeze(), &opts)
        .unwrap();
    let via = forward.solve(&opts).unwrap();
    assert_eq!(via.resilience, scratch.resilience);
    assert_eq!(via.witnesses, scratch.witnesses);
}

#[test]
fn warm_sessions_match_cold_sessions_on_random_delete_restore_sequences() {
    // The warm-start differential gate: a session solving every step warm
    // (replay, exact incumbent, flow-certificate reuse) agrees with a
    // session solving every step cold — same resilience, same witness
    // count, same method — across the named-query catalogue on random
    // delete/restore sequences, and every warm certificate is a valid
    // minimum contingency set of the live view.
    let warm_opts = SolveOptions::new().warm_start(true);
    let cold_opts = SolveOptions::new().warm_start(false);
    for nq in catalogue::all_named_queries() {
        let compiled = Engine::compile(&nq.query);
        for seed in [3u64, 29] {
            let db = random_instance(&nq.query, seed, 5, 0.3);
            let frozen = db.freeze();
            let mut warm = compiled.session(&frozen).unwrap();
            let mut cold = compiled.session(&frozen).unwrap();
            let sequence = Workload::new(seed ^ 0xbeef).random_deletion_sequence(&nq.query, &db, 6);
            let mut deleted: HashSet<TupleId> = HashSet::new();
            for (step, &t) in sequence.iter().enumerate() {
                warm.delete(&[t]);
                cold.delete(&[t]);
                deleted.insert(t);
                if step % 3 == 2 {
                    let back = sequence[step / 2];
                    warm.restore(&[back]);
                    cold.restore(&[back]);
                    deleted.remove(&back);
                }
                // Solve the warm session twice: the second call exercises
                // the unchanged-state replay and must be bit-identical to
                // the first.
                let w = warm.solve(&warm_opts);
                let w2 = warm.solve(&warm_opts);
                let c = cold.solve(&cold_opts);
                match (&w, &c) {
                    (Ok(w), Ok(c)) => {
                        assert_eq!(w, w2.as_ref().unwrap(), "{} step {step}: replay", nq.name);
                        assert!(warm.last_solve_stats().replayed);
                        assert_eq!(
                            w.resilience, c.resilience,
                            "{} seed {seed} step {step}: warm vs cold value",
                            nq.name
                        );
                        assert_eq!(w.witnesses, c.witnesses, "{} step {step}", nq.name);
                        assert_eq!(w.method, c.method, "{} step {step}", nq.name);
                        // Certificates may be different minimum sets, but
                        // must have equal size and really falsify.
                        if let (Resilience::Finite(k), Some(gw)) = (w.resilience, &w.contingency) {
                            assert_eq!(gw.len(), k, "{} step {step}", nq.name);
                            let mut removal = deleted.clone();
                            removal.extend(gw.iter().copied());
                            assert!(
                                !database::evaluate(&nq.query, &db.without(&removal)),
                                "{} seed {seed} step {step}: warm certificate does not falsify",
                                nq.name
                            );
                        }
                        assert_eq!(
                            w.contingency.as_ref().map(Vec::len),
                            c.contingency.as_ref().map(Vec::len),
                            "{} step {step}: certificate sizes",
                            nq.name
                        );
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!(
                        "{} seed {seed} step {step}: warm {w:?} vs cold {c:?}",
                        nq.name
                    ),
                }
            }
        }
    }
}

#[test]
fn restricted_contingency_stays_feasible_under_deletions() {
    // The monotonicity property the warm start rests on: after any further
    // deletions, the previous contingency set restricted to non-deleted
    // tuples still hits every live witness (a live witness uses no deleted
    // tuple, so whatever tuple of the set hit it is still present).
    use database::WitnessSet;
    for nq in [
        catalogue::q_chain(),
        catalogue::q_vc(),
        catalogue::q_acconf(),
    ] {
        let compiled = Engine::compile(&nq.query);
        for seed in 0..4u64 {
            let db = random_instance(&nq.query, seed, 6, 0.3);
            let ws = WitnessSet::build(&nq.query, &db);
            let report = match compiled.solve(&db.freeze(), &SolveOptions::new()) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let Some(gamma) = report.contingency else {
                continue;
            };
            let sequence = Workload::new(seed ^ 0xfeed).random_deletion_sequence(&nq.query, &db, 4);
            let mut deleted: HashSet<TupleId> = HashSet::new();
            for &t in &sequence {
                deleted.insert(t);
                let live = ws.without_tuples(&deleted);
                let restricted: HashSet<TupleId> = gamma
                    .iter()
                    .copied()
                    .filter(|g| !deleted.contains(g))
                    .collect();
                assert!(
                    live.is_contingency_set(&restricted),
                    "{} seed {seed}: restricted previous contingency infeasible",
                    nq.name
                );
            }
        }
    }
}

#[test]
fn warm_start_statistics_reflect_incumbent_use() {
    // A monotone deletion sweep on an NP-complete chain query: once a step's
    // incumbent survives restriction it must register as a warm-start hit,
    // and an unchanged-state re-solve must register as a replay.
    let q = cq::parse_query("R(x,y), R(y,z)").unwrap();
    let compiled = Engine::compile(&q);
    let db = random_instance(&q, 11, 7, 0.35);
    let frozen = db.freeze();
    let opts = SolveOptions::new();
    let mut session = compiled.session(&frozen).unwrap();
    let seq = Workload::new(7).random_deletion_sequence(&q, &db, 5);
    if seq.len() < 2 {
        return;
    }
    session.solve(&opts).unwrap();
    assert!(
        !session.last_solve_stats().warm_start_hit,
        "first solve is cold"
    );
    let mut any_warm = false;
    for &t in &seq {
        session.delete(&[t]);
        session.solve(&opts).unwrap();
        any_warm |= session.last_solve_stats().warm_start_hit;
    }
    assert!(any_warm, "no deletion step warm-started");
    session.solve(&opts).unwrap();
    assert!(
        session.last_solve_stats().replayed,
        "unchanged state must replay"
    );
    // Disabling warm starts really runs cold.
    let cold_opts = SolveOptions::new().warm_start(false);
    session.solve(&cold_opts).unwrap();
    let stats = session.last_solve_stats();
    assert!(!stats.replayed && !stats.warm_start_hit && !stats.short_circuit);
}

#[test]
fn warm_flow_state_is_reused_across_flow_session_steps() {
    // Flow-dispatched sessions must keep the residual network resident:
    // after the first solve in a deleted state (which builds the warm
    // network, `flow_cold_rebuild`), every further delete/restore step must
    // repair the existing flow in place (`flow_warm_reused`) rather than
    // rebuild, while agreeing exactly with a from-scratch solve.
    for nq in [catalogue::q_acconf(), catalogue::q_perm(), catalogue::z3()] {
        let compiled = Engine::compile(&nq.query);
        let db = random_instance(&nq.query, 41, 8, 0.3);
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        let seq = Workload::new(41 ^ 0xf10).random_deletion_sequence(&nq.query, &db, 8);
        if seq.len() < 3 {
            continue;
        }
        // Zero-deletion solves stay on the plain cold path: no warm flow.
        session.solve(&opts).unwrap();
        let stats = session.last_solve_stats();
        assert!(
            !stats.flow_warm_reused && !stats.flow_cold_rebuild,
            "{}: zero-deletion solve must not touch warm flow state",
            nq.name
        );
        let mut deleted: HashSet<TupleId> = HashSet::new();
        let mut any_rebuild = false;
        let mut reused_steps = 0usize;
        for (step, &t) in seq.iter().enumerate() {
            if step % 3 == 2 {
                let back = *deleted.iter().next().unwrap();
                deleted.remove(&back);
                session.restore(&[back]);
            } else {
                deleted.insert(t);
                session.delete(&[t]);
            }
            let report = session.solve(&opts).unwrap();
            let stats = session.last_solve_stats();
            any_rebuild |= stats.flow_cold_rebuild;
            if stats.flow_warm_reused && !stats.flow_cold_rebuild {
                reused_steps += 1;
            }
            let scratch = compiled
                .solve(&db.without(&deleted).freeze(), &opts)
                .unwrap();
            assert_eq!(
                report.resilience, scratch.resilience,
                "{} step {step}: warm flow diverged from scratch",
                nq.name
            );
        }
        assert!(any_rebuild, "{}: no step built the warm network", nq.name);
        assert!(
            reused_steps > 0,
            "{}: no step repaired the resident flow in place",
            nq.name
        );
        // `reset` must invalidate the warm state: the next dispatched
        // deleted-state solve rebuilds from cold, never reuses.
        session.reset();
        session.delete(&[seq[0]]);
        session.solve(&opts).unwrap();
        let stats = session.last_solve_stats();
        assert!(
            !stats.flow_warm_reused,
            "{}: reset must invalidate resident flow state",
            nq.name
        );
        if !stats.replayed && !stats.short_circuit {
            assert!(
                stats.flow_cold_rebuild,
                "{}: post-reset dispatch must rebuild the warm network",
                nq.name
            );
        }
        // Disabling warm starts bypasses the warm flow layer entirely.
        session.delete(&[seq[1]]);
        let cold_opts = SolveOptions::new().warm_start(false);
        session.solve(&cold_opts).unwrap();
        let stats = session.last_solve_stats();
        assert!(
            !stats.flow_warm_reused
                && !stats.flow_cold_rebuild
                && stats.flow_paths_repaired == 0
                && stats.flow_paths_reaugmented == 0,
            "{}: warm_start(false) must leave warm flow untouched",
            nq.name
        );
    }
}

#[test]
fn parallel_enumeration_is_deterministic_on_the_catalogue() {
    // The CI determinism gate: 1-thread and N-thread enumeration must be
    // bit-identical (same witnesses, same order) for every catalogue query,
    // over both the mutable and the frozen store.
    for nq in catalogue::all_named_queries() {
        let db = random_instance(&nq.query, 23, 6, 0.3);
        let plan = QueryPlan::compile(&nq.query);
        let translation = try_relation_translation(&nq.query, &db).unwrap();
        let mut sequential = Vec::new();
        witnesses_with_plan_into(&plan, &translation, &db, &mut sequential);
        let frozen = db.freeze();
        for threads in [2usize, 4] {
            let mut parallel = Vec::new();
            witnesses_with_plan_parallel_into(&plan, &translation, &db, threads, &mut parallel);
            assert_eq!(sequential, parallel, "{} threads {threads}", nq.name);
            witnesses_with_plan_parallel_into(&plan, &translation, &frozen, threads, &mut parallel);
            assert_eq!(
                sequential, parallel,
                "{} threads {threads} (frozen)",
                nq.name
            );
        }
    }
}

#[test]
fn parallel_enumeration_solves_catalogue_queries_identically() {
    for nq in [catalogue::q_chain(), catalogue::q_acconf(), catalogue::z3()] {
        let compiled = Engine::compile(&nq.query);
        let db = random_instance(&nq.query, 31, 6, 0.3).freeze();
        let sequential = compiled.solve(&db, &SolveOptions::new());
        let parallel = compiled.solve(&db, &SolveOptions::new().enumeration_threads(3));
        assert_eq!(sequential, parallel, "{}", nq.name);
    }
}
