//! Dispatch-selection tests (ported from the deleted `ResilienceSolver`
//! shim's unit suite): on small hand-built instances, the engine must route
//! every catalogue shape to the intended algorithm and agree with a direct
//! exact solve.

use cq::catalogue;
use cq::parse_query;
use cq::Query;
use database::{Database, TupleId, WitnessSet};
use resilience_core::engine::{
    CompiledQuery, Engine, SolveMethod, SolveOptions, SolveReport, SolveScratch,
};
use resilience_core::ExactSolver;
use std::collections::HashSet;

fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
    let mut db = Database::for_query(q);
    for (rel, vals) in rows {
        db.insert_named(rel, vals);
    }
    db
}

fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

#[test]
fn chain_instance_uses_exact_solver() {
    let q = parse_query("R(x,y), R(y,z)").unwrap();
    let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
    let compiled = Engine::compile(&q);
    let report = solve_store_once(&compiled, &db);
    assert_eq!(report.resilience.as_finite(), Some(2));
    assert_eq!(report.method, SolveMethod::ExactBranchAndBound);
    assert!(compiled.classification().complexity.is_np_complete());
}

#[test]
fn acconf_uses_linear_flow() {
    let nq = catalogue::q_acconf();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("A", &[4]),
            ("C", &[1]),
            ("C", &[5]),
            ("R", &[1, 2]),
            ("R", &[4, 2]),
            ("R", &[5, 2]),
            ("R", &[1, 3]),
            ("R", &[5, 3]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.method, SolveMethod::LinearFlow);
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn rats_uses_polynomial_path() {
    let nq = catalogue::q_rats();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("A", &[2]),
            ("R", &[1, 10]),
            ("R", &[2, 11]),
            ("T", &[20, 1]),
            ("T", &[21, 2]),
            ("S", &[10, 20]),
            ("S", &[11, 21]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_ne!(report.method, SolveMethod::ExactBranchAndBound);
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
    assert_eq!(report.resilience.as_finite(), Some(2));
}

#[test]
fn aperm_uses_permutation_flow() {
    let nq = catalogue::q_aperm();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("A", &[2]),
            ("R", &[1, 2]),
            ("R", &[2, 1]),
            ("R", &[2, 3]),
            ("R", &[3, 2]),
            ("A", &[3]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.method, SolveMethod::PermutationFlow);
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn z3_uses_rep_flow() {
    let nq = catalogue::z3();
    let db = build_db(
        &nq.query,
        &[
            ("R", &[1, 1]),
            ("R", &[1, 2]),
            ("R", &[2, 2]),
            ("A", &[1]),
            ("A", &[2]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.method, SolveMethod::RepFlow);
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn a3perm_r_uses_special_flow() {
    let nq = catalogue::q_a3perm_r();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("A", &[2]),
            ("R", &[1, 2]),
            ("R", &[2, 3]),
            ("R", &[3, 2]),
            ("R", &[2, 2]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.method, SolveMethod::SpecialFlow("q_A3perm-R"));
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn ts3conf_uses_special_flow() {
    let nq = catalogue::q_ts3conf();
    let db = build_db(
        &nq.query,
        &[
            ("T", &[1, 2]),
            ("S", &[1, 2]),
            ("R", &[1, 2]),
            ("T", &[3, 4]),
            ("R", &[3, 4]),
            ("R", &[5, 4]),
            ("R", &[5, 6]),
            ("S", &[5, 6]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.method, SolveMethod::SpecialFlow("q_TS3conf"));
    let exact = ExactSolver::new().resilience_value(&nq.query, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn unsatisfied_database_is_already_false() {
    let q = parse_query("R(x,y), R(y,z)").unwrap();
    let db = build_db(&q, &[("R", &[1, 2])]);
    let report = solve_store_once(&Engine::compile(&q), &db);
    assert_eq!(report.resilience.as_finite(), Some(0));
    assert_eq!(report.method, SolveMethod::AlreadyFalse);
}

#[test]
fn fully_exogenous_query_is_unfalsifiable() {
    let q = parse_query("R^x(x,y)").unwrap();
    let db = build_db(&q, &[("R", &[1, 2])]);
    let report = solve_store_once(&Engine::compile(&q), &db);
    assert_eq!(report.resilience.as_finite(), None);
    assert_eq!(report.method, SolveMethod::Unfalsifiable);
}

#[test]
fn disconnected_query_takes_component_minimum() {
    // Components: A(x),R(x,y) and B(u),S(u,v). First component needs 2
    // deletions, second needs 1; the minimum is 1.
    let q = parse_query("A(x), R(x,y), B(u), S(u,v)").unwrap();
    let db = build_db(
        &q,
        &[
            ("A", &[1]),
            ("A", &[2]),
            ("R", &[1, 10]),
            ("R", &[2, 11]),
            ("B", &[5]),
            ("S", &[5, 50]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&q), &db);
    assert_eq!(report.method, SolveMethod::ComponentMinimum);
    assert_eq!(report.resilience.as_finite(), Some(1));
    let exact = ExactSolver::new().resilience_value(&q, &db);
    assert_eq!(report.resilience.as_finite(), exact);
}

#[test]
fn contingency_sets_returned_by_flow_methods_are_valid() {
    let nq = catalogue::q_acconf();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("C", &[3]),
            ("R", &[1, 2]),
            ("R", &[3, 2]),
            ("A", &[4]),
            ("R", &[4, 2]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    let gamma: HashSet<TupleId> = report.contingency.unwrap().into_iter().collect();
    assert_eq!(gamma.len(), report.resilience.as_finite().unwrap());
    let ws = WitnessSet::build(&nq.query, &db);
    assert!(ws.is_contingency_set(&gamma));
}

#[test]
fn dominated_relation_is_not_deleted_by_the_solver() {
    // q_rats: the normal form makes R and T exogenous, so the engine's
    // contingency set may only contain A- or S-tuples.
    let nq = catalogue::q_rats();
    let db = build_db(
        &nq.query,
        &[
            ("A", &[1]),
            ("R", &[1, 10]),
            ("T", &[20, 1]),
            ("S", &[10, 20]),
        ],
    );
    let report = solve_store_once(&Engine::compile(&nq.query), &db);
    assert_eq!(report.resilience.as_finite(), Some(1));
    if let Some(gamma) = &report.contingency {
        for &t in gamma {
            let name = db.schema().name(db.relation_of(t));
            assert!(
                name == "A" || name == "S",
                "unexpected deletion from {name}"
            );
        }
    }
}

#[test]
fn store_path_agrees_with_the_frozen_path() {
    let q = parse_query("R(x,y), R(y,z)").unwrap();
    let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
    let compiled = Engine::compile(&q);
    let store = solve_store_once(&compiled, &db);
    let frozen = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
    assert_eq!(store.resilience, frozen.resilience);
    assert_eq!(store.contingency, frozen.contingency);
    assert_eq!(store.method, frozen.method);
}
