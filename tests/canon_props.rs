//! Property suite for the canonicalization layer behind the plan cache:
//!
//! * `CanonKey` is invariant under variable renaming and atom permutation —
//!   every `Workload::query_variant` of a catalogue query canonicalizes to
//!   the same key and the same canonical form as the original;
//! * canonicalization is a fixpoint on random byte-soup queries (the
//!   canonical form canonicalizes to itself) and stays invariant across
//!   random variants of those queries too;
//! * the 50 catalogue queries are pairwise distinct shapes — no two share a
//!   canonical key, canonical form, or exact isomorphism;
//! * plans served by a shared `PlanCache` across ≥ 100 shuffled/renamed
//!   variants solve byte-identically to a direct compile of the shape's
//!   representative, and agree semantically with a direct compile of each
//!   variant itself.
//!
//! The forced-collision fallback (`with_key_bits`) is unit-tested inside
//! `resilience-core::plancache`; this file covers the cross-crate surface.

use cq::catalogue;
use proptest::prelude::*;
use resilience::core::engine::{Engine, SolveOptions};
use resilience::core::plancache::PlanCache;
use resilience::prelude::*;
use server::dbtext;
use server::jsonio;
use workloads::Workload;

/// Relation palette with fixed arities so every generated text parses.
const RELS: &[(&str, usize)] = &[("A", 1), ("B", 1), ("R", 2), ("S", 2), ("T", 2)];
const VARS: &[&str] = &["x", "y", "z", "u", "v", "w"];

/// Builds a small query from a byte soup: each 4-byte chunk picks a relation,
/// its argument variables, and an exogenous flag. Always parseable.
fn query_from_bytes(bytes: &[u8]) -> Option<cq::Query> {
    let mut atoms: Vec<String> = Vec::new();
    let mut exo: Vec<usize> = Vec::new();
    for chunk in bytes.chunks(4).take(4) {
        if chunk.len() < 4 {
            break;
        }
        let (name, arity) = RELS[chunk[0] as usize % RELS.len()];
        let args: Vec<&str> = (0..arity)
            .map(|i| VARS[chunk[1 + i] as usize % VARS.len()])
            .collect();
        let atom = format!("{name}({})", args.join(","));
        if !atoms.contains(&atom) {
            if chunk[3] % 4 == 0 {
                exo.push(atoms.len());
            }
            atoms.push(atom);
        }
    }
    if atoms.is_empty() {
        return None;
    }
    let q = parse_query(&atoms.join(", ")).ok()?;
    Some(q.with_exogenous(&exo))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tentpole invariant: renaming variables and permuting atoms never
    /// changes the canonical key or the canonical form.
    #[test]
    fn canon_key_is_invariant_under_renaming_and_permutation(
        index in 0usize..64,
        seed in 0u64..1_048_576,
    ) {
        let all = catalogue::all_named_queries();
        let q = &all[index % all.len()].query;
        let base = cq::canonicalize(q);
        prop_assert!(base.exact, "catalogue queries are small enough for exact canon");
        let variant = Workload::new(seed).query_variant(q);
        prop_assert!(cq::shape_isomorphic(q, &variant));
        let canon = cq::canonicalize(&variant);
        prop_assert!(canon.exact);
        prop_assert_eq!(canon.key, base.key);
        prop_assert_eq!(&canon.query, &base.query);
    }

    /// Canonicalization is a fixpoint, and stays invariant across variants,
    /// on arbitrary small queries (not just the curated catalogue).
    #[test]
    fn canonicalization_is_a_fixpoint_on_random_queries(
        bytes in prop::collection::vec(0u8..255, 4..20),
        seed in 0u64..1_048_576,
    ) {
        prop_assume!(query_from_bytes(&bytes).is_some());
        let q = query_from_bytes(&bytes).unwrap();
        let canon = cq::canonicalize(&q);
        prop_assert!(canon.exact);
        // Fixpoint: the canonical form is its own canonical form.
        let again = cq::canonicalize(&canon.query);
        prop_assert_eq!(again.key, canon.key);
        prop_assert_eq!(&again.query, &canon.query);
        // Invariance on a random variant of the random query.
        let variant = Workload::new(seed).query_variant(&q);
        let vcanon = cq::canonicalize(&variant);
        prop_assert_eq!(vcanon.key, canon.key);
        prop_assert_eq!(&vcanon.query, &canon.query);
    }
}

/// No two distinct catalogue queries may ever share a canonical form: a
/// conflation here would silently serve one query's plan for another.
#[test]
fn catalogue_queries_have_pairwise_distinct_canonical_forms() {
    let all = catalogue::all_named_queries();
    let canons: Vec<_> = all.iter().map(|nq| cq::canonicalize(&nq.query)).collect();
    for (i, a) in canons.iter().enumerate() {
        assert!(a.exact, "{}: inexact canon", all[i].name);
        for (j, b) in canons.iter().enumerate().skip(i + 1) {
            assert_ne!(
                a.key, b.key,
                "{} and {} share a canonical key",
                all[i].name, all[j].name
            );
            assert_ne!(
                a.query, b.query,
                "{} and {} share a canonical form",
                all[i].name, all[j].name
            );
            assert!(
                !cq::shape_isomorphic(&all[i].query, &all[j].query),
                "{} and {} are exactly isomorphic",
                all[i].name,
                all[j].name
            );
        }
    }
}

/// Differential gate: a shared cache serving the full catalogue plus ≥ 100
/// renamed/permuted variants must (a) render byte-identical reports to a
/// direct compile of the representative and (b) agree on every semantic
/// field with a direct compile of the variant itself.
#[test]
fn cached_plans_match_direct_compiles_across_catalogue_variants() {
    const VARIANTS: usize = 3;
    let all = catalogue::all_named_queries();
    let cache = PlanCache::new(all.len());
    let opts = SolveOptions::new().want_contingency(true);
    let mut lookups = 0usize;
    for (i, nq) in all.iter().enumerate() {
        let rep = &nq.query;
        let text = dbtext::to_text(&Workload::new(0xCA10 ^ i as u64).random_database(rep, 8, 5));
        let rep_db = dbtext::parse_database(rep, &text).unwrap();
        let rep_frozen = rep_db.freeze();
        let direct = Engine::compile(rep);
        let expected = match direct.solve(&rep_frozen, &opts) {
            Ok(report) => jsonio::report_json(nq.name, &rep_db, &report),
            Err(e) => format!("error: {e}"),
        };
        let mut variants = vec![rep.clone()];
        variants.extend(Workload::new(0xFACE ^ i as u64).query_variants(rep, VARIANTS - 1));
        for (vi, variant) in variants.iter().enumerate() {
            let cached = cache.compile(variant);
            assert!(cached.cacheable, "{}: variant {vi} not cacheable", nq.name);
            assert_eq!(cached.hit, vi > 0, "{}: variant {vi} hit state", nq.name);
            lookups += 1;
            // (a) Byte-identity against the representative's direct compile.
            let got = match cached.compiled.solve(&rep_frozen, &opts) {
                Ok(report) => jsonio::report_json(nq.name, &rep_db, &report),
                Err(e) => format!("error: {e}"),
            };
            assert_eq!(got, expected, "{}: variant {vi} report differs", nq.name);
            // (b) Semantic agreement with the variant's own direct compile
            // on the same data, parsed against the variant's own schema.
            let v_db = dbtext::parse_database(variant, &text).unwrap().freeze();
            let v_direct = Engine::compile(variant);
            match (
                cached.compiled.solve(&rep_frozen, &opts),
                v_direct.solve(&v_db, &opts),
            ) {
                (Ok(c), Ok(d)) => {
                    assert_eq!(c.resilience, d.resilience, "{}: variant {vi}", nq.name);
                    assert_eq!(c.witnesses, d.witnesses, "{}: variant {vi}", nq.name);
                    assert_eq!(
                        format!("{:?}", c.method),
                        format!("{:?}", d.method),
                        "{}: variant {vi}",
                        nq.name
                    );
                    assert_eq!(
                        c.contingency.as_ref().map(Vec::len),
                        d.contingency.as_ref().map(Vec::len),
                        "{}: variant {vi}",
                        nq.name
                    );
                }
                (Err(c), Err(d)) => assert_eq!(c.to_string(), d.to_string(), "{}", nq.name),
                (c, d) => panic!("{}: cached {c:?} vs direct {d:?}", nq.name),
            }
        }
    }
    assert!(lookups >= 100, "only {lookups} variant lookups exercised");
    let stats = cache.stats();
    assert_eq!(stats.misses as usize, all.len());
    assert_eq!(stats.hits as usize, lookups - all.len());
    assert_eq!(stats.bypasses, 0);
}
