//! Integration test for experiments E1, E3 and E6: on randomized workloads,
//! the polynomial algorithms selected by the engine agree with the exact
//! branch-and-bound solver for every PTIME query of the paper, and the
//! contingency sets they report are genuine contingency sets.

use cq::catalogue;
use database::{evaluate, Database, TupleId, WitnessSet};
use resilience_core::engine::{
    CompiledQuery, Engine, SolveMethod, SolveOptions, SolveReport, SolveScratch,
};
use resilience_core::ExactSolver;
use std::collections::HashSet;
use workloads::Workload;

/// Builds a randomized instance for `q`: a random R-graph, saturated unary
/// relations, and a sprinkling of tuples for every other binary relation.
fn random_instance(q: &cq::Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let mut db = workload.random_graph_relation(q, "R", nodes, density);
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        if q.schema().arity(rel) == 2 && name != "R" {
            // Deterministic pseudo-random extra relation.
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        db.insert_named(&name, &[a, b]);
                    }
                }
            }
        }
    }
    db
}

/// Solves over the mutable store (no freeze) through the store-generic
/// engine core, with fresh scratch per call.
fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

fn check_agreement(name: &str, query_text_or_catalogue: &cq::Query, seeds: &[u64], nodes: u64) {
    let solver = Engine::compile(query_text_or_catalogue);
    assert!(
        solver.classification().complexity.is_ptime(),
        "{name} should be PTIME"
    );
    let exact = ExactSolver::new();
    for &seed in seeds {
        let db = random_instance(query_text_or_catalogue, seed, nodes, 0.22);
        let outcome = solve_store_once(&solver, &db);
        assert_ne!(
            outcome.method,
            SolveMethod::ExactBranchAndBound,
            "{name}: the solver should not fall back to exact search"
        );
        let truth = exact.resilience_value(query_text_or_catalogue, &db);
        assert_eq!(
            outcome.resilience.as_finite(),
            truth,
            "{name} (seed {seed}): flow={:?} exact={truth:?}",
            outcome.resilience
        );
        // Contingency sets, when reported, must actually falsify the query.
        if let (Some(gamma), Some(value)) = (&outcome.contingency, outcome.resilience.as_finite()) {
            let gamma: HashSet<TupleId> = gamma.iter().copied().collect();
            assert_eq!(gamma.len(), value, "{name}: contingency size mismatch");
            let ws = WitnessSet::build(query_text_or_catalogue, &db);
            assert!(ws.is_contingency_set(&gamma), "{name}: invalid contingency");
            assert!(!evaluate(query_text_or_catalogue, &db.without(&gamma)));
        }
    }
}

#[test]
fn acconf_flow_agrees_with_exact() {
    check_agreement("q_ACconf", &catalogue::q_acconf().query, &[1, 2, 3, 4], 9);
}

#[test]
fn a3perm_r_flow_agrees_with_exact() {
    check_agreement(
        "q_A3perm-R",
        &catalogue::q_a3perm_r().query,
        &[5, 6, 7, 8],
        8,
    );
}

#[test]
fn permutation_flows_agree_with_exact() {
    check_agreement("q_perm", &catalogue::q_perm().query, &[9, 10, 11], 10);
    check_agreement("q_Aperm", &catalogue::q_aperm().query, &[12, 13, 14], 9);
}

#[test]
fn rep_flow_agrees_with_exact() {
    check_agreement("z3", &catalogue::z3().query, &[15, 16, 17, 18], 9);
}

#[test]
fn sjfree_queries_agree_with_exact() {
    check_agreement("q_rats", &catalogue::q_rats().query, &[19, 20, 21], 7);
    check_agreement("q_brats", &catalogue::q_brats().query, &[22, 23], 7);
}

#[test]
fn swx3perm_r_flow_agrees_with_exact() {
    check_agreement(
        "q_Swx3perm-R",
        &catalogue::q_swx3perm_r().query,
        &[24, 25, 26],
        7,
    );
}

#[test]
fn ts3conf_flow_agrees_with_exact() {
    check_agreement(
        "q_TS3conf",
        &catalogue::q_ts3conf().query,
        &[27, 28, 29, 30],
        7,
    );
}

#[test]
fn hard_queries_still_get_exact_answers() {
    // For NP-complete queries the solver uses branch and bound; verify it on
    // moderate random chain instances against a direct exact call.
    let q = catalogue::q_chain().query;
    let solver = Engine::compile(&q);
    let exact = ExactSolver::new();
    for seed in [31u64, 32, 33] {
        let db = random_instance(&q, seed, 9, 0.2);
        let outcome = solve_store_once(&solver, &db);
        assert_eq!(outcome.method, SolveMethod::ExactBranchAndBound);
        assert_eq!(
            outcome.resilience.as_finite(),
            exact.resilience_value(&q, &db)
        );
    }
}

#[test]
fn resilience_is_monotone_under_tuple_deletion() {
    // Deleting a tuple can never increase resilience.
    let q = catalogue::q_acconf().query;
    let exact = ExactSolver::new();
    let db = random_instance(&q, 99, 7, 0.3);
    let full = exact.resilience_value(&q, &db).unwrap();
    for t in db.all_tuples().take(12) {
        let deleted: HashSet<TupleId> = [t].into_iter().collect();
        let reduced = exact.resilience_value(&q, &db.without(&deleted)).unwrap();
        assert!(reduced <= full, "deleting a tuple increased resilience");
        assert!(
            full - reduced <= 1,
            "one deletion dropped resilience by more than one"
        );
    }
}
