//! Differential tests proving the perf refactor behavior-preserving:
//!
//! * the compiled-plan witness enumerator returns exactly the same witness
//!   multiset as the naive nested-loop reference join, on random queries and
//!   random instances;
//! * Dinic's algorithm (iterative, CSR, current-arc) agrees with the
//!   independently implemented Edmonds–Karp on random networks;
//! * the full solver pipeline (flow dispatch, bitset branch-and-bound)
//!   computes identical resilience values and valid contingency sets.

use database::{
    canonical_witnesses, reference_witnesses, witnesses, Database, TupleId, WitnessSet,
};
use flow::FlowNetwork;
use resilience_core::engine::{CompiledQuery, Engine, SolveOptions, SolveReport, SolveScratch};
use resilience_core::ExactSolver;
use std::collections::HashSet;
use workloads::Workload;

/// The query shapes exercised against random instances: chains, loops,
/// repeated variables, unary anchors, exogenous atoms, disconnected parts.
const QUERY_POOL: &[&str] = &[
    "R(x,y), R(y,z)",
    "R(x,y), R(y,x)",
    "R(x,x), R(x,y)",
    "R(x), S(x,y), R(y)",
    "A(x), R(x,y), B(y)",
    "A(x), R(x,y), R(z,y), C(z)",
    "A(x), R^x(x,y), B(y)",
    "R(x,y), S(y,z), T(z,x)",
    "A(x), R(x,y), R(y,x)",
    "A(x), R(x,y), B(u), S(u,v)",
];

#[test]
fn optimized_enumerator_matches_reference_on_random_instances() {
    for (qi, query) in QUERY_POOL.iter().enumerate() {
        let q = cq::parse_query(query).unwrap();
        for seed in 0..6u64 {
            let db = Workload::new(1000 * qi as u64 + seed).random_database(&q, 12, 5);
            let fast = canonical_witnesses(&witnesses(&q, &db));
            let slow = canonical_witnesses(&reference_witnesses(&q, &db));
            assert_eq!(fast, slow, "{query} seed {seed}: witness multisets differ");
        }
    }
}

#[test]
fn optimized_enumerator_matches_reference_on_dense_graphs() {
    // Denser random graph relations hit deep backtracking paths.
    for query in ["R(x,y), R(y,z)", "R(x,y), R(y,z), R(z,w)"] {
        let q = cq::parse_query(query).unwrap();
        for seed in 0..4u64 {
            let db = Workload::new(seed).random_graph_relation(&q, "R", 6, 0.4);
            let fast = canonical_witnesses(&witnesses(&q, &db));
            let slow = canonical_witnesses(&reference_witnesses(&q, &db));
            assert_eq!(fast, slow, "{query} seed {seed}");
        }
    }
}

/// A deterministic random flow network: `nodes` nodes, `edges` directed
/// edges with capacities in `1..=16` (occasionally INF-free to keep sums
/// meaningful), plus guaranteed source/sink attachments.
fn random_network(
    seed: u64,
    nodes: u32,
    edges: usize,
) -> (FlowNetwork, flow::NodeId, flow::NodeId) {
    // Tiny xorshift so this test does not depend on the rand shim's API.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut g = FlowNetwork::new();
    let ids = g.add_nodes(nodes as usize);
    let s = ids[0];
    let t = ids[nodes as usize - 1];
    for _ in 0..edges {
        let from = ids[(next() % nodes as u64) as usize];
        let to = ids[(next() % nodes as u64) as usize];
        let cap = next() % 16 + 1;
        g.add_edge(from, to, cap);
    }
    // Make sure s has some out-capacity and t some in-capacity.
    g.add_edge(
        s,
        ids[1 + (next() % (nodes as u64 - 2)) as usize],
        next() % 8 + 1,
    );
    g.add_edge(
        ids[1 + (next() % (nodes as u64 - 2)) as usize],
        t,
        next() % 8 + 1,
    );
    (g, s, t)
}

#[test]
fn dinic_agrees_with_edmonds_karp_on_random_networks() {
    for seed in 0..40u64 {
        let nodes = 4 + (seed % 9) as u32;
        let edges = 3 + (seed as usize * 7) % 40;
        let (mut g, s, t) = random_network(seed, nodes, edges);
        let dinic = g.max_flow_dinic(s, t);
        let ek = g.max_flow_edmonds_karp(s, t);
        assert_eq!(
            dinic, ek,
            "seed {seed} ({nodes} nodes, {edges} edges): dinic {dinic} != edmonds-karp {ek}"
        );
        // And re-running Dinic after Edmonds–Karp mutated the residuals
        // must reproduce the same value (reset_flow correctness).
        assert_eq!(g.max_flow_dinic(s, t), dinic, "seed {seed}: rerun differs");
    }
}

/// Solves over the mutable store (no freeze) through the store-generic
/// engine core, with fresh scratch per call.
fn solve_store_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("store solve failed")
}

#[test]
fn solver_pipeline_produces_identical_resilience_and_valid_contingencies() {
    for (qi, query) in QUERY_POOL.iter().enumerate() {
        let q = cq::parse_query(query).unwrap();
        let solver = Engine::compile(&q);
        let exact = ExactSolver::new();
        for seed in 0..4u64 {
            let db = Workload::new(7000 + 100 * qi as u64 + seed).random_database(&q, 10, 4);
            let outcome = solve_store_once(&solver, &db);
            let truth = exact.resilience_value(&q, &db);
            assert_eq!(outcome.resilience.as_finite(), truth, "{query} seed {seed}");
            if let (Some(r), Some(gamma)) = (outcome.resilience.as_finite(), &outcome.contingency) {
                let gamma: HashSet<TupleId> = gamma.iter().copied().collect();
                assert_eq!(gamma.len(), r, "{query} seed {seed}: non-minimal set");
                let ws = WitnessSet::build(&q, &db);
                assert!(
                    ws.is_contingency_set(&gamma),
                    "{query} seed {seed}: returned set does not falsify the query"
                );
            }
        }
    }
}
