//! Integration test for experiments E2, E5 and E7: the hardness gadgets are
//! validated end-to-end on randomized source instances — the source problem
//! is solved exactly (DPLL / branch-and-bound vertex cover) and the
//! constructed database's resilience is computed exactly; the two must line
//! up exactly as the paper's accounting predicts.

use gadgets::paths::{binary_path_gadget, BinaryPathTarget};
use gadgets::sat_chain::{chain_expansion_gadget, ChainExpansion};
use gadgets::triangle::{triangle_gadget_from_vc, tripod_from_triangle};
use gadgets::vc_qvc::vc_to_qvc;
use resilience_core::ExactSolver;
use satgad::min_vertex_cover_size;
use workloads::Workload;

#[test]
fn qvc_gadget_on_random_graphs() {
    let exact = ExactSolver::new();
    for seed in 0..6u64 {
        let graph = Workload::new(seed).random_undirected_graph(8, 0.3);
        if graph.num_edges() == 0 {
            continue;
        }
        let gadget = vc_to_qvc(&graph);
        let vc = min_vertex_cover_size(&graph);
        let rho = exact
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        assert_eq!(rho, vc, "seed {seed}");
    }
}

#[test]
fn chain_gadget_on_random_formulas() {
    let exact = ExactSolver::new();
    for seed in 0..4u64 {
        let formula = Workload::new(100 + seed).random_3cnf(4, 3);
        let gadget = chain_expansion_gadget(&formula, ChainExpansion::Plain);
        let rho = exact
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        let satisfiable = formula.is_satisfiable();
        assert!(rho >= gadget.threshold, "seed {seed}");
        assert_eq!(
            satisfiable,
            rho == gadget.threshold,
            "seed {seed}: sat={satisfiable} rho={rho} k={}",
            gadget.threshold
        );
    }
}

#[test]
fn chain_expansion_gadgets_on_a_random_formula() {
    // The expansion gadgets reuse the plain construction and add unary
    // tuples; they preserve the witness structure and can only lower the
    // resilience (the exact Lemma 52-54 thresholds are not claimed — see the
    // module docs of gadgets::sat_chain).
    let exact = ExactSolver::new();
    let formula = Workload::new(55).random_3cnf(4, 2);
    let plain = chain_expansion_gadget(&formula, ChainExpansion::Plain);
    let plain_rho = exact
        .resilience_value(&plain.query, &plain.database)
        .unwrap();
    assert!(plain_rho >= plain.threshold);
    assert_eq!(formula.is_satisfiable(), plain_rho == plain.threshold);
    let plain_witnesses = database::witnesses(&plain.query, &plain.database).len();
    for expansion in [ChainExpansion::A, ChainExpansion::C, ChainExpansion::AC] {
        let gadget = chain_expansion_gadget(&formula, expansion);
        assert!(!gadget.threshold_is_exact);
        let witnesses = database::witnesses(&gadget.query, &gadget.database).len();
        assert_eq!(witnesses, plain_witnesses, "{expansion:?}");
        let rho = exact
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        assert!(rho <= plain_rho, "{expansion:?}");
    }
}

#[test]
fn triangle_gadget_on_random_graphs() {
    let exact = ExactSolver::new();
    for seed in 0..5u64 {
        let graph = Workload::new(200 + seed).random_undirected_graph(6, 0.35);
        let gadget = triangle_gadget_from_vc(&graph);
        let vc = min_vertex_cover_size(&graph);
        let rho = exact
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        assert_eq!(rho, gadget.threshold_for_cover(vc), "seed {seed}");
    }
}

#[test]
fn tripod_gadget_preserves_resilience_on_random_graphs() {
    let exact = ExactSolver::new();
    for seed in 0..3u64 {
        let graph = Workload::new(300 + seed).random_undirected_graph(5, 0.4);
        let triangle = triangle_gadget_from_vc(&graph);
        let tripod = tripod_from_triangle(&triangle.query, &triangle.database);
        assert_eq!(
            exact.resilience_value(&triangle.query, &triangle.database),
            exact.resilience_value(&tripod.query, &tripod.database),
            "seed {seed}"
        );
    }
}

#[test]
fn binary_path_gadgets_on_random_graphs() {
    let exact = ExactSolver::new();
    for seed in 0..4u64 {
        let graph = Workload::new(400 + seed).random_undirected_graph(8, 0.3);
        let vc = min_vertex_cover_size(&graph);
        for target in [BinaryPathTarget::Z1, BinaryPathTarget::Z2] {
            let gadget = binary_path_gadget(&graph, target);
            let rho = exact
                .resilience_value(&gadget.query, &gadget.database)
                .unwrap();
            assert_eq!(rho, vc, "seed {seed} target {target:?}");
        }
    }
}
