//! Integration test for experiment E10: the dichotomy classifier agrees with
//! the paper's published classification on every named query, and the
//! classification is invariant under renaming of variables and relations.

use cq::catalogue::{all_named_queries, PaperClass};
use cq::{classify, parse_query, Complexity};

#[test]
fn classifier_reproduces_the_papers_classification_table() {
    let mut mismatches = Vec::new();
    for nq in all_named_queries() {
        let got = classify(&nq.query).complexity;
        let ok = match nq.paper_class {
            PaperClass::PTime => got.is_ptime(),
            PaperClass::NpComplete => got.is_np_complete(),
            PaperClass::Open => got.is_open(),
        };
        if !ok {
            mismatches.push(format!(
                "{}: paper {:?}, classifier {}",
                nq.name, nq.paper_class, got
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "classification mismatches:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn classification_is_invariant_under_renaming() {
    let pairs = [
        ("R(x,y), R(y,z)", "Edge(u,v), Edge(v,w)"),
        (
            "A(x), R(x,y), R(z,y), C(z)",
            "Left(p), Link(p,q), Link(r,q), Right(r)",
        ),
        ("A(x), R(x,y), R(y,x), B(y)", "P(s), F(s,t), F(t,s), Q(t)"),
        ("R(x), S(x,y), R(y)", "Node(a), Arc(a,b), Node(b)"),
    ];
    for (original, renamed) in pairs {
        let a = classify(&parse_query(original).unwrap()).complexity;
        let b = classify(&parse_query(renamed).unwrap()).complexity;
        let same = matches!(
            (&a, &b),
            (Complexity::PTime(_), Complexity::PTime(_))
                | (Complexity::NpComplete(_), Complexity::NpComplete(_))
                | (Complexity::Open, Complexity::Open)
        );
        assert!(same, "{original} vs {renamed}: {a} vs {b}");
    }
}

#[test]
fn figure_five_rows_are_reproduced() {
    // The PTIME / NP-hard columns of Figure 5 (two R-atom patterns).
    let np_hard = [
        "R(x,y), R(y,z)",                   // chain
        "A(x), R(x,y), R(y,z), B(y), C(z)", // chain with all unary anchors
        "R(x,y), H^x(x,z), R(z,y)",         // confluence with exogenous path
        "A(x), R(x,y), R(y,x), B(y)",       // bound permutation
    ];
    let ptime = [
        "A(x), R(x,y), R(z,y), C(z)", // confluence without exogenous path
        "R(x,y), R(y,x)",             // unbound permutation
        "A(x), R(x,y), R(y,x)",       // unbound permutation with one anchor
        "R(x,x), R(x,y), A(y)",       // REP (z3)
    ];
    for text in np_hard {
        let c = classify(&parse_query(text).unwrap()).complexity;
        assert!(c.is_np_complete(), "{text} should be NP-complete, got {c}");
    }
    for text in ptime {
        let c = classify(&parse_query(text).unwrap()).complexity;
        assert!(c.is_ptime(), "{text} should be PTIME, got {c}");
    }
}

#[test]
fn preprocessing_steps_are_visible_in_the_evidence() {
    // q_brats: domination leaves only B and A endogenous; the evidence
    // reports the normal form.
    let q = parse_query("B(y), R(x,y), A(x), T(z,x), S(y,z)").unwrap();
    let c = classify(&q);
    assert!(c.complexity.is_ptime());
    let normalized = &c.evidence.normalized;
    let endo: Vec<&str> = normalized
        .endogenous_atoms()
        .into_iter()
        .map(|i| normalized.schema().name(normalized.atom(i).relation))
        .collect();
    assert_eq!(endo, vec!["B", "A"]);
}
