//! Dichotomy explorer: classify every named query of the paper and print a
//! table comparing the classifier's verdict with the paper's claim — the
//! executable version of Figure 5 and the Section 8 case analysis
//! (experiment E10 of DESIGN.md).
//!
//! Run with `cargo run --example dichotomy_explorer`.

use cq::binary_graph::BinaryGraph;
use cq::catalogue::{all_named_queries, PaperClass};
use resilience::prelude::*;

fn verdict(c: &Complexity) -> &'static str {
    match c {
        Complexity::PTime(_) => "PTIME",
        Complexity::NpComplete(_) => "NP-complete",
        Complexity::Open => "open",
    }
}

fn paper(c: PaperClass) -> &'static str {
    match c {
        PaperClass::PTime => "PTIME",
        PaperClass::NpComplete => "NP-complete",
        PaperClass::Open => "open",
    }
}

fn main() {
    println!(
        "{:<18} {:<14} {:<14} {:<7} evidence",
        "query", "paper", "classifier", "agree"
    );
    println!("{}", "-".repeat(110));
    let mut agreements = 0usize;
    let all = all_named_queries();
    let total = all.len();
    for nq in all {
        let classification = classify(&nq.query);
        let ours = verdict(&classification.complexity);
        let theirs = paper(nq.paper_class);
        let agree = ours == theirs;
        if agree {
            agreements += 1;
        }
        let evidence = classification
            .evidence
            .notes
            .last()
            .cloned()
            .unwrap_or_default();
        println!(
            "{:<18} {:<14} {:<14} {:<7} {}",
            nq.name,
            theirs,
            ours,
            if agree { "yes" } else { "NO" },
            evidence
        );
    }
    println!("{}", "-".repeat(110));
    println!("agreement: {agreements}/{total}");

    // Binary graphs (Definition 8) rendered as Graphviz DOT for the two
    // queries Figure 2 contrasts.
    for name in ["q_vc", "q_chain"] {
        let nq = cq::catalogue::by_name(name).unwrap();
        let graph = BinaryGraph::new(&nq.query);
        println!("\n// binary graph of {name}\n{}", graph.to_dot(&nq.query));
    }
}
