//! Quickstart: parse a query, classify its resilience complexity, compile it
//! once, build and freeze a small database, and compute its resilience.
//!
//! Run with `cargo run --example quickstart`.

use resilience::prelude::*;

fn main() {
    // ---------------------------------------------------------------
    // 1. Queries are written in Datalog-style syntax. Exogenous atoms
    //    (whose tuples may never be deleted) carry a `^x` marker.
    // ---------------------------------------------------------------
    let chain = parse_query("q_chain :- R(x,y), R(y,z)").unwrap();
    let acconf = parse_query("q_ACconf :- A(x), R(x,y), R(z,y), C(z)").unwrap();

    // ---------------------------------------------------------------
    // 2. `classify` implements the paper's dichotomy (Theorem 37 plus the
    //    general hardness criteria of Sections 5-6 and the Section 8
    //    catalogue). The chain query is NP-complete, the confluence query is
    //    solvable by network flow.
    // ---------------------------------------------------------------
    for q in [&chain, &acconf] {
        let classification = classify(q);
        println!("{q}");
        println!("  complexity : {}", classification.complexity);
        for note in &classification.evidence.notes {
            println!("  note       : {note}");
        }
        println!();
    }

    // ---------------------------------------------------------------
    // 3. `Engine::compile` runs classification and join-plan compilation
    //    once per query; the result is reusable across every instance.
    //    Databases are built against the query's schema and *frozen*
    //    (compacted to immutable CSR) before solving. This is the
    //    three-tuple example of Section 2.1: witnesses (1,2,3), (2,3,3),
    //    (3,3,3); the resilience is 2 (delete R(3,3) and either other
    //    tuple).
    // ---------------------------------------------------------------
    let compiled = Engine::compile(&chain);
    let mut db = Database::for_query(&chain);
    db.insert_named("R", &[1u64, 2]);
    db.insert_named("R", &[2u64, 3]);
    db.insert_named("R", &[3u64, 3]);
    let frozen = db.freeze();

    let report = compiled
        .solve(&frozen, &SolveOptions::new())
        .expect("solve failed");
    println!("database:\n{db}\n");
    println!(
        "resilience of q_chain over D = {} (method: {:?})",
        report.resilience, report.method
    );
    if let Some(gamma) = &report.contingency {
        let tuples: Vec<String> = gamma
            .iter()
            .map(|&t| {
                let rel = db.schema().name(db.relation_of(t));
                let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
                format!("{rel}({})", vals.join(","))
            })
            .collect();
        println!("a minimum contingency set: {{{}}}", tuples.join(", "));
    }

    // ---------------------------------------------------------------
    // 4. The same compiled query solves many instances at once:
    //    `solve_batch` shares the plan across scoped threads. For PTIME
    //    queries the engine dispatches to a flow algorithm; the exact
    //    branch-and-bound solver is always available as ground truth.
    // ---------------------------------------------------------------
    let compiled2 = Engine::compile(&acconf);
    let instances: Vec<_> = (0..4u64)
        .map(|shift| {
            let mut db2 = Database::for_query(&acconf);
            db2.insert_named("A", &[1u64]);
            db2.insert_named("A", &[4u64]);
            db2.insert_named("C", &[5u64]);
            db2.insert_named("R", &[1u64, 2 + shift]);
            db2.insert_named("R", &[4u64, 2 + shift]);
            db2.insert_named("R", &[5u64, 2 + shift]);
            db2.freeze()
        })
        .collect();
    let reports = compiled2.solve_batch(&instances, &SolveOptions::new());
    println!();
    for (i, report) in reports.iter().enumerate() {
        let report = report.as_ref().expect("batch solve failed");
        // The exact solver is generic over the store: it cross-checks the
        // frozen instance directly.
        let exact = ExactSolver::new().resilience_value(&acconf, &instances[i]);
        println!(
            "resilience of q_ACconf over D{i} = {} via {:?} (exact check: {:?})",
            report.resilience, report.method, exact
        );
        assert_eq!(report.resilience.as_finite(), exact);
    }
}
