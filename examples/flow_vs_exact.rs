//! Flow vs exact: run the polynomial-time flow algorithms of the solver
//! against the exponential exact solver on randomized workloads for the
//! paper's PTIME queries, reporting agreement and wall-clock time — the
//! interactive version of experiments E3 and E6.
//!
//! Run with `cargo run --release --example flow_vs_exact`.

use resilience::prelude::*;
use std::time::Instant;

fn main() {
    let cases = [
        ("q_ACconf (Prop 12)", "A(x), R(x,y), R(z,y), C(z)"),
        ("q_A3perm-R (Prop 13)", "A(x), R(x,y), R(y,z), R(z,y)"),
        ("q_Aperm (Prop 33)", "A(x), R(x,y), R(y,x)"),
        ("z3 (Prop 36)", "R(x,x), R(x,y), A(y)"),
        ("q_rats (Thm 7)", "R(x,y), A(x), T(z,x), S(y,z)"),
    ];

    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>12} {:>12} {:>7}",
        "query", "nodes", "tuples", "witnesses", "flow (µs)", "exact (µs)", "agree"
    );
    for (name, text) in cases {
        let q = parse_query(text).unwrap();
        let compiled = Engine::compile(&q);
        let exact = ExactSolver::new();
        for nodes in [6u64, 10, 14] {
            let mut workload = Workload::new(42 + nodes);
            let mut db = workload.random_graph_relation(&q, "R", nodes, 0.25);
            workload.saturate_unary_relations(&q, &mut db, nodes);
            // Binary non-R relations (S, T) get a sprinkling of tuples too.
            for rel in q.schema().relation_ids() {
                let rel_name = q.schema().name(rel).to_string();
                if q.schema().arity(rel) == 2 && rel_name != "R" {
                    for a in 0..nodes {
                        for b in 0..nodes {
                            if (a * 7 + b * 3 + nodes) % 5 == 0 {
                                db.insert_named(&rel_name, &[a, b]);
                            }
                        }
                    }
                }
            }
            let witnesses = database::witnesses(&q, &db).len();
            let frozen = db.freeze();

            let start = Instant::now();
            let flow_report = compiled
                .solve(&frozen, &SolveOptions::new())
                .expect("flow solve failed");
            let flow_time = start.elapsed().as_micros();

            let start = Instant::now();
            let exact_value = exact.resilience_value(&q, &db);
            let exact_time = start.elapsed().as_micros();

            println!(
                "{:<22} {:>6} {:>10} {:>10} {:>12} {:>12} {:>7}",
                name,
                nodes,
                db.num_tuples(),
                witnesses,
                flow_time,
                exact_time,
                if flow_report.resilience.as_finite() == exact_value {
                    "yes"
                } else {
                    "NO"
                }
            );
            assert_eq!(
                flow_report.resilience.as_finite(),
                exact_value,
                "{name}: flow and exact disagree"
            );
        }
    }
    println!("\nAll flow answers matched the exact solver.");
}
