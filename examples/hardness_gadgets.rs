//! Hardness gadgets end-to-end: build the paper's reductions on concrete
//! inputs and validate them against exact solvers for the source problems.
//!
//! * Proposition 9  — Vertex Cover → RES(q_vc)
//! * Proposition 10 — 3SAT → RES(q_chain) (Figure 10 gadget)
//! * Proposition 56 / Section 9 — Vertex Cover → RES(q_△) via Independent
//!   Join Paths, and Proposition 57 — RES(q_△) → RES(q_T).
//!
//! Run with `cargo run --example hardness_gadgets`.

use gadgets::paths::{binary_path_gadget, BinaryPathTarget};
use gadgets::sat_chain::{chain_expansion_gadget, ChainExpansion};
use gadgets::triangle::{triangle_gadget_from_vc, tripod_from_triangle};
use gadgets::vc_qvc::vc_to_qvc;
use resilience::prelude::*;
use satgad::{min_vertex_cover_size, CnfFormula, UndirectedGraph};

fn main() {
    let exact = ExactSolver::new();

    // ---------------------------------------------------------------
    // Vertex Cover -> q_vc (Proposition 9): a 5-cycle has cover number 3.
    // ---------------------------------------------------------------
    let mut c5 = UndirectedGraph::new(5);
    for i in 0..5 {
        c5.add_edge(i, (i + 1) % 5);
    }
    let gadget = vc_to_qvc(&c5);
    let vc = min_vertex_cover_size(&c5);
    let rho = exact
        .resilience_value(&gadget.query, &gadget.database)
        .unwrap();
    println!("[Prop 9 ] C5: min vertex cover = {vc}, resilience of D_G = {rho}  (must be equal)");

    // ---------------------------------------------------------------
    // 3SAT -> q_chain (Proposition 10, Figure 10).
    // ---------------------------------------------------------------
    let satisfiable = CnfFormula::from_clauses(
        3,
        &[
            &[(0, true), (1, true), (2, true)],
            &[(0, false), (1, true), (2, false)],
        ],
    );
    let mut unsatisfiable = CnfFormula::new(3);
    for mask in 0..8u8 {
        unsatisfiable.add_clause(
            (0..3)
                .map(|v| satgad::Literal {
                    var: v,
                    positive: mask & (1 << v) != 0,
                })
                .collect(),
        );
    }
    for (label, formula) in [
        ("satisfiable", &satisfiable),
        ("unsatisfiable", &unsatisfiable),
    ] {
        let g = chain_expansion_gadget(formula, ChainExpansion::Plain);
        let rho = exact.resilience_value(&g.query, &g.database).unwrap();
        println!(
            "[Prop 10] {label} formula ({} clauses): |D| = {} tuples, threshold k = {}, resilience = {} -> formula {} 3SAT",
            formula.num_clauses(),
            g.database.num_tuples(),
            g.threshold,
            rho,
            if rho == g.threshold { "IS in" } else { "is NOT in" },
        );
    }

    // ---------------------------------------------------------------
    // Vertex Cover -> q_triangle via Independent Join Paths (Section 9),
    // then on to the tripod query (Proposition 57).
    // ---------------------------------------------------------------
    let mut house = UndirectedGraph::new(4);
    house.add_edge(0, 1);
    house.add_edge(1, 2);
    house.add_edge(2, 3);
    house.add_edge(3, 0);
    let triangle = triangle_gadget_from_vc(&house);
    let vc = min_vertex_cover_size(&house);
    let rho_triangle = exact
        .resilience_value(&triangle.query, &triangle.database)
        .unwrap();
    println!(
        "[Sec 9  ] C4: VC = {vc}, |E| = {}, resilience of the IJP gadget = {} (expect VC + |E| = {})",
        triangle.num_edges,
        rho_triangle,
        triangle.threshold_for_cover(vc)
    );
    let tripod = tripod_from_triangle(&triangle.query, &triangle.database);
    let rho_tripod = exact
        .resilience_value(&tripod.query, &tripod.database)
        .unwrap();
    println!(
        "[Prop 57] tripod instance built from the triangle instance: resilience {} (must match {})",
        rho_tripod, rho_triangle
    );

    // ---------------------------------------------------------------
    // Binary paths (Theorem 28): z1 on a star graph.
    // ---------------------------------------------------------------
    let mut star = UndirectedGraph::new(6);
    for leaf in 1..6 {
        star.add_edge(0, leaf);
    }
    let z1 = binary_path_gadget(&star, BinaryPathTarget::Z1);
    let rho_z1 = exact.resilience_value(&z1.query, &z1.database).unwrap();
    println!(
        "[Thm 28 ] star K1,5: VC = {}, resilience of the z1 instance = {rho_z1}",
        min_vertex_cover_size(&star)
    );

    // ---------------------------------------------------------------
    // The classifier knows all of these queries are NP-complete.
    // ---------------------------------------------------------------
    for q in [&gadget.query, &triangle.query, &z1.query] {
        let c = classify(q);
        println!("classifier: {} is {}", q, c.complexity);
    }
}
