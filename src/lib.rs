//! # Resilience for Binary Conjunctive Queries with Self-Joins
//!
//! Facade crate for the reproduction of *"New Results for the Complexity of
//! Resilience for Binary Conjunctive Queries with Self-Joins"* (Freire,
//! Gatterbauer, Immerman, Meliou; PODS 2020).
//!
//! The workspace is organised into focused crates, all re-exported here:
//!
//! * [`cq`] — conjunctive-query substrate: data model, parser, minimization,
//!   hypergraphs, domination, triads, self-join patterns and the dichotomy
//!   classifier (Theorem 37).
//! * [`database`] — database instances ([`database::Database`] for loading,
//!   [`database::FrozenDb`] for solving), Boolean query evaluation and
//!   witness enumeration over compiled [`database::QueryPlan`]s.
//! * [`flow`] — max-flow / min-cut substrate used by every PTIME algorithm.
//! * [`satgad`] — 3SAT, Max-2-SAT and Vertex Cover substrate used to build
//!   and validate hardness gadgets.
//! * [`core`] — the resilience solvers themselves: the compiled
//!   [`engine`](resilience_core::engine), exact hitting-set search, the
//!   flow-based polynomial algorithms and Independent Join Paths
//!   (Section 9).
//! * [`gadgets`] — executable hardness reductions (Propositions 9, 10, 34,
//!   39, 56, 57 and the path/chain constructions).
//! * [`workloads`] — reproducible random workload generators.
//!
//! ## Quick start
//!
//! The paper's dichotomy makes *classification* a per-query cost and
//! *resilience* a per-instance cost; the API mirrors that split. Compile a
//! query once, then solve as many (frozen) instances as you like through the
//! compiled artifact:
//!
//! ```
//! use resilience::prelude::*;
//!
//! // The chain query q_chain :- R(x,y), R(y,z)  (NP-complete, Proposition 10).
//! let q = parse_query("R(x,y), R(y,z)").unwrap();
//! assert!(classify(&q).complexity.is_np_complete());
//!
//! // Compile once: classification + join-plan compilation.
//! let compiled = Engine::compile(&q);
//!
//! // Build a tiny database, freeze it, and compute its resilience exactly.
//! let mut db = Database::new(q.schema().clone());
//! let r = db.schema().relation_id("R").unwrap();
//! db.insert(r, &[1, 2]);
//! db.insert(r, &[2, 3]);
//! db.insert(r, &[3, 3]);
//! let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
//! assert_eq!(report.resilience, Resilience::Finite(2));
//! ```
//!
//! ## Batching
//!
//! Many instances of the same query go through
//! [`CompiledQuery::solve_batch`](resilience_core::engine::CompiledQuery::solve_batch),
//! which shares the compiled plan across scoped threads (one reusable
//! scratch per thread):
//!
//! ```
//! use resilience::prelude::*;
//!
//! let q = parse_query("R(x,y), R(y,z)").unwrap();
//! let compiled = Engine::compile(&q);
//! let instances: Vec<FrozenDb> = (0..8u64)
//!     .map(|i| {
//!         let mut db = Database::for_query(&q);
//!         db.insert_named("R", &[i, i + 1]);
//!         db.insert_named("R", &[i + 1, i + 2]);
//!         db.freeze()
//!     })
//!     .collect();
//! for report in compiled.solve_batch(&instances, &SolveOptions::new()) {
//!     assert_eq!(report.unwrap().resilience, Resilience::Finite(1));
//! }
//! ```
//!
pub use cq;
pub use database;
pub use flow;
pub use gadgets;
pub use resilience_core as core;
pub use satgad;
pub use workloads;

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use cq::catalogue;
    pub use cq::{classify, parse_query, Classification, Complexity, Query, QueryBuilder};
    pub use database::{ConstPool, Constant, Database, FrozenDb, TupleId, TupleStore};
    pub use resilience_core::engine::{
        CompiledQuery, Engine, Resilience, SolveError, SolveMethod, SolveOptions, SolveReport,
        SolveScratch, SolveSession,
    };
    pub use resilience_core::{exact::ExactSolver, ijp};
    pub use workloads::Workload;
}
