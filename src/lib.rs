//! # Resilience for Binary Conjunctive Queries with Self-Joins
//!
//! Facade crate for the reproduction of *"New Results for the Complexity of
//! Resilience for Binary Conjunctive Queries with Self-Joins"* (Freire,
//! Gatterbauer, Immerman, Meliou; PODS 2020).
//!
//! The workspace is organised into focused crates, all re-exported here:
//!
//! * [`cq`] — conjunctive-query substrate: data model, parser, minimization,
//!   hypergraphs, domination, triads, self-join patterns and the dichotomy
//!   classifier (Theorem 37).
//! * [`database`] — database instances, Boolean query evaluation and witness
//!   enumeration.
//! * [`flow`] — max-flow / min-cut substrate used by every PTIME algorithm.
//! * [`satgad`] — 3SAT, Max-2-SAT and Vertex Cover substrate used to build
//!   and validate hardness gadgets.
//! * [`core`](resilience_core) — the resilience solvers themselves: exact
//!   hitting-set search, the flow-based polynomial algorithms, the unified
//!   dispatcher and Independent Join Paths (Section 9).
//! * [`gadgets`] — executable hardness reductions (Propositions 9, 10, 34,
//!   39, 56, 57 and the path/chain constructions).
//! * [`workloads`] — reproducible random workload generators.
//!
//! ## Quick start
//!
//! ```
//! use resilience::prelude::*;
//!
//! // The chain query q_chain :- R(x,y), R(y,z)  (NP-complete, Proposition 10).
//! let q = parse_query("R(x,y), R(y,z)").unwrap();
//! assert!(classify(&q).complexity.is_np_complete());
//!
//! // Build a tiny database and compute its resilience exactly.
//! let mut db = Database::new(q.schema().clone());
//! let r = db.schema().relation_id("R").unwrap();
//! db.insert(r, &[1, 2]);
//! db.insert(r, &[2, 3]);
//! db.insert(r, &[3, 3]);
//! let solver = ResilienceSolver::new(&q);
//! let result = solver.solve(&db);
//! assert_eq!(result.resilience, Some(2));
//! ```

pub use cq;
pub use database;
pub use flow;
pub use gadgets;
pub use resilience_core as core;
pub use satgad;
pub use workloads;

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use cq::catalogue;
    pub use cq::{classify, parse_query, Classification, Complexity, Query, QueryBuilder};
    pub use database::{Constant, Database, TupleId};
    pub use resilience_core::{
        exact::ExactSolver, ijp, solver::ResilienceSolver, solver::SolveOutcome,
    };
    pub use workloads::Workload;
}
