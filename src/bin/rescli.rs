//! `rescli` — a small command-line front end for the resilience library.
//!
//! ```text
//! rescli classify "<query>"             classify a query (Theorem 37 + Secs. 5-8)
//! rescli solve    "<query>" <file>      compute resilience over a database file
//! rescli ijp      "<query>" [joins] [partitions]
//!                                        search for an Independent Join Path
//! rescli catalogue                       print the named-query catalogue
//! ```
//!
//! The database file format is one tuple per line, `Rel(c1,c2,...)`, with
//! `#` comments; constants are non-negative integers or arbitrary labels
//! (labels are interned).

use resilience::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rescli classify \"<query>\"\n  rescli solve \"<query>\" <database-file>\n  \
         rescli ijp \"<query>\" [max-joins] [max-partitions]\n  rescli catalogue"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("classify") if args.len() == 2 => classify_cmd(&args[1]),
        Some("solve") if args.len() == 3 => solve_cmd(&args[1], &args[2]),
        Some("ijp") if (2..=4).contains(&args.len()) => {
            let joins = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let partitions = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10_000);
            ijp_cmd(&args[1], joins, partitions)
        }
        Some("catalogue") if args.len() == 1 => catalogue_cmd(),
        _ => usage(),
    }
}

fn parse_or_exit(text: &str) -> Result<Query, ExitCode> {
    match parse_query(text) {
        Ok(q) => Ok(q),
        Err(e) => {
            eprintln!("could not parse query: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn classify_cmd(text: &str) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let c = classify(&q);
    println!("query      : {q}");
    println!("complexity : {}", c.complexity);
    println!("normal form: {}", c.evidence.normalized);
    if let Some(t) = &c.evidence.triad {
        println!("triad      : atoms {:?}", t.atoms);
    }
    for note in &c.evidence.notes {
        println!("note       : {note}");
    }
    ExitCode::SUCCESS
}

/// Parses a database file: one `Rel(c1,...,ck)` fact per line.
fn load_database(q: &Query, path: &str) -> Result<Database, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut db = Database::for_query(q);
    let mut interner: HashMap<String, u64> = HashMap::new();
    let mut next_constant = 1_000_000u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let open = line
            .find('(')
            .ok_or_else(|| format!("line {}: expected Rel(...)", lineno + 1))?;
        let close = line
            .rfind(')')
            .ok_or_else(|| format!("line {}: missing ')'", lineno + 1))?;
        let rel = line[..open].trim();
        let values: Result<Vec<u64>, String> = line[open + 1..close]
            .split(',')
            .map(|v| {
                let v = v.trim();
                if let Ok(n) = v.parse::<u64>() {
                    Ok(n)
                } else if v.is_empty() {
                    Err(format!("line {}: empty constant", lineno + 1))
                } else {
                    Ok(*interner.entry(v.to_string()).or_insert_with(|| {
                        next_constant += 1;
                        next_constant
                    }))
                }
            })
            .collect();
        let values = values?;
        if db.schema().relation_id(rel).is_none() {
            return Err(format!(
                "line {}: relation {rel} not in the query",
                lineno + 1
            ));
        }
        db.insert_named(rel, &values);
    }
    Ok(db)
}

fn solve_cmd(text: &str, path: &str) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let db = match load_database(&q, path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let solver = ResilienceSolver::new(&q);
    let outcome = solver.solve(&db);
    println!("query        : {q}");
    println!("complexity   : {}", solver.classification().complexity);
    println!("tuples       : {}", db.num_tuples());
    match outcome.resilience {
        Some(r) => println!("resilience   : {r}  (method {:?})", outcome.method),
        None => println!("resilience   : unbounded (the query cannot be made false)"),
    }
    if let Some(gamma) = &outcome.contingency {
        let mut rendered = String::new();
        for &t in gamma {
            let rel = db.schema().name(db.relation_of(t));
            let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
            let _ = write!(rendered, "{rel}({}) ", vals.join(","));
        }
        println!("contingency  : {rendered}");
    }
    ExitCode::SUCCESS
}

fn ijp_cmd(text: &str, joins: usize, partitions: usize) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    println!("searching for an Independent Join Path for {q}");
    println!("(up to {joins} joins, {partitions} partitions per join count)");
    match ijp::search_ijp(&q, joins, partitions) {
        Some(found) => {
            println!(
                "found after {} partitions with {} joins; distinguished relation {} (resilience {})",
                found.partitions_tried,
                found.joins,
                found.certificate.relation,
                found.certificate.resilience
            );
            println!("database:\n{}", found.database);
            ExitCode::SUCCESS
        }
        None => {
            println!("no IJP found within the budget");
            ExitCode::FAILURE
        }
    }
}

fn catalogue_cmd() -> ExitCode {
    for nq in catalogue::all_named_queries() {
        let c = classify(&nq.query);
        println!(
            "{:<18} {:<12} {}",
            nq.name,
            format!("{:?}", nq.paper_class),
            c.complexity
        );
    }
    ExitCode::SUCCESS
}
