//! `rescli` — a small command-line front end for the resilience library.
//!
//! ```text
//! rescli classify "<query>"              classify a query (Theorem 37 + Secs. 5-8)
//! rescli solve    "<query>" <file>       compute resilience over a database file
//! rescli batch    "<query>" <file>...    compile once, solve every file in parallel
//! rescli whatif   "<query>" <file> <script>
//!                                         interactive what-if analysis: script
//!                                         delete/restore/solve steps against one
//!                                         loaded instance (deletion-aware session)
//! rescli ijp      "<query>" [joins] [partitions]
//!                                         search for an Independent Join Path
//! rescli catalogue                        print the named-query catalogue
//! ```
//!
//! `solve`, `batch` and `whatif` accept `--json` for machine-readable
//! output.
//!
//! A what-if script is one command per line (`#` comments allowed):
//! `delete Rel(c1,...)`, `restore Rel(c1,...)`, `solve`, `reset`. The
//! instance is loaded and its witnesses enumerated exactly once; every
//! `solve` answers the current deletion state through the engine's
//! [`SolveSession`] live counters instead of copying the database.
//!
//! The database file format is one tuple per line, `Rel(c1,c2,...)`, with
//! `#` comments; constants are non-negative integers or arbitrary labels.
//! Labels are interned through the shared [`database::ConstPool`] and then
//! offset past the largest numeric constant of the file, so a label can
//! never collide with an explicit numeric constant.

use resilience::core::engine::{
    CompiledQuery, Engine, Resilience, SolveOptions, SolveReport, SolveSession,
};
use resilience::database::ConstPool;
use resilience::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rescli classify \"<query>\"\n  rescli solve [--json] \"<query>\" <database-file>\n  \
         rescli batch [--json] \"<query>\" <database-file>...\n  \
         rescli whatif [--json] \"<query>\" <database-file> <script-file>\n  \
         rescli ijp \"<query>\" [max-joins] [max-partitions]\n  rescli catalogue"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    match args.first().map(|s| s.as_str()) {
        Some("classify") if args.len() == 2 => classify_cmd(&args[1]),
        Some("solve") if args.len() == 3 => solve_cmd(&args[1], &args[2], json),
        Some("batch") if args.len() >= 3 => batch_cmd(&args[1], &args[2..], json),
        Some("whatif") if args.len() == 4 => whatif_cmd(&args[1], &args[2], &args[3], json),
        Some("ijp") if (2..=4).contains(&args.len()) => {
            let joins = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let partitions = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10_000);
            ijp_cmd(&args[1], joins, partitions)
        }
        Some("catalogue") if args.len() == 1 => catalogue_cmd(),
        _ => usage(),
    }
}

fn parse_or_exit(text: &str) -> Result<Query, ExitCode> {
    match parse_query(text) {
        Ok(q) => Ok(q),
        Err(e) => {
            eprintln!("could not parse query: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn classify_cmd(text: &str) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let c = classify(&q);
    println!("query      : {q}");
    println!("complexity : {}", c.complexity);
    println!("normal form: {}", c.evidence.normalized);
    if let Some(t) = &c.evidence.triad {
        println!("triad      : atoms {:?}", t.atoms);
    }
    for note in &c.evidence.notes {
        println!("note       : {note}");
    }
    ExitCode::SUCCESS
}

/// One parsed constant of a database file: a numeric literal or a label to
/// be interned.
enum RawConstant {
    Number(u64),
    Label(String),
}

/// Splits one `Rel(c1,...,ck)` fact into its relation name and the raw
/// constant texts, validating the parenthesis shape and that the relation
/// exists in the query. Shared by the database loader and the what-if
/// script parser so the fact syntax cannot drift between the two; errors
/// carry no line number (callers prefix their own).
fn split_fact<'l>(q: &Query, line: &'l str) -> Result<(&'l str, Vec<&'l str>), String> {
    let open = line.find('(').ok_or("expected Rel(...)")?;
    let close = line
        .rfind(')')
        .filter(|&close| close > open)
        .ok_or("missing ')'")?;
    let rel = line[..open].trim();
    if q.schema().relation_id(rel).is_none() {
        return Err(format!("relation {rel} not in the query"));
    }
    Ok((
        rel,
        line[open + 1..close].split(',').map(str::trim).collect(),
    ))
}

/// Parses the textual database format: one `Rel(c1,...,ck)` fact per line.
///
/// Labels are interned through [`ConstPool`] and offset past the largest
/// numeric constant in `text`, so explicit numbers and interned labels can
/// never collide (the previous implementation started labels at a fixed
/// 1,000,000, which silently aliased files using constants ≥ 1,000,000).
fn parse_database(q: &Query, text: &str) -> Result<Database, String> {
    parse_database_with_labels(q, text).map(|(db, _)| db)
}

/// [`parse_database`] that also returns the label → constant resolution, so
/// follow-up inputs referencing the same labels (what-if scripts) resolve
/// identically to the loaded file.
fn parse_database_with_labels(
    q: &Query,
    text: &str,
) -> Result<(Database, HashMap<String, u64>), String> {
    let mut facts: Vec<(String, Vec<RawConstant>)> = Vec::new();
    let mut max_number = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (rel, raw_values) =
            split_fact(q, line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let values: Result<Vec<RawConstant>, String> = raw_values
            .iter()
            .map(|&v| {
                if let Ok(n) = v.parse::<u64>() {
                    max_number = max_number.max(n);
                    Ok(RawConstant::Number(n))
                } else if v.is_empty() {
                    Err(format!("line {}: empty constant", lineno + 1))
                } else {
                    Ok(RawConstant::Label(v.to_string()))
                }
            })
            .collect();
        facts.push((rel.to_string(), values?));
    }

    // Second pass: labels become `offset + pool index`, strictly above every
    // numeric constant seen in the file.
    let offset = max_number
        .checked_add(1)
        .ok_or_else(|| "constant u64::MAX leaves no room for labels".to_string())?;
    let mut pool = ConstPool::new();
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut db = Database::for_query(q);
    for (rel, values) in facts {
        let resolved: Result<Vec<u64>, String> = values
            .iter()
            .map(|value| match value {
                RawConstant::Number(n) => Ok(*n),
                RawConstant::Label(label) => {
                    let c = offset
                        .checked_add(pool.intern(label).value())
                        .ok_or_else(|| format!("too many labels to intern past {max_number}"))?;
                    labels.entry(label.clone()).or_insert(c);
                    Ok(c)
                }
            })
            .collect();
        db.insert_named(&rel, &resolved?);
    }
    Ok((db, labels))
}

/// Reads and parses a database file.
fn load_database(q: &Query, path: &str) -> Result<Database, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_database(q, &text)
}

fn render_contingency(db: &Database, gamma: &[TupleId]) -> Vec<String> {
    gamma
        .iter()
        .map(|&t| {
            let rel = db.schema().name(db.relation_of(t));
            let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
            format!("{rel}({})", vals.join(","))
        })
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one solve report as a JSON object (no trailing newline).
fn report_json(file: &str, db: &Database, report: &SolveReport) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"file\": \"{}\"", json_escape(file));
    let _ = write!(out, ", \"tuples\": {}", db.num_tuples());
    let _ = write!(out, ", \"witnesses\": {}", report.witnesses);
    match report.resilience {
        Resilience::Finite(k) => {
            let _ = write!(out, ", \"resilience\": {k}, \"unfalsifiable\": false");
        }
        Resilience::Unfalsifiable => {
            let _ = write!(out, ", \"resilience\": null, \"unfalsifiable\": true");
        }
    }
    let _ = write!(
        out,
        ", \"method\": \"{}\"",
        json_escape(&format!("{:?}", report.method))
    );
    if let Some(gamma) = &report.contingency {
        let rendered: Vec<String> = render_contingency(db, gamma)
            .into_iter()
            .map(|t| format!("\"{}\"", json_escape(&t)))
            .collect();
        let _ = write!(out, ", \"contingency\": [{}]", rendered.join(", "));
    } else {
        let _ = write!(out, ", \"contingency\": null");
    }
    out.push('}');
    out
}

fn print_report_text(db: &Database, report: &SolveReport) {
    println!("tuples       : {}", db.num_tuples());
    match report.resilience {
        Resilience::Finite(r) => println!("resilience   : {r}  (method {:?})", report.method),
        Resilience::Unfalsifiable => {
            println!("resilience   : unbounded (the query cannot be made false)")
        }
    }
    if let Some(gamma) = &report.contingency {
        println!("contingency  : {}", render_contingency(db, gamma).join(" "));
    }
}

fn solve_cmd(text: &str, path: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let db = match load_database(&q, path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = Engine::compile(&q);
    let report = match compiled.solve(&db.freeze(), &SolveOptions::new()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            report_json(path, &db, &report)
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        print_report_text(&db, &report);
    }
    ExitCode::SUCCESS
}

fn batch_cmd(text: &str, paths: &[String], json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    // Compile once; load and freeze every instance; solve the whole batch
    // through the shared plan.
    let compiled: CompiledQuery = Engine::compile(&q);
    let mut dbs = Vec::with_capacity(paths.len());
    for path in paths {
        match load_database(&q, path) {
            Ok(db) => dbs.push(db),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let frozen: Vec<_> = dbs.iter().map(|db| db.freeze()).collect();
    let reports = compiled.solve_batch(&frozen, &SolveOptions::new());

    let mut failed = false;
    if json {
        let mut rows = Vec::with_capacity(reports.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => rows.push(report_json(path, db, report)),
                Err(e) => {
                    rows.push(format!(
                        "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                        json_escape(path),
                        json_escape(&e.to_string())
                    ));
                    failed = true;
                }
            }
        }
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            rows.join(", ")
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!("instances    : {}", paths.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => {
                    let value = match report.resilience {
                        Resilience::Finite(r) => r.to_string(),
                        Resilience::Unfalsifiable => "unbounded".to_string(),
                    };
                    println!(
                        "{path:<30} tuples {:>5}  resilience {value:>9}  ({:?})",
                        db.num_tuples(),
                        report.method
                    );
                }
                Err(e) => {
                    println!("{path:<30} error: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One parsed what-if script step.
#[derive(Debug)]
enum WhatIfOp {
    Delete(String, Vec<u64>),
    Restore(String, Vec<u64>),
    Solve,
    Reset,
}

/// Parses a what-if script: one command per line, `#` comments, blank lines
/// ignored. Labels resolve through the same map as the database file.
fn parse_whatif_script(
    q: &Query,
    labels: &HashMap<String, u64>,
    text: &str,
) -> Result<Vec<WhatIfOp>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if line == "solve" {
            ops.push(WhatIfOp::Solve);
            continue;
        }
        if line == "reset" {
            ops.push(WhatIfOp::Reset);
            continue;
        }
        let (verb, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("line {lineno}: expected delete/restore/solve/reset"))?;
        let (rel, raw_values) =
            split_fact(q, rest.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let rel = rel.to_string();
        let values: Result<Vec<u64>, String> = raw_values
            .iter()
            .map(|&v| {
                if let Ok(n) = v.parse::<u64>() {
                    Ok(n)
                } else if let Some(&c) = labels.get(v) {
                    Ok(c)
                } else if v.is_empty() {
                    Err(format!("line {lineno}: empty constant"))
                } else {
                    Err(format!(
                        "line {lineno}: label {v} does not occur in the database file"
                    ))
                }
            })
            .collect();
        let values = values?;
        match verb {
            "delete" => ops.push(WhatIfOp::Delete(rel, values)),
            "restore" => ops.push(WhatIfOp::Restore(rel, values)),
            other => return Err(format!("line {lineno}: unknown command {other}")),
        }
    }
    Ok(ops)
}

/// Runs a parsed script against a session, rendering one output line (text)
/// or one JSON object per step.
fn run_whatif_ops(
    session: &mut SolveSession<'_>,
    db: &Database,
    ops: &[WhatIfOp],
    json: bool,
) -> Result<Vec<String>, String> {
    let opts = SolveOptions::new();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            WhatIfOp::Delete(rel, values) | WhatIfOp::Restore(rel, values) => {
                let is_delete = matches!(op, WhatIfOp::Delete(..));
                let verb = if is_delete { "delete" } else { "restore" };
                let rel_id = db.schema().relation_id(rel).expect("validated at parse");
                let t = db
                    .lookup(rel_id, values)
                    .ok_or_else(|| format!("{verb}: no such tuple {rel}{values:?}"))?;
                let changed = if is_delete {
                    session.delete(&[t])
                } else {
                    session.restore(&[t])
                };
                let rendered = render_contingency(db, &[t]).remove(0);
                if json {
                    out.push(format!(
                        "{{\"op\": \"{verb}\", \"tuple\": \"{}\", \"witnesses_changed\": {changed}, \
                         \"live_witnesses\": {}, \"deleted_count\": {}}}",
                        json_escape(&rendered),
                        session.live_witnesses(),
                        session.deleted_count(),
                    ));
                } else {
                    out.push(format!(
                        "{verb:<8} {rendered:<20} {changed} witnesses {} -> live {} (deleted tuples: {})",
                        if is_delete { "killed" } else { "revived" },
                        session.live_witnesses(),
                        session.deleted_count(),
                    ));
                }
            }
            WhatIfOp::Reset => {
                session.reset();
                if json {
                    out.push(format!(
                        "{{\"op\": \"reset\", \"live_witnesses\": {}}}",
                        session.live_witnesses()
                    ));
                } else {
                    out.push(format!(
                        "reset    all tuples restored, live witnesses {}",
                        session.live_witnesses()
                    ));
                }
            }
            WhatIfOp::Solve => {
                let report = session.solve(&opts).map_err(|e| format!("solve: {e}"))?;
                let stats = session.last_solve_stats();
                if json {
                    let mut obj = String::from("{\"op\": \"solve\"");
                    match report.resilience {
                        Resilience::Finite(k) => {
                            let _ = write!(obj, ", \"resilience\": {k}, \"unfalsifiable\": false");
                        }
                        Resilience::Unfalsifiable => {
                            let _ = write!(obj, ", \"resilience\": null, \"unfalsifiable\": true");
                        }
                    }
                    let _ = write!(
                        obj,
                        ", \"witnesses\": {}, \"method\": \"{}\"",
                        report.witnesses,
                        json_escape(&format!("{:?}", report.method))
                    );
                    // Per-step solver statistics: how much the warm-start
                    // machinery saved on this step.
                    let _ = write!(
                        obj,
                        ", \"solver\": {{\"warm_start_hit\": {}, \"incumbent_reused\": {}, \
                         \"short_circuit\": {}, \"replayed\": {}, \"nodes_explored\": {}}}",
                        stats.warm_start_hit,
                        stats.incumbent_reused,
                        stats.short_circuit,
                        stats.replayed,
                        stats.nodes_explored,
                    );
                    if let Some(gamma) = &report.contingency {
                        let rendered: Vec<String> = render_contingency(db, gamma)
                            .into_iter()
                            .map(|t| format!("\"{}\"", json_escape(&t)))
                            .collect();
                        let _ = write!(obj, ", \"contingency\": [{}]", rendered.join(", "));
                    } else {
                        let _ = write!(obj, ", \"contingency\": null");
                    }
                    obj.push('}');
                    out.push(obj);
                } else {
                    let value = match report.resilience {
                        Resilience::Finite(k) => k.to_string(),
                        Resilience::Unfalsifiable => "unbounded".to_string(),
                    };
                    let gamma = report
                        .contingency
                        .as_deref()
                        .map(|g| render_contingency(db, g).join(" "))
                        .unwrap_or_default();
                    let warm = if stats.replayed {
                        " [replayed]"
                    } else if stats.short_circuit {
                        " [warm: short-circuit]"
                    } else if stats.incumbent_reused {
                        " [warm: incumbent reused]"
                    } else if stats.warm_start_hit {
                        " [warm]"
                    } else {
                        ""
                    };
                    out.push(format!(
                        "solve    resilience {value:<9} witnesses {:<6} ({:?}){warm} {gamma}",
                        report.witnesses, report.method
                    ));
                }
            }
        }
    }
    Ok(out)
}

fn whatif_cmd(text: &str, db_path: &str, script_path: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let file_text = match fs::read_to_string(db_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {db_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (db, labels) = match parse_database_with_labels(&q, &file_text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let script_text = match fs::read_to_string(script_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {script_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ops = match parse_whatif_script(&q, &labels, &script_text) {
        Ok(ops) => ops,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let compiled = Engine::compile(&q);
    let frozen = db.freeze();
    // Large instances parallelize the one-time witness enumeration; the
    // per-step deletes/restores/solves are incremental either way.
    let threads = if db.num_tuples() >= 2048 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    let session_opts = SolveOptions::new().enumeration_threads(threads);
    let mut session = match compiled.session_opts(&frozen, &session_opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !json {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!("tuples       : {}", db.num_tuples());
        println!("witnesses    : {}", session.total_witnesses());
    }
    match run_whatif_ops(&mut session, &db, &ops, json) {
        Ok(lines) => {
            if json {
                println!(
                    "{{\"query\": \"{}\", \"complexity\": \"{}\", \"tuples\": {}, \
                     \"witnesses\": {}, \"events\": [{}]}}",
                    json_escape(&q.to_string()),
                    json_escape(&compiled.classification().complexity.to_string()),
                    db.num_tuples(),
                    session.total_witnesses(),
                    lines.join(", ")
                );
            } else {
                for line in lines {
                    println!("{line}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn ijp_cmd(text: &str, joins: usize, partitions: usize) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    println!("searching for an Independent Join Path for {q}");
    println!("(up to {joins} joins, {partitions} partitions per join count)");
    match ijp::search_ijp(&q, joins, partitions) {
        Some(found) => {
            println!(
                "found after {} partitions with {} joins; distinguished relation {} (resilience {})",
                found.partitions_tried,
                found.joins,
                found.certificate.relation,
                found.certificate.resilience
            );
            println!("database:\n{}", found.database);
            ExitCode::SUCCESS
        }
        None => {
            println!("no IJP found within the budget");
            ExitCode::FAILURE
        }
    }
}

fn catalogue_cmd() -> ExitCode {
    for nq in catalogue::all_named_queries() {
        let c = classify(&nq.query);
        println!(
            "{:<18} {:<12} {}",
            nq.name,
            format!("{:?}", nq.paper_class),
            c.complexity
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_do_not_collide_with_large_numeric_constants() {
        // Regression: the old loader started label interning at the fixed
        // constant 1,000,000, so the label "alpha" aliased an explicit
        // 1000001 in the same file and the two tuples below collapsed into
        // one, changing the resilience.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let text = "R(1000001, 7)\nR(alpha, 7)\nR(7, 9)\n";
        let db = parse_database(&q, text).unwrap();
        assert_eq!(db.num_tuples(), 3, "label collided with numeric constant");
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.tuples_of(r).len(), 3);
    }

    #[test]
    fn repeated_labels_intern_to_the_same_constant() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(alice, bob)\nR(alice, bob)\nR(bob, alice)\n").unwrap();
        // The duplicate fact deduplicates; alice/bob are stable across lines.
        assert_eq!(db.num_tuples(), 2);
    }

    #[test]
    fn labels_are_offset_past_the_file_maximum() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(42, alpha)\nR(7, beta)\n").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        // Numbers stay verbatim; alpha interns first => 43, beta => 44.
        assert!(db.contains(r, &[42u64, 43]));
        assert!(db.contains(r, &[7u64, 44]));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(parse_database(&q, "R(1, 2\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "# ok\nZ(1, 2)\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_database(&q, "R(1, )\n")
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "# header\n\nR(1, 2) # trailing\n").unwrap();
        assert_eq!(db.num_tuples(), 1);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn whatif_script_runs_delete_solve_restore() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        let script = "solve\ndelete R(3,3)\nsolve\nrestore R(3,3)\n# comment\nsolve\n";
        let ops = parse_whatif_script(&q, &labels, script).unwrap();
        assert_eq!(ops.len(), 5);
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        assert!(lines[0].contains("\"resilience\": 2"));
        assert!(lines[1].contains("\"op\": \"delete\""));
        assert!(lines[1].contains("\"witnesses_changed\": 2"));
        assert!(lines[2].contains("\"resilience\": 1"));
        assert!(lines[4].contains("\"resilience\": 2"));
    }

    #[test]
    fn whatif_json_reports_solver_stats() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        // solve twice (second is a replay), then delete + solve (the
        // restricted previous contingency short-circuits the exact search).
        let script = "solve\nsolve\ndelete R(3,3)\nsolve\n";
        let ops = parse_whatif_script(&q, &labels, script).unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        assert!(lines[0].contains("\"solver\": {\"warm_start_hit\": false"));
        assert!(lines[0].contains("\"replayed\": false"));
        assert!(lines[1].contains("\"replayed\": true"));
        // The singleton witness forces R(3,3) into the first contingency
        // set; after deleting it the restriction matches the fresh packing
        // lower bound, so the search is skipped entirely.
        assert!(lines[3].contains("\"short_circuit\": true"), "{}", lines[3]);
        assert!(lines[3].contains("\"nodes_explored\": 0"));
        // Text mode surfaces the warm markers too.
        let mut cold = compiled.session(&frozen).unwrap();
        let text = run_whatif_ops(&mut cold, &db, &ops, false).unwrap();
        assert!(text[1].contains("[replayed]"), "{}", text[1]);
        assert!(text[3].contains("[warm"), "{}", text[3]);
    }

    #[test]
    fn whatif_script_resolves_labels_like_the_loader() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(a,b)\nR(b,c)\nR(7,9)\n").unwrap();
        let ops = parse_whatif_script(&q, &labels, "delete R(a,b)\nsolve\n").unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, false).unwrap();
        assert_eq!(lines.len(), 2);
        // Unknown labels are parse errors, not silent fresh constants.
        assert!(parse_whatif_script(&q, &labels, "delete R(zz,b)\n")
            .unwrap_err()
            .contains("label zz"));
        // Unknown relations too.
        assert!(parse_whatif_script(&q, &labels, "delete Z(1,2)\n")
            .unwrap_err()
            .contains("relation Z"));
        // Malformed parenthesis order is a parse error, not a panic.
        assert!(parse_whatif_script(&q, &labels, "delete R)2(\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "R)2(\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn whatif_session_matches_batch_of_reduced_files() {
        // A delete script must answer exactly what `solve` answers on the
        // physically reduced file.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) =
            parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\nR(3,4)\nR(4,4)\n").unwrap();
        let (reduced_db, _) =
            parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,4)\nR(4,4)\n").unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let ops = parse_whatif_script(&q, &labels, "delete R(3,3)\nsolve\n").unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        let scratch = compiled
            .solve(&reduced_db.freeze(), &SolveOptions::new())
            .unwrap();
        let expected = match scratch.resilience {
            Resilience::Finite(k) => format!("\"resilience\": {k}"),
            Resilience::Unfalsifiable => "\"resilience\": null".to_string(),
        };
        assert!(lines[1].contains(&expected), "{} vs {expected}", lines[1]);
        assert!(lines[1].contains(&format!("\"witnesses\": {}", scratch.witnesses)));
    }

    #[test]
    fn report_json_is_well_formed_for_both_outcomes() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = parse_database(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        let compiled = Engine::compile(&q);
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        let json = report_json("test.db", &db, &report);
        assert!(json.contains("\"resilience\": 2"));
        assert!(json.contains("\"unfalsifiable\": false"));
        assert!(json.contains("\"contingency\": ["));

        let q2 = parse_query("R^x(x,y)").unwrap();
        let db2 = parse_database(&q2, "R(1,2)\n").unwrap();
        let compiled2 = Engine::compile(&q2);
        let report2 = compiled2
            .solve(&db2.freeze(), &SolveOptions::new())
            .unwrap();
        let json2 = report_json("test.db", &db2, &report2);
        assert!(json2.contains("\"resilience\": null"));
        assert!(json2.contains("\"unfalsifiable\": true"));
    }
}
