//! `rescli` — a small command-line front end for the resilience library.
//!
//! ```text
//! rescli classify "<query>"              classify a query (Theorem 37 + Secs. 5-8)
//! rescli solve    "<query>" <file>       compute resilience over a database file
//! rescli batch    "<query>" <file>...    compile once, solve every file in parallel
//! rescli whatif   "<query>" <file> <script>
//!                                         interactive what-if analysis: script
//!                                         delete/restore/solve steps against one
//!                                         loaded instance (deletion-aware session)
//! rescli serve    <addr> [--workers N] [--shutdown-file PATH]
//!                        [--plan-cache-capacity N]
//!                                         start resd, the resilience service
//!                                         daemon, on <addr>
//! rescli remote   <addr> solve|batch|whatif|stats|shutdown ...
//!                                         run a subcommand against a running
//!                                         daemon (same arguments and output as
//!                                         the local subcommand); `stats` prints
//!                                         the daemon's service counters
//! rescli ijp      "<query>" [joins] [partitions]
//!                                         search for an Independent Join Path
//! rescli catalogue                        print the named-query catalogue
//! ```
//!
//! `solve` and `batch` accept `--plan-cache`: compilation goes through a
//! process-local [`PlanCache`] (canonicalize, look up, compile on miss)
//! instead of calling the engine directly — results are identical by
//! construction, and scripts can diff the two paths.
//!
//! `solve`, `batch` and `whatif` accept `--json` for machine-readable
//! output — locally and through `remote`, whose output is byte-identical to
//! the local subcommand because both render through the shared
//! `server::jsonio` module (the daemon sends the very report/event objects
//! the local path prints, and the thin client re-emits them verbatim).
//!
//! A what-if script is one command per line (`#` comments allowed):
//! `delete Rel(c1,...)`, `restore Rel(c1,...)`, `solve`, `reset`. The
//! instance is loaded and its witnesses enumerated exactly once; every
//! `solve` answers the current deletion state through the engine's
//! [`SolveSession`] live counters instead of copying the database.
//!
//! The database file format is one tuple per line, `Rel(c1,c2,...)`, with
//! `#` comments; constants are non-negative integers or arbitrary labels.
//! Labels are interned through the shared [`database::ConstPool`] and then
//! offset past the largest numeric constant of the file, so a label can
//! never collide with an explicit numeric constant.

use resilience::core::engine::{
    CompiledQuery, Engine, Resilience, SessionSolveStats, SolveOptions, SolveReport, SolveSession,
};
use resilience::core::plancache::PlanCache;
use resilience::prelude::*;
use server::client::{Client, RetryPolicy};
use server::dbtext::{parse_database, parse_database_with_labels, resolve_fact};
use server::jsonio::{
    self, json_escape, render_contingency, report_json, solve_event_json, JsonValue,
};
use server::ServerConfig;
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rescli classify \"<query>\"\n  rescli solve [--json] [--plan-cache] [--snapshot] \"<query>\" <database-file|file.snap>\n  \
         rescli batch [--json] [--plan-cache] \"<query>\" <database-file>...\n  \
         rescli whatif [--json] \"<query>\" <database-file> <script-file>\n  \
         rescli snapshot write [--json] \"<query>\" <database-file> <out.snap>\n  \
         rescli snapshot info [--json] <file.snap>\n  \
         rescli shard [--json] [--shards K] [--threads N] \"<query>\" <database-file>\n  \
         rescli scatter [--json] --endpoints <addr,addr,...> \"<query>\" <shard.snap>...\n  \
         rescli serve <addr> [--workers N] [--shutdown-file PATH] [--plan-cache-capacity N]\n  \
         rescli remote [--json] <addr> solve|batch|whatif|stats|shutdown ...\n  \
         rescli ijp \"<query>\" [max-joins] [max-partitions]\n  rescli catalogue"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let plan_cache = args.iter().any(|a| a == "--plan-cache");
    args.retain(|a| a != "--plan-cache");
    let snapshot = args.iter().any(|a| a == "--snapshot");
    args.retain(|a| a != "--snapshot");
    match args.first().map(|s| s.as_str()) {
        Some("classify") if args.len() == 2 => classify_cmd(&args[1]),
        Some("solve") if args.len() == 3 && snapshot => {
            snapshot_solve_cmd(&args[1], &args[2], json)
        }
        Some("solve") if args.len() == 3 => solve_cmd(&args[1], &args[2], json, plan_cache),
        Some("batch") if args.len() >= 3 => batch_cmd(&args[1], &args[2..], json, plan_cache),
        Some("whatif") if args.len() == 4 => whatif_cmd(&args[1], &args[2], &args[3], json),
        Some("snapshot") if args.len() >= 2 => snapshot_cmd(&args[1..], json),
        Some("shard") if args.len() >= 3 => shard_cmd(&args[1..], json),
        Some("scatter") if args.len() >= 3 => scatter_cmd(&args[1..], json),
        Some("serve") if args.len() >= 2 => serve_cmd(&args[1..]),
        Some("remote") if args.len() >= 3 => remote_cmd(&args[1], &args[2..], json),
        Some("ijp") if (2..=4).contains(&args.len()) => {
            let joins = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let partitions = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10_000);
            ijp_cmd(&args[1], joins, partitions)
        }
        Some("catalogue") if args.len() == 1 => catalogue_cmd(),
        _ => usage(),
    }
}

/// Compiles a query directly, or — under `--plan-cache` — through a
/// process-local [`PlanCache`]. A fresh cache's first compile *is* the
/// direct compile of the submitted query (same plan, same query object), so
/// the two paths print identical output; the cached path additionally
/// exercises canonicalization and lookup.
fn compile_query(q: &Query, plan_cache: bool) -> Arc<CompiledQuery> {
    if plan_cache {
        PlanCache::new(resilience::core::plancache::DEFAULT_CAPACITY)
            .compile(q)
            .compiled
    } else {
        Arc::new(Engine::compile(q))
    }
}

fn parse_or_exit(text: &str) -> Result<Query, ExitCode> {
    match parse_query(text) {
        Ok(q) => Ok(q),
        Err(e) => {
            eprintln!("could not parse query: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn classify_cmd(text: &str) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let c = classify(&q);
    println!("query      : {q}");
    println!("complexity : {}", c.complexity);
    println!("normal form: {}", c.evidence.normalized);
    if let Some(t) = &c.evidence.triad {
        println!("triad      : atoms {:?}", t.atoms);
    }
    for note in &c.evidence.notes {
        println!("note       : {note}");
    }
    ExitCode::SUCCESS
}

/// Reads and parses a database file. (Parsing itself — fact syntax, label
/// interning — lives in the shared [`server::dbtext`] module, so `rescli`
/// and the `resd` daemon load instances identically.)
fn load_database(q: &Query, path: &str) -> Result<Database, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_database(q, &text)
}

fn print_report_text<S: TupleStore + ?Sized>(db: &S, report: &SolveReport) {
    println!("tuples       : {}", db.num_tuples());
    match report.resilience {
        Resilience::Finite(r) => println!("resilience   : {r}  (method {:?})", report.method),
        Resilience::Unfalsifiable => {
            println!("resilience   : unbounded (the query cannot be made false)")
        }
    }
    if let Some(gamma) = &report.contingency {
        println!("contingency  : {}", render_contingency(db, gamma).join(" "));
    }
}

fn solve_cmd(text: &str, path: &str, json: bool, plan_cache: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let db = match load_database(&q, path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = compile_query(&q, plan_cache);
    let report = match compiled.solve(&db.freeze(), &SolveOptions::new()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            report_json(path, &db, &report)
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        print_report_text(&db, &report);
    }
    ExitCode::SUCCESS
}

fn batch_cmd(text: &str, paths: &[String], json: bool, plan_cache: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    // Compile once; load and freeze every instance; solve the whole batch
    // through the shared plan.
    let compiled: Arc<CompiledQuery> = compile_query(&q, plan_cache);
    let mut dbs = Vec::with_capacity(paths.len());
    for path in paths {
        match load_database(&q, path) {
            Ok(db) => dbs.push(db),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let frozen: Vec<_> = dbs.iter().map(|db| db.freeze()).collect();
    let reports = compiled.solve_batch(&frozen, &SolveOptions::new());

    let mut failed = false;
    if json {
        let mut rows = Vec::with_capacity(reports.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => rows.push(report_json(path, db, report)),
                Err(e) => {
                    rows.push(format!(
                        "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                        json_escape(path),
                        json_escape(&e.to_string())
                    ));
                    failed = true;
                }
            }
        }
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            rows.join(", ")
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!("instances    : {}", paths.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => {
                    let value = match report.resilience {
                        Resilience::Finite(r) => r.to_string(),
                        Resilience::Unfalsifiable => "unbounded".to_string(),
                    };
                    println!(
                        "{path:<30} tuples {:>5}  resilience {value:>9}  ({:?})",
                        db.num_tuples(),
                        report.method
                    );
                }
                Err(e) => {
                    println!("{path:<30} error: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `rescli solve --snapshot "<query>" <file.snap>`: load a columnar
/// snapshot (mmap where available, buffered otherwise) and solve it without
/// re-freezing. Output matches `rescli solve` on the originating text file
/// byte-for-byte.
fn snapshot_solve_cmd(text: &str, path: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let snap = match database::snapshot::load(std::path::Path::new(path), &Default::default()) {
        Ok(snap) => snap,
        Err(e) => {
            eprintln!("cannot load snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if snap.db.schema() != q.schema() {
        eprintln!("snapshot {path} was written for a different schema");
        return ExitCode::FAILURE;
    }
    let compiled = Engine::compile(&q);
    let report = match compiled.solve(&snap.db, &SolveOptions::new()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            report_json(path, &snap.db, &report)
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!(
            "snapshot     : {} bytes, {}",
            snap.file_len,
            if snap.mapped { "mmap" } else { "buffered" }
        );
        print_report_text(&snap.db, &report);
    }
    ExitCode::SUCCESS
}

/// `rescli snapshot write|info`.
fn snapshot_cmd(args: &[String], json: bool) -> ExitCode {
    match args.first().map(|s| s.as_str()) {
        Some("write") if args.len() == 4 => snapshot_write_cmd(&args[1], &args[2], &args[3], json),
        Some("info") if args.len() == 2 => snapshot_info_cmd(&args[1], json),
        _ => usage(),
    }
}

fn snapshot_write_cmd(text: &str, db_path: &str, out: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let file_text = match fs::read_to_string(db_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {db_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (db, labels) = match parse_database_with_labels(&q, &file_text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let frozen = db.freeze();
    let opts = database::snapshot::WriteOptions {
        labels: Some(&labels),
        source_ids: None,
    };
    match database::snapshot::write(std::path::Path::new(out), &frozen, &opts) {
        Ok(stats) => {
            if json {
                println!(
                    "{{\"snapshot\": \"{}\", \"bytes\": {}, \"sections\": {}, \"tuples\": {}}}",
                    json_escape(out),
                    stats.file_len,
                    stats.sections,
                    stats.tuples,
                );
            } else {
                println!("snapshot     : {out}");
                println!("bytes        : {}", stats.file_len);
                println!("sections     : {}", stats.sections);
                println!("tuples       : {}", stats.tuples);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write snapshot {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn snapshot_info_cmd(path: &str, json: bool) -> ExitCode {
    let info = match database::snapshot::info(std::path::Path::new(path)) {
        Ok(info) => info,
        Err(e) => {
            eprintln!("cannot read snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        let sections: Vec<String> = info
            .sections
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"kind\": {}, \"offset\": {}, \"count\": {}, \"elem_size\": {}}}",
                    json_escape(s.name),
                    s.kind,
                    s.offset,
                    s.count,
                    s.elem_size,
                )
            })
            .collect();
        println!(
            "{{\"snapshot\": \"{}\", \"version\": {}, \"bytes\": {}, \"tuples\": {}, \
             \"relations\": {}, \"labels\": {}, \"source_ids\": {}, \"sections\": [{}]}}",
            json_escape(path),
            info.version,
            info.file_len,
            info.tuples,
            info.relations,
            info.has_labels,
            info.has_source_ids,
            sections.join(", ")
        );
    } else {
        println!("snapshot     : {path}");
        println!("version      : {}", info.version);
        println!("bytes        : {}", info.file_len);
        println!("tuples       : {}", info.tuples);
        println!("relations    : {}", info.relations);
        println!("labels       : {}", info.has_labels);
        println!("source ids   : {}", info.has_source_ids);
        for s in &info.sections {
            println!(
                "  section {:<14} offset {:>10}  count {:>10}  elem {:>2} B",
                s.name, s.offset, s.count, s.elem_size
            );
        }
    }
    ExitCode::SUCCESS
}

/// `rescli shard [--shards K] [--threads N] "<query>" <database-file>`:
/// partition the instance by join-connected component, solve the shards in
/// parallel in-process, and print the merged report (identical to the
/// whole-instance solve by the gather laws in `resilience::core::shard`).
fn shard_cmd(args: &[String], json: bool) -> ExitCode {
    let mut shards_k: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => shards_k = Some(n),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => threads = Some(n),
                None => return usage(),
            },
            _ => positional.push(arg),
        }
    }
    let [text, path] = positional.as_slice() else {
        return usage();
    };
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let db = match load_database(&q, path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let k = shards_k.unwrap_or(hw.max(2));
    let threads = threads.unwrap_or(hw);
    let frozen = db.freeze();
    let compiled = Engine::compile(&q);
    let shards: Vec<resilience::core::shard::ShardInstance> =
        database::shard::partition_shards(&frozen, k)
            .into_iter()
            .map(Into::into)
            .collect();
    let outcome = match resilience::core::shard::solve_sharded(
        &compiled,
        &shards,
        &SolveOptions::new(),
        threads,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sharded solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"shards\": {}, \
             \"query_components\": {}, \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            outcome.shards,
            outcome.query_components,
            report_json(path, &frozen, &outcome.report)
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!(
            "shards       : {} ({} query components)",
            outcome.shards, outcome.query_components
        );
        print_report_text(&frozen, &outcome.report);
    }
    ExitCode::SUCCESS
}

/// `rescli scatter --endpoints <a,b> "<query>" <shard.snap>...`: scatter the
/// shard snapshots across running `resd` daemons and gather the merged
/// report (see `server::scatter`).
fn scatter_cmd(args: &[String], json: bool) -> ExitCode {
    let mut endpoints: Vec<String> = Vec::new();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--endpoints" => match it.next() {
                Some(list) => {
                    endpoints = list.split(',').map(|s| s.trim().to_string()).collect();
                }
                None => return usage(),
            },
            _ => positional.push(arg),
        }
    }
    if endpoints.is_empty() || positional.len() < 2 {
        return usage();
    }
    let q = match parse_or_exit(positional[0]) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let paths: Vec<&std::path::Path> = positional[1..]
        .iter()
        .map(|p| std::path::Path::new(p.as_str()))
        .collect();
    match server::scatter::scatter_solve(&q, &endpoints, &paths, None) {
        Ok(merged) => {
            if json {
                println!(
                    "{{\"query\": \"{}\", \"results\": [{}]}}",
                    json_escape(&q.to_string()),
                    merged.to_json()
                );
            } else {
                println!("query        : {q}");
                println!(
                    "shards       : {} across {} endpoints ({} query components)",
                    merged.shards,
                    endpoints.len(),
                    merged.components
                );
                match merged.resilience {
                    Some(r) => println!("resilience   : {r}  (method {})", merged.method),
                    None => {
                        println!("resilience   : unbounded (the query cannot be made false)")
                    }
                }
                if let Some(gamma) = &merged.contingency {
                    println!("contingency  : {}", gamma.join(" "));
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scatter failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One parsed what-if script step.
#[derive(Debug)]
enum WhatIfOp {
    Delete(String, Vec<u64>),
    Restore(String, Vec<u64>),
    Solve,
    Reset,
}

/// Parses a what-if script: one command per line, `#` comments, blank lines
/// ignored. Labels resolve through the same map as the database file.
fn parse_whatif_script(
    q: &Query,
    labels: &HashMap<String, u64>,
    text: &str,
) -> Result<Vec<WhatIfOp>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if line == "solve" {
            ops.push(WhatIfOp::Solve);
            continue;
        }
        if line == "reset" {
            ops.push(WhatIfOp::Reset);
            continue;
        }
        let (verb, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("line {lineno}: expected delete/restore/solve/reset"))?;
        let (rel, values) =
            resolve_fact(q, labels, rest).map_err(|e| format!("line {lineno}: {e}"))?;
        match verb {
            "delete" => ops.push(WhatIfOp::Delete(rel, values)),
            "restore" => ops.push(WhatIfOp::Restore(rel, values)),
            other => return Err(format!("line {lineno}: unknown command {other}")),
        }
    }
    Ok(ops)
}

/// Text line of a `delete`/`restore` step (shared by the local session
/// runner and the remote client, which rebuilds it from the daemon's event).
fn whatif_mutation_line(
    is_delete: bool,
    rendered: &str,
    changed: usize,
    live: usize,
    deleted_count: usize,
) -> String {
    let verb = if is_delete { "delete" } else { "restore" };
    format!(
        "{verb:<8} {rendered:<20} {changed} witnesses {} -> live {live} (deleted tuples: {deleted_count})",
        if is_delete { "killed" } else { "revived" },
    )
}

/// Text line of a `reset` step.
fn whatif_reset_line(live: usize) -> String {
    format!("reset    all tuples restored, live witnesses {live}")
}

/// The warm-start marker of a solve step's text line.
fn warm_marker(stats: &SessionSolveStats) -> &'static str {
    if stats.replayed {
        " [replayed]"
    } else if stats.short_circuit {
        " [warm: short-circuit]"
    } else if stats.incumbent_reused {
        " [warm: incumbent reused]"
    } else if stats.warm_start_hit {
        " [warm]"
    } else {
        ""
    }
}

/// Text line of a `solve` step from its plain fields.
fn whatif_solve_line(
    value: &str,
    witnesses: usize,
    method: &str,
    warm: &str,
    gamma: &str,
) -> String {
    format!("solve    resilience {value:<9} witnesses {witnesses:<6} ({method}){warm} {gamma}")
}

/// Runs a parsed script against a session, rendering one output line (text)
/// or one JSON object per step. JSON events come from the shared
/// [`server::jsonio`] renderers — the very same functions the daemon uses,
/// so local and remote `--json` output cannot drift.
fn run_whatif_ops(
    session: &mut SolveSession<'_>,
    db: &Database,
    ops: &[WhatIfOp],
    json: bool,
) -> Result<Vec<String>, String> {
    let opts = SolveOptions::new();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            WhatIfOp::Delete(rel, values) | WhatIfOp::Restore(rel, values) => {
                let is_delete = matches!(op, WhatIfOp::Delete(..));
                let verb = if is_delete { "delete" } else { "restore" };
                let rel_id = db.schema().relation_id(rel).expect("validated at parse");
                let t = db
                    .lookup(rel_id, values)
                    .ok_or_else(|| format!("{verb}: no such tuple {rel}{values:?}"))?;
                let changed = if is_delete {
                    session.delete(&[t])
                } else {
                    session.restore(&[t])
                };
                let rendered = jsonio::render_tuple(db, t);
                if json {
                    out.push(jsonio::mutation_event_json(
                        verb,
                        &rendered,
                        changed,
                        session.live_witnesses(),
                        session.deleted_count(),
                    ));
                } else {
                    out.push(whatif_mutation_line(
                        is_delete,
                        &rendered,
                        changed,
                        session.live_witnesses(),
                        session.deleted_count(),
                    ));
                }
            }
            WhatIfOp::Reset => {
                session.reset();
                if json {
                    out.push(jsonio::reset_event_json(session.live_witnesses()));
                } else {
                    out.push(whatif_reset_line(session.live_witnesses()));
                }
            }
            WhatIfOp::Solve => {
                let report = session.solve(&opts).map_err(|e| format!("solve: {e}"))?;
                let stats = session.last_solve_stats();
                if json {
                    out.push(solve_event_json(db, &report, &stats));
                } else {
                    let value = match report.resilience {
                        Resilience::Finite(k) => k.to_string(),
                        Resilience::Unfalsifiable => "unbounded".to_string(),
                    };
                    let gamma = report
                        .contingency
                        .as_deref()
                        .map(|g| render_contingency(db, g).join(" "))
                        .unwrap_or_default();
                    out.push(whatif_solve_line(
                        &value,
                        report.witnesses,
                        &format!("{:?}", report.method),
                        warm_marker(&stats),
                        &gamma,
                    ));
                }
            }
        }
    }
    Ok(out)
}

fn whatif_cmd(text: &str, db_path: &str, script_path: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let file_text = match fs::read_to_string(db_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {db_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (db, labels) = match parse_database_with_labels(&q, &file_text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let script_text = match fs::read_to_string(script_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {script_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ops = match parse_whatif_script(&q, &labels, &script_text) {
        Ok(ops) => ops,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let compiled = Engine::compile(&q);
    let frozen = db.freeze();
    // Large instances parallelize the one-time witness enumeration; the
    // per-step deletes/restores/solves are incremental either way.
    let threads = if db.num_tuples() >= 2048 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    };
    let session_opts = SolveOptions::new().enumeration_threads(threads);
    let mut session = match compiled.session_opts(&frozen, &session_opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !json {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!("tuples       : {}", db.num_tuples());
        println!("witnesses    : {}", session.total_witnesses());
    }
    match run_whatif_ops(&mut session, &db, &ops, json) {
        Ok(lines) => {
            if json {
                println!(
                    "{{\"query\": \"{}\", \"complexity\": \"{}\", \"tuples\": {}, \
                     \"witnesses\": {}, \"events\": [{}]}}",
                    json_escape(&q.to_string()),
                    json_escape(&compiled.classification().complexity.to_string()),
                    db.num_tuples(),
                    session.total_witnesses(),
                    lines.join(", ")
                );
            } else {
                for line in lines {
                    println!("{line}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `rescli serve <addr> [--workers N] [--shutdown-file PATH]
/// [--plan-cache-capacity N]`: start resd, the resilience service daemon,
/// in the foreground.
fn serve_cmd(args: &[String]) -> ExitCode {
    let addr = &args[0];
    if addr.starts_with("--") {
        return usage();
    }
    let mut config = ServerConfig::new(addr.clone());
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config = config.workers(n),
                None => return usage(),
            },
            "--shutdown-file" => match it.next() {
                Some(path) => config = config.shutdown_file(path),
                None => return usage(),
            },
            "--plan-cache-capacity" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config = config.plan_cache_capacity(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match server::serve(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `rescli remote <addr> <subcommand> ...`: run a subcommand against a
/// running daemon, with the same arguments and (byte-identical) output as
/// the local subcommand.
fn remote_cmd(addr: &str, rest: &[String], json: bool) -> ExitCode {
    match rest.first().map(|s| s.as_str()) {
        Some("solve") if rest.len() == 3 => remote_solve(addr, &rest[1], &rest[2], json),
        Some("batch") if rest.len() >= 3 => remote_batch(addr, &rest[1], &rest[2..], json),
        Some("whatif") if rest.len() == 4 => {
            remote_whatif(addr, &rest[1], &rest[2], &rest[3], json)
        }
        Some("stats") if rest.len() == 1 => remote_stats(addr, json),
        Some("shutdown") if rest.len() == 1 => match connect(addr) {
            Ok(mut client) => match client.shutdown() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("shutdown: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(code) => code,
        },
        _ => usage(),
    }
}

/// Connects with the standard retry policy: transient connect failures,
/// `overloaded` refusals and dropped connections are retried with
/// exponential backoff (honouring the server's `retry_after_ms` hint)
/// before an error is reported. Session state does not survive a
/// reconnect, but `remote whatif` only mutates a session after its
/// stateless preamble, and a mid-session failure aborts the run anyway.
fn connect(addr: &str) -> Result<Client, ExitCode> {
    Client::connect_retrying(addr, RetryPolicy::standard()).map_err(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        ExitCode::FAILURE
    })
}

/// Compile the query and upload one database (already-read text); the
/// shared preamble of every remote subcommand. Callers read the file once —
/// `remote whatif` also validates the same text locally, and reading twice
/// could race a concurrent file change and desynchronize the label maps.
/// Returns `(client, query_id, query_display, complexity, db_id, tuples)`.
#[allow(clippy::type_complexity)]
fn remote_preamble(
    addr: &str,
    text: &str,
    db_text: &str,
) -> Result<(Client, String, String, String, String, usize), ExitCode> {
    let mut client = connect(addr)?;
    let (qid, qdisp, complexity) = client.compile(text).map_err(|e| {
        eprintln!("could not parse query: {e}");
        ExitCode::FAILURE
    })?;
    let (db_id, tuples) = client.load_text(&qid, db_text).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    Ok((client, qid, qdisp, complexity, db_id, tuples))
}

/// Reads one database file for a remote subcommand, reporting errors the
/// way the local subcommands do.
fn read_db_file(path: &str) -> Result<String, ExitCode> {
    fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Prints one parsed report object in the local `solve` text layout.
fn print_remote_report_text(result: &JsonValue) {
    if let Some(tuples) = result.get("tuples").and_then(JsonValue::as_usize) {
        println!("tuples       : {tuples}");
    }
    let method = result
        .get("method")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    if result.get("unfalsifiable").and_then(JsonValue::as_bool) == Some(true) {
        println!("resilience   : unbounded (the query cannot be made false)");
    } else if let Some(r) = result.get("resilience").and_then(JsonValue::as_usize) {
        println!("resilience   : {r}  (method {method})");
    }
    if let Some(gamma) = result.get("contingency").and_then(JsonValue::as_array) {
        let facts: Vec<&str> = gamma.iter().filter_map(JsonValue::as_str).collect();
        println!("contingency  : {}", facts.join(" "));
    }
}

fn remote_solve(addr: &str, text: &str, path: &str, json: bool) -> ExitCode {
    let db_text = match read_db_file(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (mut client, qid, qdisp, complexity, db_id, _tuples) =
        match remote_preamble(addr, text, &db_text) {
            Ok(parts) => parts,
            Err(code) => return code,
        };
    let request = format!(
        "{{\"op\": \"solve\", \"query_id\": \"{}\", \"db_id\": \"{}\", \"tag\": \"{}\"}}",
        json_escape(&qid),
        json_escape(&db_id),
        json_escape(path),
    );
    let (resp, raw) = match client.request(&request) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // The daemon rendered the report with the same shared renderer the
        // local path uses; re-emit its raw text verbatim.
        let row = jsonio::extract_raw(&raw, "result").unwrap_or("null");
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{row}]}}",
            json_escape(&qdisp),
            json_escape(&complexity),
        );
    } else {
        println!("query        : {qdisp}");
        println!("complexity   : {complexity}");
        if let Some(result) = resp.get("result") {
            print_remote_report_text(result);
        }
    }
    ExitCode::SUCCESS
}

/// One text line of counters from a parsed `{"verb": n, ...}` object.
fn counters_line(v: Option<&JsonValue>) -> String {
    match v {
        Some(JsonValue::Obj(fields)) if !fields.is_empty() => fields
            .iter()
            .map(|(k, v)| format!("{k} {}", v.as_usize().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join(", "),
        _ => "(none)".to_string(),
    }
}

/// `rescli remote <addr> stats`: print the daemon's service counters.
/// `--json` re-emits the server-rendered `stats` object verbatim —
/// byte-identical to the daemon's in-process rendering, since both are the
/// shared [`jsonio::stats_json`].
fn remote_stats(addr: &str, json: bool) -> ExitCode {
    let mut client = match connect(addr) {
        Ok(client) => client,
        Err(code) => return code,
    };
    let (resp, raw) = match client.request("{\"op\": \"stats\"}") {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("stats failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", jsonio::extract_raw(&raw, "stats").unwrap_or("{}"));
        return ExitCode::SUCCESS;
    }
    let stats = resp.get("stats").cloned().unwrap_or(JsonValue::Null);
    let uptime = stats
        .get("uptime_ms")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0);
    println!("uptime       : {uptime} ms");
    println!("requests     : {}", counters_line(stats.get("requests")));
    println!("errors       : {}", counters_line(stats.get("errors")));
    if let Some(cache) = stats.get("plan_cache") {
        let field = |key: &str| cache.get(key).and_then(JsonValue::as_usize).unwrap_or(0);
        println!(
            "plan cache   : entries {}/{}, hits {}, misses {}, collisions {}, evictions {}, bypasses {}",
            field("entries"),
            field("capacity"),
            field("hits"),
            field("misses"),
            field("collisions"),
            field("evictions"),
            field("bypasses"),
        );
    }
    ExitCode::SUCCESS
}

fn remote_batch(addr: &str, text: &str, paths: &[String], json: bool) -> ExitCode {
    let first_text = match read_db_file(&paths[0]) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let (mut client, qid, qdisp, complexity, first_db, _tuples) =
        match remote_preamble(addr, text, &first_text) {
            Ok(parts) => parts,
            Err(code) => return code,
        };
    let mut db_ids = vec![first_db];
    for path in &paths[1..] {
        let file_text = match read_db_file(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        match client.load_text(&qid, &file_text) {
            Ok((id, _)) => db_ids.push(id),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ids: Vec<String> = db_ids
        .iter()
        .map(|id| format!("\"{}\"", json_escape(id)))
        .collect();
    let tags: Vec<String> = paths
        .iter()
        .map(|p| format!("\"{}\"", json_escape(p)))
        .collect();
    let request = format!(
        "{{\"op\": \"batch\", \"query_id\": \"{}\", \"db_ids\": [{}], \"tags\": [{}]}}",
        json_escape(&qid),
        ids.join(", "),
        tags.join(", "),
    );
    let (resp, raw) = match client.request(&request) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("batch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = resp.get("results").and_then(JsonValue::as_array);
    let failed = rows.is_some_and(|rows| rows.iter().any(|r| r.get("error").is_some()));
    if json {
        let results = jsonio::extract_raw(&raw, "results").unwrap_or("[]");
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": {results}}}",
            json_escape(&qdisp),
            json_escape(&complexity),
        );
    } else {
        println!("query        : {qdisp}");
        println!("complexity   : {complexity}");
        println!("instances    : {}", paths.len());
        for (path, row) in paths.iter().zip(rows.into_iter().flatten()) {
            if let Some(e) = row.get("error").and_then(JsonValue::as_str) {
                println!("{path:<30} error: {e}");
                continue;
            }
            let tuples = row.get("tuples").and_then(JsonValue::as_usize).unwrap_or(0);
            let method = row.get("method").and_then(JsonValue::as_str).unwrap_or("?");
            let value = match row.get("resilience").and_then(JsonValue::as_usize) {
                Some(r) => r.to_string(),
                None => "unbounded".to_string(),
            };
            println!("{path:<30} tuples {tuples:>5}  resilience {value:>9}  ({method})");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn remote_whatif(addr: &str, text: &str, db_path: &str, script_path: &str, json: bool) -> ExitCode {
    // Parse query, database and script locally first: full validation with
    // the same error messages as the local subcommand, and the local label
    // resolution (identical to the daemon's, both run the shared
    // `dbtext` parser over the same text) turns script facts into the
    // numeric form sent over the wire.
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let file_text = match fs::read_to_string(db_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {db_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let labels = match parse_database_with_labels(&q, &file_text) {
        Ok((_, labels)) => labels,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let script_text = match fs::read_to_string(script_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {script_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ops = match parse_whatif_script(&q, &labels, &script_text) {
        Ok(ops) => ops,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Upload the very text that was validated above — one read, one parse
    // on each side, so the label maps cannot diverge.
    let (mut client, qid, qdisp, complexity, db_id, tuples) =
        match remote_preamble(addr, text, &file_text) {
            Ok(parts) => parts,
            Err(code) => return code,
        };
    let (session_resp, _) = match client.request(&format!(
        "{{\"op\": \"session\", \"query_id\": \"{}\", \"db_id\": \"{}\"}}",
        json_escape(&qid),
        json_escape(&db_id),
    )) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("cannot open session: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sid = session_resp
        .get("session_id")
        .and_then(JsonValue::as_str)
        .unwrap_or("s0")
        .to_string();
    let witnesses = session_resp
        .get("witnesses")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0);

    if !json {
        println!("query        : {qdisp}");
        println!("complexity   : {complexity}");
        println!("tuples       : {tuples}");
        println!("witnesses    : {witnesses}");
    }
    let mut events: Vec<String> = Vec::with_capacity(ops.len());
    for op in &ops {
        let request = match op {
            WhatIfOp::Delete(rel, values) | WhatIfOp::Restore(rel, values) => {
                let verb = if matches!(op, WhatIfOp::Delete(..)) {
                    "delete"
                } else {
                    "restore"
                };
                let fact = format!(
                    "{rel}({})",
                    values
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                );
                format!(
                    "{{\"op\": \"{verb}\", \"session_id\": \"{}\", \"tuple\": \"{}\"}}",
                    json_escape(&sid),
                    json_escape(&fact),
                )
            }
            WhatIfOp::Reset => format!(
                "{{\"op\": \"reset\", \"session_id\": \"{}\"}}",
                json_escape(&sid)
            ),
            WhatIfOp::Solve => format!(
                "{{\"op\": \"resolve\", \"session_id\": \"{}\"}}",
                json_escape(&sid)
            ),
        };
        let (resp, raw) = match client.request(&request) {
            Ok(ok) => ok,
            Err(e) => {
                let prefix = if matches!(op, WhatIfOp::Solve) {
                    "solve: "
                } else {
                    ""
                };
                eprintln!("{prefix}{e}");
                return ExitCode::FAILURE;
            }
        };
        if json {
            events.push(
                jsonio::extract_raw(&raw, "event")
                    .unwrap_or("{}")
                    .to_string(),
            );
        } else {
            let event = resp.get("event").cloned().unwrap_or(JsonValue::Null);
            println!("{}", remote_event_text_line(&event));
        }
    }
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"tuples\": {tuples}, \
             \"witnesses\": {witnesses}, \"events\": [{}]}}",
            json_escape(&qdisp),
            json_escape(&complexity),
            events.join(", ")
        );
    }
    ExitCode::SUCCESS
}

/// Rebuilds the local what-if text line from one parsed daemon event.
fn remote_event_text_line(event: &JsonValue) -> String {
    let live = event
        .get("live_witnesses")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0);
    match event.get("op").and_then(JsonValue::as_str) {
        Some("delete") | Some("restore") => {
            let is_delete = event.get("op").and_then(JsonValue::as_str) == Some("delete");
            whatif_mutation_line(
                is_delete,
                event
                    .get("tuple")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?"),
                event
                    .get("witnesses_changed")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or(0),
                live,
                event
                    .get("deleted_count")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or(0),
            )
        }
        Some("reset") => whatif_reset_line(live),
        _ => {
            let value = match event.get("resilience").and_then(JsonValue::as_usize) {
                Some(k) => k.to_string(),
                None => "unbounded".to_string(),
            };
            let witnesses = event
                .get("witnesses")
                .and_then(JsonValue::as_usize)
                .unwrap_or(0);
            let method = event
                .get("method")
                .and_then(JsonValue::as_str)
                .unwrap_or("?");
            let solver = event.get("solver");
            let flag = |key: &str| -> bool {
                solver
                    .and_then(|s| s.get(key))
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false)
            };
            let count = |key: &str| -> u64 {
                solver
                    .and_then(|s| s.get(key))
                    .and_then(JsonValue::as_usize)
                    .unwrap_or(0) as u64
            };
            let stats = SessionSolveStats {
                replayed: flag("replayed"),
                warm_start_hit: flag("warm_start_hit"),
                incumbent_reused: flag("incumbent_reused"),
                short_circuit: flag("short_circuit"),
                nodes_explored: solver
                    .and_then(|s| s.get("nodes_explored"))
                    .and_then(JsonValue::as_usize)
                    .unwrap_or(0),
                flow_warm_reused: flag("flow_warm_reused"),
                flow_paths_repaired: count("flow_paths_repaired"),
                flow_paths_reaugmented: count("flow_paths_reaugmented"),
                flow_cold_rebuild: flag("flow_cold_rebuild"),
                reduced_compactions: count("reduced_compactions"),
            };
            let gamma = event
                .get("contingency")
                .and_then(JsonValue::as_array)
                .map(|facts| {
                    facts
                        .iter()
                        .filter_map(JsonValue::as_str)
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            whatif_solve_line(&value, witnesses, method, warm_marker(&stats), &gamma)
        }
    }
}

fn ijp_cmd(text: &str, joins: usize, partitions: usize) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    println!("searching for an Independent Join Path for {q}");
    println!("(up to {joins} joins, {partitions} partitions per join count)");
    match ijp::search_ijp(&q, joins, partitions) {
        Some(found) => {
            println!(
                "found after {} partitions with {} joins; distinguished relation {} (resilience {})",
                found.partitions_tried,
                found.joins,
                found.certificate.relation,
                found.certificate.resilience
            );
            println!("database:\n{}", found.database);
            ExitCode::SUCCESS
        }
        None => {
            println!("no IJP found within the budget");
            ExitCode::FAILURE
        }
    }
}

fn catalogue_cmd() -> ExitCode {
    for nq in catalogue::all_named_queries() {
        let c = classify(&nq.query);
        println!(
            "{:<18} {:<12} {}",
            nq.name,
            format!("{:?}", nq.paper_class),
            c.complexity
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_do_not_collide_with_large_numeric_constants() {
        // Regression: the old loader started label interning at the fixed
        // constant 1,000,000, so the label "alpha" aliased an explicit
        // 1000001 in the same file and the two tuples below collapsed into
        // one, changing the resilience.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let text = "R(1000001, 7)\nR(alpha, 7)\nR(7, 9)\n";
        let db = parse_database(&q, text).unwrap();
        assert_eq!(db.num_tuples(), 3, "label collided with numeric constant");
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.tuples_of(r).len(), 3);
    }

    #[test]
    fn repeated_labels_intern_to_the_same_constant() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(alice, bob)\nR(alice, bob)\nR(bob, alice)\n").unwrap();
        // The duplicate fact deduplicates; alice/bob are stable across lines.
        assert_eq!(db.num_tuples(), 2);
    }

    #[test]
    fn labels_are_offset_past_the_file_maximum() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(42, alpha)\nR(7, beta)\n").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        // Numbers stay verbatim; alpha interns first => 43, beta => 44.
        assert!(db.contains(r, &[42u64, 43]));
        assert!(db.contains(r, &[7u64, 44]));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(parse_database(&q, "R(1, 2\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "# ok\nZ(1, 2)\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_database(&q, "R(1, )\n")
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "# header\n\nR(1, 2) # trailing\n").unwrap();
        assert_eq!(db.num_tuples(), 1);
    }

    #[test]
    fn whatif_script_runs_delete_solve_restore() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        let script = "solve\ndelete R(3,3)\nsolve\nrestore R(3,3)\n# comment\nsolve\n";
        let ops = parse_whatif_script(&q, &labels, script).unwrap();
        assert_eq!(ops.len(), 5);
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        assert!(lines[0].contains("\"resilience\": 2"));
        assert!(lines[1].contains("\"op\": \"delete\""));
        assert!(lines[1].contains("\"witnesses_changed\": 2"));
        assert!(lines[2].contains("\"resilience\": 1"));
        assert!(lines[4].contains("\"resilience\": 2"));
    }

    #[test]
    fn whatif_json_reports_solver_stats() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        // solve twice (second is a replay), then delete + solve (the
        // restricted previous contingency short-circuits the exact search).
        let script = "solve\nsolve\ndelete R(3,3)\nsolve\n";
        let ops = parse_whatif_script(&q, &labels, script).unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        assert!(lines[0].contains("\"solver\": {\"warm_start_hit\": false"));
        assert!(lines[0].contains("\"replayed\": false"));
        assert!(lines[1].contains("\"replayed\": true"));
        // The singleton witness forces R(3,3) into the first contingency
        // set; after deleting it the restriction matches the fresh packing
        // lower bound, so the search is skipped entirely.
        assert!(lines[3].contains("\"short_circuit\": true"), "{}", lines[3]);
        assert!(lines[3].contains("\"nodes_explored\": 0"));
        // Text mode surfaces the warm markers too.
        let mut cold = compiled.session(&frozen).unwrap();
        let text = run_whatif_ops(&mut cold, &db, &ops, false).unwrap();
        assert!(text[1].contains("[replayed]"), "{}", text[1]);
        assert!(text[3].contains("[warm"), "{}", text[3]);
    }

    #[test]
    fn whatif_script_resolves_labels_like_the_loader() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) = parse_database_with_labels(&q, "R(a,b)\nR(b,c)\nR(7,9)\n").unwrap();
        let ops = parse_whatif_script(&q, &labels, "delete R(a,b)\nsolve\n").unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, false).unwrap();
        assert_eq!(lines.len(), 2);
        // Unknown labels are parse errors, not silent fresh constants.
        assert!(parse_whatif_script(&q, &labels, "delete R(zz,b)\n")
            .unwrap_err()
            .contains("label zz"));
        // Unknown relations too.
        assert!(parse_whatif_script(&q, &labels, "delete Z(1,2)\n")
            .unwrap_err()
            .contains("relation Z"));
        // Malformed parenthesis order is a parse error, not a panic.
        assert!(parse_whatif_script(&q, &labels, "delete R)2(\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "R)2(\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn whatif_session_matches_batch_of_reduced_files() {
        // A delete script must answer exactly what `solve` answers on the
        // physically reduced file.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let (db, labels) =
            parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,3)\nR(3,4)\nR(4,4)\n").unwrap();
        let (reduced_db, _) =
            parse_database_with_labels(&q, "R(1,2)\nR(2,3)\nR(3,4)\nR(4,4)\n").unwrap();
        let compiled = Engine::compile(&q);
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        let ops = parse_whatif_script(&q, &labels, "delete R(3,3)\nsolve\n").unwrap();
        let lines = run_whatif_ops(&mut session, &db, &ops, true).unwrap();
        let scratch = compiled
            .solve(&reduced_db.freeze(), &SolveOptions::new())
            .unwrap();
        let expected = match scratch.resilience {
            Resilience::Finite(k) => format!("\"resilience\": {k}"),
            Resilience::Unfalsifiable => "\"resilience\": null".to_string(),
        };
        assert!(lines[1].contains(&expected), "{} vs {expected}", lines[1]);
        assert!(lines[1].contains(&format!("\"witnesses\": {}", scratch.witnesses)));
    }

    #[test]
    fn report_json_is_well_formed_for_both_outcomes() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = parse_database(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        let compiled = Engine::compile(&q);
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        let json = report_json("test.db", &db, &report);
        assert!(json.contains("\"resilience\": 2"));
        assert!(json.contains("\"unfalsifiable\": false"));
        assert!(json.contains("\"contingency\": ["));

        let q2 = parse_query("R^x(x,y)").unwrap();
        let db2 = parse_database(&q2, "R(1,2)\n").unwrap();
        let compiled2 = Engine::compile(&q2);
        let report2 = compiled2
            .solve(&db2.freeze(), &SolveOptions::new())
            .unwrap();
        let json2 = report_json("test.db", &db2, &report2);
        assert!(json2.contains("\"resilience\": null"));
        assert!(json2.contains("\"unfalsifiable\": true"));
    }
}
