//! `rescli` — a small command-line front end for the resilience library.
//!
//! ```text
//! rescli classify "<query>"              classify a query (Theorem 37 + Secs. 5-8)
//! rescli solve    "<query>" <file>       compute resilience over a database file
//! rescli batch    "<query>" <file>...    compile once, solve every file in parallel
//! rescli ijp      "<query>" [joins] [partitions]
//!                                         search for an Independent Join Path
//! rescli catalogue                        print the named-query catalogue
//! ```
//!
//! `solve` and `batch` accept `--json` for machine-readable output.
//!
//! The database file format is one tuple per line, `Rel(c1,c2,...)`, with
//! `#` comments; constants are non-negative integers or arbitrary labels.
//! Labels are interned through the shared [`database::ConstPool`] and then
//! offset past the largest numeric constant of the file, so a label can
//! never collide with an explicit numeric constant.

use resilience::core::engine::{CompiledQuery, Engine, Resilience, SolveOptions, SolveReport};
use resilience::database::ConstPool;
use resilience::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rescli classify \"<query>\"\n  rescli solve [--json] \"<query>\" <database-file>\n  \
         rescli batch [--json] \"<query>\" <database-file>...\n  \
         rescli ijp \"<query>\" [max-joins] [max-partitions]\n  rescli catalogue"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    match args.first().map(|s| s.as_str()) {
        Some("classify") if args.len() == 2 => classify_cmd(&args[1]),
        Some("solve") if args.len() == 3 => solve_cmd(&args[1], &args[2], json),
        Some("batch") if args.len() >= 3 => batch_cmd(&args[1], &args[2..], json),
        Some("ijp") if (2..=4).contains(&args.len()) => {
            let joins = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            let partitions = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10_000);
            ijp_cmd(&args[1], joins, partitions)
        }
        Some("catalogue") if args.len() == 1 => catalogue_cmd(),
        _ => usage(),
    }
}

fn parse_or_exit(text: &str) -> Result<Query, ExitCode> {
    match parse_query(text) {
        Ok(q) => Ok(q),
        Err(e) => {
            eprintln!("could not parse query: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn classify_cmd(text: &str) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let c = classify(&q);
    println!("query      : {q}");
    println!("complexity : {}", c.complexity);
    println!("normal form: {}", c.evidence.normalized);
    if let Some(t) = &c.evidence.triad {
        println!("triad      : atoms {:?}", t.atoms);
    }
    for note in &c.evidence.notes {
        println!("note       : {note}");
    }
    ExitCode::SUCCESS
}

/// One parsed constant of a database file: a numeric literal or a label to
/// be interned.
enum RawConstant {
    Number(u64),
    Label(String),
}

/// Parses the textual database format: one `Rel(c1,...,ck)` fact per line.
///
/// Labels are interned through [`ConstPool`] and offset past the largest
/// numeric constant in `text`, so explicit numbers and interned labels can
/// never collide (the previous implementation started labels at a fixed
/// 1,000,000, which silently aliased files using constants ≥ 1,000,000).
fn parse_database(q: &Query, text: &str) -> Result<Database, String> {
    let mut facts: Vec<(String, Vec<RawConstant>)> = Vec::new();
    let mut max_number = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let open = line
            .find('(')
            .ok_or_else(|| format!("line {}: expected Rel(...)", lineno + 1))?;
        let close = line
            .rfind(')')
            .ok_or_else(|| format!("line {}: missing ')'", lineno + 1))?;
        let rel = line[..open].trim();
        if q.schema().relation_id(rel).is_none() {
            return Err(format!(
                "line {}: relation {rel} not in the query",
                lineno + 1
            ));
        }
        let values: Result<Vec<RawConstant>, String> = line[open + 1..close]
            .split(',')
            .map(|v| {
                let v = v.trim();
                if let Ok(n) = v.parse::<u64>() {
                    max_number = max_number.max(n);
                    Ok(RawConstant::Number(n))
                } else if v.is_empty() {
                    Err(format!("line {}: empty constant", lineno + 1))
                } else {
                    Ok(RawConstant::Label(v.to_string()))
                }
            })
            .collect();
        facts.push((rel.to_string(), values?));
    }

    // Second pass: labels become `offset + pool index`, strictly above every
    // numeric constant seen in the file.
    let offset = max_number
        .checked_add(1)
        .ok_or_else(|| "constant u64::MAX leaves no room for labels".to_string())?;
    let mut pool = ConstPool::new();
    let mut db = Database::for_query(q);
    for (rel, values) in facts {
        let resolved: Result<Vec<u64>, String> = values
            .iter()
            .map(|value| match value {
                RawConstant::Number(n) => Ok(*n),
                RawConstant::Label(label) => offset
                    .checked_add(pool.intern(label).value())
                    .ok_or_else(|| format!("too many labels to intern past {max_number}")),
            })
            .collect();
        db.insert_named(&rel, &resolved?);
    }
    Ok(db)
}

/// Reads and parses a database file.
fn load_database(q: &Query, path: &str) -> Result<Database, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_database(q, &text)
}

fn render_contingency(db: &Database, gamma: &[TupleId]) -> Vec<String> {
    gamma
        .iter()
        .map(|&t| {
            let rel = db.schema().name(db.relation_of(t));
            let vals: Vec<String> = db.values_of(t).iter().map(|c| c.to_string()).collect();
            format!("{rel}({})", vals.join(","))
        })
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one solve report as a JSON object (no trailing newline).
fn report_json(file: &str, db: &Database, report: &SolveReport) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"file\": \"{}\"", json_escape(file));
    let _ = write!(out, ", \"tuples\": {}", db.num_tuples());
    let _ = write!(out, ", \"witnesses\": {}", report.witnesses);
    match report.resilience {
        Resilience::Finite(k) => {
            let _ = write!(out, ", \"resilience\": {k}, \"unfalsifiable\": false");
        }
        Resilience::Unfalsifiable => {
            let _ = write!(out, ", \"resilience\": null, \"unfalsifiable\": true");
        }
    }
    let _ = write!(
        out,
        ", \"method\": \"{}\"",
        json_escape(&format!("{:?}", report.method))
    );
    if let Some(gamma) = &report.contingency {
        let rendered: Vec<String> = render_contingency(db, gamma)
            .into_iter()
            .map(|t| format!("\"{}\"", json_escape(&t)))
            .collect();
        let _ = write!(out, ", \"contingency\": [{}]", rendered.join(", "));
    } else {
        let _ = write!(out, ", \"contingency\": null");
    }
    out.push('}');
    out
}

fn print_report_text(db: &Database, report: &SolveReport) {
    println!("tuples       : {}", db.num_tuples());
    match report.resilience {
        Resilience::Finite(r) => println!("resilience   : {r}  (method {:?})", report.method),
        Resilience::Unfalsifiable => {
            println!("resilience   : unbounded (the query cannot be made false)")
        }
    }
    if let Some(gamma) = &report.contingency {
        println!("contingency  : {}", render_contingency(db, gamma).join(" "));
    }
}

fn solve_cmd(text: &str, path: &str, json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let db = match load_database(&q, path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = Engine::compile(&q);
    let report = match compiled.solve(&db.freeze(), &SolveOptions::new()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("solve failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            report_json(path, &db, &report)
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        print_report_text(&db, &report);
    }
    ExitCode::SUCCESS
}

fn batch_cmd(text: &str, paths: &[String], json: bool) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    // Compile once; load and freeze every instance; solve the whole batch
    // through the shared plan.
    let compiled: CompiledQuery = Engine::compile(&q);
    let mut dbs = Vec::with_capacity(paths.len());
    for path in paths {
        match load_database(&q, path) {
            Ok(db) => dbs.push(db),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let frozen: Vec<_> = dbs.iter().map(|db| db.freeze()).collect();
    let reports = compiled.solve_batch(&frozen, &SolveOptions::new());

    let mut failed = false;
    if json {
        let mut rows = Vec::with_capacity(reports.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => rows.push(report_json(path, db, report)),
                Err(e) => {
                    rows.push(format!(
                        "{{\"file\": \"{}\", \"error\": \"{}\"}}",
                        json_escape(path),
                        json_escape(&e.to_string())
                    ));
                    failed = true;
                }
            }
        }
        println!(
            "{{\"query\": \"{}\", \"complexity\": \"{}\", \"results\": [{}]}}",
            json_escape(&q.to_string()),
            json_escape(&compiled.classification().complexity.to_string()),
            rows.join(", ")
        );
    } else {
        println!("query        : {q}");
        println!("complexity   : {}", compiled.classification().complexity);
        println!("instances    : {}", paths.len());
        for ((path, db), report) in paths.iter().zip(&dbs).zip(&reports) {
            match report {
                Ok(report) => {
                    let value = match report.resilience {
                        Resilience::Finite(r) => r.to_string(),
                        Resilience::Unfalsifiable => "unbounded".to_string(),
                    };
                    println!(
                        "{path:<30} tuples {:>5}  resilience {value:>9}  ({:?})",
                        db.num_tuples(),
                        report.method
                    );
                }
                Err(e) => {
                    println!("{path:<30} error: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn ijp_cmd(text: &str, joins: usize, partitions: usize) -> ExitCode {
    let q = match parse_or_exit(text) {
        Ok(q) => q,
        Err(code) => return code,
    };
    println!("searching for an Independent Join Path for {q}");
    println!("(up to {joins} joins, {partitions} partitions per join count)");
    match ijp::search_ijp(&q, joins, partitions) {
        Some(found) => {
            println!(
                "found after {} partitions with {} joins; distinguished relation {} (resilience {})",
                found.partitions_tried,
                found.joins,
                found.certificate.relation,
                found.certificate.resilience
            );
            println!("database:\n{}", found.database);
            ExitCode::SUCCESS
        }
        None => {
            println!("no IJP found within the budget");
            ExitCode::FAILURE
        }
    }
}

fn catalogue_cmd() -> ExitCode {
    for nq in catalogue::all_named_queries() {
        let c = classify(&nq.query);
        println!(
            "{:<18} {:<12} {}",
            nq.name,
            format!("{:?}", nq.paper_class),
            c.complexity
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_do_not_collide_with_large_numeric_constants() {
        // Regression: the old loader started label interning at the fixed
        // constant 1,000,000, so the label "alpha" aliased an explicit
        // 1000001 in the same file and the two tuples below collapsed into
        // one, changing the resilience.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let text = "R(1000001, 7)\nR(alpha, 7)\nR(7, 9)\n";
        let db = parse_database(&q, text).unwrap();
        assert_eq!(db.num_tuples(), 3, "label collided with numeric constant");
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.tuples_of(r).len(), 3);
    }

    #[test]
    fn repeated_labels_intern_to_the_same_constant() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(alice, bob)\nR(alice, bob)\nR(bob, alice)\n").unwrap();
        // The duplicate fact deduplicates; alice/bob are stable across lines.
        assert_eq!(db.num_tuples(), 2);
    }

    #[test]
    fn labels_are_offset_past_the_file_maximum() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "R(42, alpha)\nR(7, beta)\n").unwrap();
        let r = db.schema().relation_id("R").unwrap();
        // Numbers stay verbatim; alpha interns first => 43, beta => 44.
        assert!(db.contains(r, &[42u64, 43]));
        assert!(db.contains(r, &[7u64, 44]));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(parse_database(&q, "R(1, 2\n")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_database(&q, "# ok\nZ(1, 2)\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse_database(&q, "R(1, )\n")
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let q = parse_query("R(x,y)").unwrap();
        let db = parse_database(&q, "# header\n\nR(1, 2) # trailing\n").unwrap();
        assert_eq!(db.num_tuples(), 1);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn report_json_is_well_formed_for_both_outcomes() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = parse_database(&q, "R(1,2)\nR(2,3)\nR(3,3)\n").unwrap();
        let compiled = Engine::compile(&q);
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        let json = report_json("test.db", &db, &report);
        assert!(json.contains("\"resilience\": 2"));
        assert!(json.contains("\"unfalsifiable\": false"));
        assert!(json.contains("\"contingency\": ["));

        let q2 = parse_query("R^x(x,y)").unwrap();
        let db2 = parse_database(&q2, "R(1,2)\n").unwrap();
        let compiled2 = Engine::compile(&q2);
        let report2 = compiled2
            .solve(&db2.freeze(), &SolveOptions::new())
            .unwrap();
        let json2 = report_json("test.db", &db2, &report2);
        assert!(json2.contains("\"resilience\": null"));
        assert!(json2.contains("\"unfalsifiable\": true"));
    }
}
