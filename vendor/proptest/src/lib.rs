//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset of the API this workspace uses: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), range / tuple
//! / [`collection::vec`] strategies and the `prop_assert*` / [`prop_assume!`]
//! macros. Cases are pure random search — there is **no shrinking** — but a
//! failing case panics with the `Debug` rendering of its generated inputs,
//! which for the deterministic per-test seed is enough to reproduce it.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed: the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: draw a fresh case.
    Reject(String),
}

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (FNV-1a over the test name, overridable with
/// `PROPTEST_SEED`).
pub fn rng_for(test_name: &str) -> TestRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xcbf29ce484222325),
        Err(_) => {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }
    };
    TestRng::seed_from_u64(seed)
}

/// A generator of random values (subset of the real `Strategy`:
/// generation only, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Just a value (the real `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection sizes: a fixed length or a half-open range of lengths.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size` (a length or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.0.start + 1 == self.size.0.end {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror of the real crate's `prop::` re-exports.
    pub use crate::collection;
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($config); $($rest)*}
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                assert!(
                    rejected < config.cases.saturating_mul(64).max(1024),
                    "proptest '{}' rejected too many cases ({rejected}); \
                     weaken prop_assume! or widen the strategies",
                    stringify!($name),
                );
                let __inputs = ($($crate::Strategy::generate(&($strategy), &mut rng),)*);
                let __rendered = format!("{:?}", __inputs);
                let ($($arg,)*) = __inputs;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                        stringify!($name),
                        accepted,
                        msg,
                        __rendered,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::ProptestConfig::default()); $($rest)*}
    };
}

/// `assert!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// `assert_ne!` that fails the surrounding proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10u64, y in 3..5usize) {
            prop_assert!(x < 10);
            prop_assert!((3..5).contains(&y));
        }

        #[test]
        fn vectors_respect_sizes(
            v in prop::collection::vec((0..4u64, 0..4u64), 0..7),
            w in prop::collection::vec(0..9usize, 3),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(w.len(), 3);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100u64) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::rng_for("some_test");
        let mut b = crate::rng_for("some_test");
        let s = 0..1_000_000u64;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0..3u64) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
