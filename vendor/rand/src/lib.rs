//! Offline shim for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the API used by this workspace: a seeded
//! [`rngs::StdRng`] behind the [`Rng`] + [`SeedableRng`] traits, uniform
//! ranges via [`Rng::gen_range`], Bernoulli draws via [`Rng::gen_bool`] and
//! Fisher–Yates [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed, but the
//! streams do **not** match the real `rand` crate.

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by the shim.
pub trait UniformSample: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Object-safe core randomness source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform draw of `x in [0, bound)` without modulo bias (Lemire rejection).
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing randomness trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniformly random mantissa bits, the standard [0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{bounded_u64, Rng};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
