//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API surface the `bench` crate uses: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`] /
//! [`Criterion::bench_function`], [`BenchmarkGroup`] timing knobs,
//! [`BenchmarkId`], [`Bencher::iter`] and [`black_box`]. Each benchmark is
//! warmed up, then sampled a fixed number of times; the median / min / max
//! per-iteration wall time is printed, and when the `CRITERION_JSON`
//! environment variable names a file one JSON line per benchmark is appended
//! to it — that is how the repository's `BENCH_*.json` baselines are made.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting the
/// computation of its argument.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<u64>,
    iters_per_sample: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting per-iteration nanoseconds across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once) and
        // estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);

        // Size each sample so the whole measurement roughly fits the budget.
        let budget = self.measurement_time.as_nanos() as u64;
        let total_iters = (budget / per_iter.max(1)).clamp(self.sample_count as u64, 1_000_000);
        self.iters_per_sample = (total_iters / self.sample_count as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as u64 / self.iters_per_sample;
            self.samples.push(ns);
        }
    }
}

/// Records one finished benchmark to stdout and (optionally) a JSON file.
fn report(bench_name: &str, bencher: &Bencher) {
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let (median, min, max) = if sorted.is_empty() {
        (0, 0, 0)
    } else {
        (
            sorted[sorted.len() / 2],
            sorted[0],
            sorted[sorted.len() - 1],
        )
    };
    println!(
        "{bench_name:<50} median {median:>12} ns/iter  (min {min}, max {max}, {} samples x {} iters)",
        sorted.len(),
        bencher.iters_per_sample
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"bench\":\"{bench_name}\",\"median_ns\":{median},\"min_ns\":{min},\"max_ns\":{max},\"samples\":{},\"iters_per_sample\":{}}}\n",
                sorted.len(),
                bencher.iters_per_sample
            );
            let _ = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut fh| fh.write_all(line.as_bytes()));
        }
    }
}

fn run_benchmark(
    name: &str,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_count: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        warm_up_time,
        measurement_time,
        sample_count,
    };
    f(&mut bencher);
    report(name, &bencher);
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmarks `f` with a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().id);
        run_benchmark(
            &name,
            self.warm_up_time,
            self.measurement_time,
            self.sample_count,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().id);
        run_benchmark(
            &name,
            self.warm_up_time,
            self.measurement_time,
            self.sample_count,
            &mut f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_count: 20,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(
            name,
            Duration::from_millis(500),
            Duration::from_secs(2),
            20,
            &mut f,
        );
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_count: 5,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("flow", 12);
        assert_eq!(id.id, "flow/12");
        let from: BenchmarkId = "plain".into();
        assert_eq!(from.id, "plain");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(3));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
