//! Network-flow substrate.
//!
//! Every polynomial-time case in the paper reduces to a minimum cut: linear
//! sj-free queries (Section 2.4), 2-confluences (Proposition 31), the
//! permutation-plus-R queries (Propositions 13 and 44), REP queries
//! (Proposition 36) and `q_TS3conf` (Proposition 41). This crate provides the
//! flow machinery those algorithms share:
//!
//! * [`FlowNetwork`] — a directed network with integer capacities and two
//!   max-flow implementations (Dinic's algorithm and Edmonds–Karp, the latter
//!   kept as an independently-implemented cross-check);
//! * s–t minimum cut extraction (edges crossing the cut and the source-side
//!   reachable set);
//! * [`VertexCutNetwork`] — minimum *vertex* cuts via the standard
//!   node-splitting construction, which is the shape resilience reductions
//!   naturally take (tuples are nodes: endogenous tuples have capacity 1,
//!   exogenous tuples are uncuttable).

pub mod mincut;
pub mod network;
pub mod vertex_cut;

pub use mincut::MinCut;
pub use network::{EdgeId, FlowInterrupted, FlowNetwork, NodeId, INF};
pub use vertex_cut::{VertexCut, VertexCutNetwork};
