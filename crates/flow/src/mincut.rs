//! s–t minimum cut extraction on top of max flow.

use crate::network::{EdgeId, FlowInterrupted, FlowNetwork, NodeId};

/// A minimum s–t cut.
#[derive(Clone, Debug)]
pub struct MinCut {
    /// The value of the cut (equals the maximum flow).
    pub value: u64,
    /// The (forward) edges crossing from the source side to the sink side.
    pub cut_edges: Vec<EdgeId>,
    /// `source_side[v]` is `true` when node `v` is reachable from the source
    /// in the residual network.
    pub source_side: Vec<bool>,
}

impl MinCut {
    /// Computes a minimum s–t cut of `network` (running Dinic's algorithm).
    pub fn compute(network: &mut FlowNetwork, s: NodeId, t: NodeId) -> MinCut {
        match Self::compute_interruptible(network, s, t, &mut || false) {
            Ok(cut) => cut,
            Err(_) => unreachable!("the never-stop callback cannot interrupt the run"),
        }
    }

    /// [`MinCut::compute`] with a cooperative stop callback (see
    /// [`FlowNetwork::max_flow_dinic_interruptible`]). On interruption the
    /// partial flow routed so far is reported instead of a cut.
    pub fn compute_interruptible(
        network: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<MinCut, FlowInterrupted> {
        let value = network.max_flow_dinic_interruptible(s, t, should_stop)?;
        let source_side = network.residual_reachable(s);
        let mut cut_edges = Vec::new();
        for i in 0..network.num_edges() {
            let id = EdgeId(i as u32);
            let (from, to, cap) = network.edge(id);
            if cap == 0 {
                continue;
            }
            if source_side[from.index()] && !source_side[to.index()] {
                cut_edges.push(id);
            }
        }
        Ok(MinCut {
            value,
            cut_edges,
            source_side,
        })
    }

    /// Computes only the *value* of a minimum s–t cut (the max flow),
    /// skipping the residual-reachability sweep and cut-edge extraction.
    /// Callers that do not need the cut certificate (e.g. resilience solves
    /// with contingency reporting disabled) save the extraction pass.
    pub fn compute_value(network: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
        network.max_flow_dinic(s, t)
    }

    /// [`MinCut::compute_value`] with a cooperative stop callback.
    pub fn compute_value_interruptible(
        network: &mut FlowNetwork,
        s: NodeId,
        t: NodeId,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<u64, FlowInterrupted> {
        network.max_flow_dinic_interruptible(s, t, should_stop)
    }

    /// Sum of the original capacities of the reported cut edges.
    pub fn cut_capacity(&self, network: &FlowNetwork) -> u64 {
        self.cut_edges.iter().map(|&e| network.edge(e).2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::INF;

    #[test]
    fn cut_edges_match_flow_value() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1)
        // max flow = 5; the min cut is {a->t (2), s->b (2), a->b (1)} or an
        // equivalent 5-capacity selection.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 3);
        g.add_edge(s, b, 2);
        g.add_edge(a, t, 2);
        g.add_edge(b, t, 3);
        g.add_edge(a, b, 1);
        let cut = MinCut::compute(&mut g, s, t);
        assert_eq!(cut.value, 5);
        assert_eq!(cut.cut_capacity(&g), 5);
        assert!(cut.source_side[s.index()]);
        assert!(!cut.source_side[t.index()]);
    }

    #[test]
    fn unit_capacity_path_cut_has_one_edge() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, 1);
        g.add_edge(m, t, INF);
        let cut = MinCut::compute(&mut g, s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_edges.len(), 1);
        let (from, to, _) = g.edge(cut.cut_edges[0]);
        assert_eq!((from, to), (s, m));
    }

    #[test]
    fn disconnected_cut_is_empty() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let cut = MinCut::compute(&mut g, s, t);
        assert_eq!(cut.value, 0);
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn parallel_paths_require_multiple_cut_edges() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let mids = g.add_nodes(3);
        for &m in &mids {
            g.add_edge(s, m, INF);
            g.add_edge(m, t, 1);
        }
        let cut = MinCut::compute(&mut g, s, t);
        assert_eq!(cut.value, 3);
        assert_eq!(cut.cut_edges.len(), 3);
    }

    #[test]
    fn interrupted_run_reports_partial_flow() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        for _ in 0..3 {
            let m = g.add_node();
            g.add_edge(s, m, 1);
            g.add_edge(m, t, 1);
        }
        // Stopping before any work reports zero partial flow.
        let err = MinCut::compute_interruptible(&mut g, s, t, &mut || true).unwrap_err();
        assert_eq!(err.partial_flow, 0);
        // A stop after some augmentations reports a valid partial value
        // (Dinic may route several paths within the first uninterrupted
        // phase, so the bound is `<= max`, not an exact count).
        let mut calls = 0usize;
        let result = g.max_flow_dinic_interruptible(s, t, &mut || {
            calls += 1;
            calls > 1
        });
        match result {
            Ok(v) => assert_eq!(v, 3),
            Err(partial) => assert!(partial.partial_flow <= 3),
        }
        // A never-stop run still finds the maximum.
        assert_eq!(MinCut::compute(&mut g, s, t).value, 3);
    }

    #[test]
    fn zero_capacity_edges_never_appear_in_cut() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 0);
        g.add_edge(s, t, 2);
        let cut = MinCut::compute(&mut g, s, t);
        assert_eq!(cut.value, 2);
        assert_eq!(cut.cut_edges.len(), 1);
    }
}
