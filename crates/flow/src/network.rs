//! Directed flow networks with integer capacities and max-flow algorithms.

use std::collections::VecDeque;

/// Effectively-infinite capacity (large enough to never be the bottleneck,
/// small enough that sums cannot overflow `u64`).
pub const INF: u64 = u64::MAX / 4;

/// A node of a [`FlowNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A (forward) edge of a [`FlowNetwork`], identified by the order of
/// `add_edge` calls.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal residual edge: `cap` is the *remaining* capacity; the original
/// capacity is kept separately so flows can be reset and reported.
#[derive(Clone, Debug)]
struct InternalEdge {
    to: u32,
    cap: u64,
    original_cap: u64,
}

/// A directed network with integer capacities.
///
/// Residual edges are stored explicitly: every `add_edge` creates a forward
/// edge and a zero-capacity reverse edge at adjacent indices (`i` and
/// `i ^ 1`), the classic pairing both max-flow implementations rely on.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Adjacency: per node, indices into `edges`.
    adjacency: Vec<Vec<u32>>,
    edges: Vec<InternalEdge>,
    /// Maps public [`EdgeId`]s to the index of their forward internal edge.
    public_edges: Vec<u32>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() as u32 - 1)
    }

    /// Adds `n` nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (forward) edges.
    pub fn num_edges(&self) -> usize {
        self.public_edges.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        let forward = self.edges.len() as u32;
        self.edges.push(InternalEdge {
            to: to.0,
            cap,
            original_cap: cap,
        });
        self.edges.push(InternalEdge {
            to: from.0,
            cap: 0,
            original_cap: 0,
        });
        self.adjacency[from.index()].push(forward);
        self.adjacency[to.index()].push(forward + 1);
        self.public_edges.push(forward);
        EdgeId(self.public_edges.len() as u32 - 1)
    }

    /// The endpoints and (original) capacity of a (forward) edge.
    pub fn edge(&self, id: EdgeId) -> (NodeId, NodeId, u64) {
        let fwd = self.public_edges[id.index()];
        let to = self.edges[fwd as usize].to;
        let from = self.edges[(fwd ^ 1) as usize].to;
        (NodeId(from), NodeId(to), self.edges[fwd as usize].original_cap)
    }

    /// Flow currently routed through a (forward) edge (valid after a
    /// max-flow run).
    pub fn edge_flow(&self, id: EdgeId) -> u64 {
        let fwd = self.public_edges[id.index()];
        let e = &self.edges[fwd as usize];
        e.original_cap - e.cap
    }

    /// Restores every edge to its original capacity (zero flow).
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.cap = e.original_cap;
        }
    }

    /// Computes the maximum s–t flow with Dinic's algorithm.
    pub fn max_flow_dinic(&mut self, s: NodeId, t: NodeId) -> u64 {
        self.reset_flow();
        if s == t {
            return 0;
        }
        let n = self.num_nodes();
        let mut total = 0u64;
        loop {
            // BFS to build the level graph on the residual network.
            let mut level = vec![u32::MAX; n];
            level[s.index()] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(s.0);
            while let Some(u) = queue.pop_front() {
                for &ei in &self.adjacency[u as usize] {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && level[e.to as usize] == u32::MAX {
                        level[e.to as usize] = level[u as usize] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[t.index()] == u32::MAX {
                break;
            }
            // Repeated DFS to find a blocking flow.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dinic_dfs(s.0, t.0, INF, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    fn dinic_dfs(&mut self, u: u32, t: u32, limit: u64, level: &[u32], iter: &mut [usize]) -> u64 {
        if u == t {
            return limit;
        }
        while iter[u as usize] < self.adjacency[u as usize].len() {
            let ei = self.adjacency[u as usize][iter[u as usize]];
            let (to, residual) = {
                let e = &self.edges[ei as usize];
                (e.to, e.cap)
            };
            if residual > 0 && level[to as usize] == level[u as usize] + 1 {
                let pushed = self.dinic_dfs(to, t, limit.min(residual), level, iter);
                if pushed > 0 {
                    self.edges[ei as usize].cap -= pushed;
                    self.edges[(ei ^ 1) as usize].cap += pushed;
                    return pushed;
                }
            }
            iter[u as usize] += 1;
        }
        0
    }

    /// Computes the maximum s–t flow with the Edmonds–Karp algorithm
    /// (BFS augmenting paths). Kept as an independent implementation used to
    /// cross-check Dinic in tests and benchmarks.
    pub fn max_flow_edmonds_karp(&mut self, s: NodeId, t: NodeId) -> u64 {
        self.reset_flow();
        if s == t {
            return 0;
        }
        let n = self.num_nodes();
        let mut total = 0u64;
        loop {
            let mut parent_edge: Vec<Option<u32>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[s.index()] = true;
            let mut queue = VecDeque::new();
            queue.push_back(s.0);
            'bfs: while let Some(u) = queue.pop_front() {
                for &ei in &self.adjacency[u as usize] {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && !visited[e.to as usize] {
                        visited[e.to as usize] = true;
                        parent_edge[e.to as usize] = Some(ei);
                        if e.to == t.0 {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !visited[t.index()] {
                break;
            }
            // Bottleneck along the found path.
            let mut bottleneck = INF;
            let mut v = t.0;
            while v != s.0 {
                let ei = parent_edge[v as usize].unwrap();
                bottleneck = bottleneck.min(self.edges[ei as usize].cap);
                v = self.edges[(ei ^ 1) as usize].to;
            }
            // Augment.
            let mut v = t.0;
            while v != s.0 {
                let ei = parent_edge[v as usize].unwrap();
                self.edges[ei as usize].cap -= bottleneck;
                self.edges[(ei ^ 1) as usize].cap += bottleneck;
                v = self.edges[(ei ^ 1) as usize].to;
            }
            total += bottleneck;
        }
        total
    }

    /// Nodes reachable from `s` in the residual network (valid after a
    /// max-flow run); this is the source side of a minimum cut.
    pub fn residual_reachable(&self, s: NodeId) -> Vec<bool> {
        let n = self.num_nodes();
        let mut visited = vec![false; n];
        visited[s.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(s.0);
        while let Some(u) = queue.pop_front() {
            for &ei in &self.adjacency[u as usize] {
                let e = &self.edges[ei as usize];
                if e.cap > 0 && !visited[e.to as usize] {
                    visited[e.to as usize] = true;
                    queue.push_back(e.to);
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1)
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 3);
        g.add_edge(s, b, 2);
        g.add_edge(a, t, 2);
        g.add_edge(b, t, 3);
        g.add_edge(a, b, 1);
        (g, s, t)
    }

    #[test]
    fn dinic_computes_max_flow_on_diamond() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
    }

    #[test]
    fn edmonds_karp_agrees_with_dinic() {
        let (mut g, s, t) = diamond();
        let d = g.max_flow_dinic(s, t);
        let ek = g.max_flow_edmonds_karp(s, t);
        assert_eq!(d, ek);
    }

    #[test]
    fn single_edge_network() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 7);
        assert_eq!(g.max_flow_dinic(s, t), 7);
    }

    #[test]
    fn disconnected_source_and_sink_have_zero_flow() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let _ = g.add_node();
        assert_eq!(g.max_flow_dinic(s, t), 0);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 0);
    }

    #[test]
    fn infinite_capacity_edges_are_never_bottlenecks() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, INF);
        g.add_edge(m, t, 4);
        assert_eq!(g.max_flow_dinic(s, t), 4);
    }

    #[test]
    fn parallel_edges_sum() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 2);
        g.add_edge(s, t, 3);
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 5);
    }

    #[test]
    fn edge_metadata_round_trips() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let e = g.add_edge(s, t, 9);
        assert_eq!(g.edge(e), (s, t, 9));
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        g.max_flow_dinic(s, t);
        assert_eq!(g.edge_flow(e), 9);
    }

    #[test]
    fn residual_reachability_identifies_cut_side() {
        // s -> a (1) -> t (10): the cut is the s->a edge, so only s is
        // reachable in the residual graph.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 1);
        g.add_edge(a, t, 10);
        g.max_flow_dinic(s, t);
        let reach = g.residual_reachable(s);
        assert!(reach[s.index()]);
        assert!(!reach[a.index()]);
        assert!(!reach[t.index()]);
    }

    #[test]
    fn classic_cut_example() {
        // CLRS figure 26.6: maximum flow value 23.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let v3 = g.add_node();
        let v4 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(g.max_flow_dinic(s, t), 23);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 23);
    }

    #[test]
    fn rerunning_max_flow_is_deterministic() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 5);
        assert_eq!(g.max_flow_dinic(s, t), 5);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        g.add_edge(s, s, 10);
        assert_eq!(g.max_flow_dinic(s, s), 0);
    }

    #[test]
    fn flow_conservation_on_reported_edge_flows() {
        let (mut g, s, t) = diamond();
        let total = g.max_flow_dinic(s, t);
        // Flow out of s equals total.
        let mut out_of_s = 0;
        for i in 0..g.num_edges() {
            let id = EdgeId(i as u32);
            let (from, _, _) = g.edge(id);
            if from == s {
                out_of_s += g.edge_flow(id);
            }
        }
        assert_eq!(out_of_s, total);
    }
}
