//! Directed flow networks with integer capacities and max-flow algorithms.
//!
//! The adjacency structure is *compressed sparse row* (CSR): a single
//! offsets array plus a single edge-index array, built lazily from the
//! residual edge list the first time a traversal needs it and invalidated by
//! mutation. Both max-flow implementations and the residual BFS walk the CSR
//! arrays; Dinic additionally reuses its level / queue / stack scratch
//! buffers across phases and across runs, so a solve performs no allocation
//! after the first call on a given network.

use std::collections::VecDeque;

/// Effectively-infinite capacity (large enough to never be the bottleneck,
/// small enough that sums cannot overflow `u64`).
pub const INF: u64 = u64::MAX / 4;

const UNREACHED: u32 = u32::MAX;

/// A max-flow run stopped early by its caller's stop callback (see
/// [`FlowNetwork::max_flow_dinic_interruptible`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowInterrupted {
    /// Flow routed before the stop — a valid (not necessarily maximum) s–t
    /// flow, hence a lower bound on the min-cut value.
    pub partial_flow: u64,
}

/// Outcome of a decremental capacity change
/// ([`FlowNetwork::reduce_capacity_repair`]): how much established flow had
/// to be drained back to the endpoints and how many residual augmentations
/// the repair walked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Flow units removed from the s–t flow value (the overflow that could
    /// not be rerouted around the shrunk edge). The caller's tracked flow
    /// value decreases by exactly this much.
    pub drained: u64,
    /// Residual augmenting paths walked during the repair (reroutes plus
    /// drain-back paths) — the "paths repaired" observability counter.
    pub paths: u64,
}

/// A node of a [`FlowNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A (forward) edge of a [`FlowNetwork`], identified by the order of
/// `add_edge` calls.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal residual edge: `cap` is the *remaining* capacity; the original
/// capacity is kept separately so flows can be reset and reported.
#[derive(Clone, Debug)]
struct InternalEdge {
    to: u32,
    cap: u64,
    original_cap: u64,
}

/// Reusable traversal scratch (level graph, BFS queue, DFS path, current-arc
/// cursors). Lives in the network so repeated solves allocate nothing.
#[derive(Clone, Debug, Default)]
struct Scratch {
    level: Vec<u32>,
    queue: Vec<u32>,
    iter: Vec<u32>,
    path: Vec<u32>,
}

/// A directed network with integer capacities.
///
/// Residual edges are stored explicitly: every `add_edge` creates a forward
/// edge and a zero-capacity reverse edge at adjacent indices (`i` and
/// `i ^ 1`), the classic pairing both max-flow implementations rely on.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    num_nodes: usize,
    edges: Vec<InternalEdge>,
    /// Maps public [`EdgeId`]s to the index of their forward internal edge.
    public_edges: Vec<u32>,
    /// CSR adjacency over `edges`: node `u`'s incident residual edges are
    /// `csr_edges[csr_offsets[u]..csr_offsets[u + 1]]`. Rebuilt lazily.
    csr_offsets: Vec<u32>,
    csr_edges: Vec<u32>,
    csr_valid: bool,
    scratch: Scratch,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the network while keeping every allocation (edge arena, CSR
    /// arrays, traversal scratch), so a caller rebuilding a similar network
    /// each solve — the engine's session steps — allocates nothing after the
    /// first build.
    pub fn clear(&mut self) {
        self.num_nodes = 0;
        self.edges.clear();
        self.public_edges.clear();
        self.csr_valid = false;
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.num_nodes += 1;
        self.csr_valid = false;
        NodeId(self.num_nodes as u32 - 1)
    }

    /// Adds `n` nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (forward) edges.
    pub fn num_edges(&self) -> usize {
        self.public_edges.len()
    }

    /// Adds a directed edge `from -> to` with capacity `cap`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: u64) -> EdgeId {
        assert!(from.index() < self.num_nodes && to.index() < self.num_nodes);
        let forward = self.edges.len() as u32;
        self.edges.push(InternalEdge {
            to: to.0,
            cap,
            original_cap: cap,
        });
        self.edges.push(InternalEdge {
            to: from.0,
            cap: 0,
            original_cap: 0,
        });
        self.public_edges.push(forward);
        self.csr_valid = false;
        EdgeId(self.public_edges.len() as u32 - 1)
    }

    /// The endpoints and (original) capacity of a (forward) edge.
    pub fn edge(&self, id: EdgeId) -> (NodeId, NodeId, u64) {
        let fwd = self.public_edges[id.index()];
        let to = self.edges[fwd as usize].to;
        let from = self.edges[(fwd ^ 1) as usize].to;
        (
            NodeId(from),
            NodeId(to),
            self.edges[fwd as usize].original_cap,
        )
    }

    /// Flow currently routed through a (forward) edge (valid after a
    /// max-flow run).
    pub fn edge_flow(&self, id: EdgeId) -> u64 {
        let fwd = self.public_edges[id.index()];
        let e = &self.edges[fwd as usize];
        e.original_cap - e.cap
    }

    /// Restores every edge to its original capacity (zero flow).
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.cap = e.original_cap;
        }
    }

    /// Decrementally shrinks a (forward) edge's capacity to `new_cap`
    /// **without discarding the established flow**: if the flow routed
    /// through the edge exceeds the new capacity, the surplus is first
    /// rerouted around the edge through the residual graph (flow value
    /// preserved) and whatever cannot be rerouted is drained back to the
    /// endpoints — excess at the tail returns to the source `s`, the sink
    /// `t` gives back the matching deficit at the head. Afterwards the
    /// network again holds a *valid* (not necessarily maximum) s–t flow
    /// whose value decreased by exactly [`RepairOutcome::drained`]; a
    /// follow-up [`FlowNetwork::max_flow_dinic_resume`] re-augments to the
    /// new maximum from the repaired residual instead of from scratch.
    pub fn reduce_capacity_repair(
        &mut self,
        id: EdgeId,
        new_cap: u64,
        s: NodeId,
        t: NodeId,
    ) -> RepairOutcome {
        let fwd = self.public_edges[id.index()] as usize;
        let flow = self.edges[fwd].original_cap - self.edges[fwd].cap;
        self.edges[fwd].original_cap = new_cap;
        if flow <= new_cap {
            // Capacity-only change: the routed flow still fits, the CSR
            // topology is untouched, nothing to repair.
            self.edges[fwd].cap = new_cap - flow;
            return RepairOutcome::default();
        }
        // Clamp the routed flow to the new capacity. The surplus becomes an
        // excess at the tail `u` and a matching deficit at the head `v`.
        let overflow = flow - new_cap;
        self.edges[fwd].cap = 0;
        self.edges[fwd ^ 1].cap = new_cap;
        let u = self.tail(fwd as u32);
        let v = self.edges[fwd].to;
        let mut paths = 0u64;
        let rerouted = if u != v {
            let (r, p) = self.route_residual(u, v, overflow);
            paths += p;
            r
        } else {
            // A self-loop carries no net imbalance; clamping it is free.
            overflow
        };
        let drain = overflow - rerouted;
        if drain > 0 {
            // Flow decomposition of the pre-repair flow guarantees residual
            // capacity >= drain on both legs: reversed s->u path segments
            // drain the excess, reversed v->t segments return the deficit.
            if u != s.0 {
                let (d, p) = self.route_residual(u, s.0, drain);
                paths += p;
                debug_assert_eq!(d, drain, "residual drain to the source must succeed");
            }
            if v != t.0 {
                let (d, p) = self.route_residual(t.0, v, drain);
                paths += p;
                debug_assert_eq!(d, drain, "residual drain from the sink must succeed");
            }
        }
        RepairOutcome {
            drained: drain,
            paths,
        }
    }

    /// Raises a (forward) edge's capacity to `new_cap` in place, keeping the
    /// flow currently routed through it (which must fit — raising is only
    /// ever relaxing). The inverse of [`FlowNetwork::reduce_capacity_repair`]
    /// for restore steps; the caller re-augments with
    /// [`FlowNetwork::max_flow_dinic_resume`] to pick up any newly available
    /// paths.
    pub fn raise_capacity(&mut self, id: EdgeId, new_cap: u64) {
        let fwd = self.public_edges[id.index()] as usize;
        let flow = self.edges[fwd].original_cap - self.edges[fwd].cap;
        debug_assert!(
            flow <= new_cap,
            "raise_capacity must not strand routed flow"
        );
        self.edges[fwd].original_cap = new_cap;
        self.edges[fwd].cap = new_cap - flow;
    }

    /// Runs Dinic **from the current residual state** (no flow reset):
    /// augments the resident flow to a maximum s–t flow and returns
    /// `(added_flow, augmenting_paths)`. Together with
    /// [`FlowNetwork::reduce_capacity_repair`] /
    /// [`FlowNetwork::raise_capacity`] this is the decremental/incremental
    /// re-solve path: repair, then resume, instead of recomputing from zero.
    pub fn max_flow_dinic_resume(&mut self, s: NodeId, t: NodeId) -> (u64, u64) {
        self.ensure_csr();
        if s == t {
            return (0, 0);
        }
        let n = self.num_nodes;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.level.resize(n, UNREACHED);
        scratch.iter.resize(n, 0);
        let mut total = 0u64;
        let mut paths = 0u64;
        loop {
            scratch.level.iter_mut().for_each(|l| *l = UNREACHED);
            scratch.level[s.index()] = 0;
            scratch.queue.clear();
            scratch.queue.push(s.0);
            let mut head = 0;
            while head < scratch.queue.len() {
                let u = scratch.queue[head];
                head += 1;
                for &ei in self.incident(u) {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && scratch.level[e.to as usize] == UNREACHED {
                        scratch.level[e.to as usize] = scratch.level[u as usize] + 1;
                        scratch.queue.push(e.to);
                    }
                }
            }
            if scratch.level[t.index()] == UNREACHED {
                break;
            }
            let (phase_flow, phase_paths, _) =
                self.blocking_flow(s.0, t.0, &mut scratch, &mut || false);
            total += phase_flow;
            paths += phase_paths;
        }
        self.scratch = scratch;
        (total, paths)
    }

    /// Pushes up to `limit` units from `from` to `to` along residual
    /// augmenting paths (BFS, shortest-first), mutating the residual state.
    /// Returns `(amount_routed, paths_walked)`. The node-parent array reuses
    /// the Dinic current-arc scratch, so repairs allocate nothing.
    fn route_residual(&mut self, from: u32, to: u32, limit: u64) -> (u64, u64) {
        const ROOT: u32 = u32::MAX - 1;
        self.ensure_csr();
        let n = self.num_nodes;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut routed = 0u64;
        let mut paths = 0u64;
        while routed < limit {
            // BFS for a residual from->to path; `iter` holds the parent edge
            // of each reached node (UNREACHED = unvisited, ROOT = origin).
            scratch.iter.clear();
            scratch.iter.resize(n, UNREACHED);
            scratch.iter[from as usize] = ROOT;
            scratch.queue.clear();
            scratch.queue.push(from);
            let mut head = 0;
            'bfs: while head < scratch.queue.len() {
                let u = scratch.queue[head];
                head += 1;
                for &ei in self.incident(u) {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && scratch.iter[e.to as usize] == UNREACHED {
                        scratch.iter[e.to as usize] = ei;
                        if e.to == to {
                            break 'bfs;
                        }
                        scratch.queue.push(e.to);
                    }
                }
            }
            if scratch.iter[to as usize] == UNREACHED {
                break;
            }
            let mut bottleneck = limit - routed;
            let mut v = to;
            while v != from {
                let ei = scratch.iter[v as usize];
                bottleneck = bottleneck.min(self.edges[ei as usize].cap);
                v = self.tail(ei);
            }
            let mut v = to;
            while v != from {
                let ei = scratch.iter[v as usize];
                self.edges[ei as usize].cap -= bottleneck;
                self.edges[(ei ^ 1) as usize].cap += bottleneck;
                v = self.tail(ei);
            }
            routed += bottleneck;
            paths += 1;
        }
        self.scratch = scratch;
        (routed, paths)
    }

    /// Tail (source node) of an internal edge: the head of its twin.
    #[inline]
    fn tail(&self, ei: u32) -> u32 {
        self.edges[(ei ^ 1) as usize].to
    }

    /// (Re)builds the CSR adjacency by counting sort over edge tails. All
    /// three working arrays (offsets, adjacency, cursor) are reused across
    /// rebuilds.
    fn ensure_csr(&mut self) {
        if self.csr_valid {
            return;
        }
        let n = self.num_nodes;
        let m = self.edges.len();
        let mut offsets = std::mem::take(&mut self.csr_offsets);
        offsets.clear();
        offsets.resize(n + 1, 0);
        for ei in 0..m as u32 {
            offsets[self.tail(ei) as usize + 1] += 1;
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        // The BFS queue buffer doubles as the counting-sort cursor between
        // traversals (both are per-node u32 scratch).
        let mut cursor = std::mem::take(&mut self.scratch.queue);
        cursor.clear();
        cursor.extend_from_slice(&offsets[..n]);
        let mut adj = std::mem::take(&mut self.csr_edges);
        adj.clear();
        adj.resize(m, 0);
        for ei in 0..m as u32 {
            let u = self.tail(ei) as usize;
            adj[cursor[u] as usize] = ei;
            cursor[u] += 1;
        }
        self.scratch.queue = cursor;
        self.csr_offsets = offsets;
        self.csr_edges = adj;
        self.csr_valid = true;
    }

    /// Incident residual edges of `u` (valid CSR required).
    #[inline]
    fn incident(&self, u: u32) -> &[u32] {
        &self.csr_edges
            [self.csr_offsets[u as usize] as usize..self.csr_offsets[u as usize + 1] as usize]
    }

    /// Computes the maximum s–t flow with Dinic's algorithm (iterative
    /// blocking-flow DFS with the current-arc optimization).
    pub fn max_flow_dinic(&mut self, s: NodeId, t: NodeId) -> u64 {
        match self.max_flow_dinic_interruptible(s, t, &mut || false) {
            Ok(total) => total,
            Err(_) => unreachable!("the never-stop callback cannot interrupt the run"),
        }
    }

    /// [`FlowNetwork::max_flow_dinic`] with a cooperative stop callback,
    /// polled once per BFS phase and once per augmenting path. When the
    /// callback returns `true` the run stops and reports the flow routed so
    /// far — a valid (if not maximum) s–t flow, hence a lower bound on the
    /// min cut. An uninterrupted run is identical to `max_flow_dinic`.
    pub fn max_flow_dinic_interruptible(
        &mut self,
        s: NodeId,
        t: NodeId,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<u64, FlowInterrupted> {
        self.ensure_csr();
        self.reset_flow();
        if s == t {
            return Ok(0);
        }
        let n = self.num_nodes;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.level.resize(n, UNREACHED);
        scratch.iter.resize(n, 0);
        let mut total = 0u64;
        let mut stopped = false;
        loop {
            if should_stop() {
                stopped = true;
                break;
            }
            // BFS to build the level graph on the residual network.
            scratch.level.iter_mut().for_each(|l| *l = UNREACHED);
            scratch.level[s.index()] = 0;
            scratch.queue.clear();
            scratch.queue.push(s.0);
            let mut head = 0;
            while head < scratch.queue.len() {
                let u = scratch.queue[head];
                head += 1;
                for &ei in self.incident(u) {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && scratch.level[e.to as usize] == UNREACHED {
                        scratch.level[e.to as usize] = scratch.level[u as usize] + 1;
                        scratch.queue.push(e.to);
                    }
                }
            }
            if scratch.level[t.index()] == UNREACHED {
                break;
            }
            let (phase_flow, _, phase_stopped) =
                self.blocking_flow(s.0, t.0, &mut scratch, should_stop);
            total += phase_flow;
            if phase_stopped {
                stopped = true;
                break;
            }
        }
        self.scratch = scratch;
        if stopped {
            Err(FlowInterrupted {
                partial_flow: total,
            })
        } else {
            Ok(total)
        }
    }

    /// Finds a blocking flow in the current level graph: an iterative DFS
    /// keeping the partial path on an explicit stack, advancing each node's
    /// current arc so saturated or level-inconsistent edges are never
    /// revisited within the phase. Returns the flow found this phase, the
    /// number of augmenting paths walked, and whether `should_stop` cut the
    /// phase short (the flow stays valid — augmentations are atomic, the
    /// stop lands between them).
    fn blocking_flow(
        &mut self,
        s: u32,
        t: u32,
        scratch: &mut Scratch,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> (u64, u64, bool) {
        scratch.iter.iter_mut().for_each(|i| *i = 0);
        scratch.path.clear();
        let mut total = 0u64;
        let mut paths = 0u64;
        let mut u = s;
        loop {
            if u == t {
                if should_stop() {
                    return (total, paths, true);
                }
                // Augment along the path, then roll the path back to the
                // tail of the first edge that saturated and continue the
                // search from there.
                let mut bottleneck = INF;
                for &ei in &scratch.path {
                    bottleneck = bottleneck.min(self.edges[ei as usize].cap);
                }
                total += bottleneck;
                paths += 1;
                let mut first_saturated = scratch.path.len() - 1;
                for &ei in &scratch.path {
                    self.edges[ei as usize].cap -= bottleneck;
                    self.edges[(ei ^ 1) as usize].cap += bottleneck;
                }
                for (i, &ei) in scratch.path.iter().enumerate() {
                    if self.edges[ei as usize].cap == 0 {
                        first_saturated = i;
                        break;
                    }
                }
                u = self.tail(scratch.path[first_saturated]);
                scratch.path.truncate(first_saturated);
                continue;
            }
            // Advance the current arc of `u` to the next admissible edge.
            let incident_start = self.csr_offsets[u as usize];
            let incident_end = self.csr_offsets[u as usize + 1];
            let mut advanced = false;
            while scratch.iter[u as usize] < incident_end - incident_start {
                let ei = self.csr_edges[(incident_start + scratch.iter[u as usize]) as usize];
                let e = &self.edges[ei as usize];
                if e.cap > 0 && scratch.level[e.to as usize] == scratch.level[u as usize] + 1 {
                    scratch.path.push(ei);
                    u = e.to;
                    advanced = true;
                    break;
                }
                scratch.iter[u as usize] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: remove `u` from the level graph and backtrack.
            scratch.level[u as usize] = UNREACHED;
            match scratch.path.pop() {
                Some(ei) => {
                    u = self.tail(ei);
                    // The popped edge is `u`'s current arc; move past it.
                    scratch.iter[u as usize] += 1;
                }
                None => break, // the source itself is exhausted
            }
        }
        (total, paths, false)
    }

    /// Computes the maximum s–t flow with the Edmonds–Karp algorithm
    /// (BFS augmenting paths). Kept as an independent implementation used to
    /// cross-check Dinic in tests and benchmarks.
    pub fn max_flow_edmonds_karp(&mut self, s: NodeId, t: NodeId) -> u64 {
        self.ensure_csr();
        self.reset_flow();
        if s == t {
            return 0;
        }
        let n = self.num_nodes;
        let mut total = 0u64;
        loop {
            let mut parent_edge: Vec<Option<u32>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[s.index()] = true;
            let mut queue = VecDeque::new();
            queue.push_back(s.0);
            'bfs: while let Some(u) = queue.pop_front() {
                for &ei in self.incident(u) {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && !visited[e.to as usize] {
                        visited[e.to as usize] = true;
                        parent_edge[e.to as usize] = Some(ei);
                        if e.to == t.0 {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !visited[t.index()] {
                break;
            }
            // Bottleneck along the found path.
            let mut bottleneck = INF;
            let mut v = t.0;
            while v != s.0 {
                let ei = parent_edge[v as usize].unwrap();
                bottleneck = bottleneck.min(self.edges[ei as usize].cap);
                v = self.edges[(ei ^ 1) as usize].to;
            }
            // Augment.
            let mut v = t.0;
            while v != s.0 {
                let ei = parent_edge[v as usize].unwrap();
                self.edges[ei as usize].cap -= bottleneck;
                self.edges[(ei ^ 1) as usize].cap += bottleneck;
                v = self.edges[(ei ^ 1) as usize].to;
            }
            total += bottleneck;
        }
        total
    }

    /// Nodes reachable from `s` in the residual network (valid after a
    /// max-flow run); this is the source side of a minimum cut.
    pub fn residual_reachable(&self, s: NodeId) -> Vec<bool> {
        let n = self.num_nodes;
        let mut visited = vec![false; n];
        visited[s.index()] = true;
        let mut queue = VecDeque::new();
        queue.push_back(s.0);
        if self.csr_valid {
            while let Some(u) = queue.pop_front() {
                for &ei in self.incident(u) {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && !visited[e.to as usize] {
                        visited[e.to as usize] = true;
                        queue.push_back(e.to);
                    }
                }
            }
        } else {
            // No CSR yet (no max-flow run): scan the edge list per BFS level.
            while let Some(u) = queue.pop_front() {
                for ei in 0..self.edges.len() as u32 {
                    let e = &self.edges[ei as usize];
                    if self.tail(ei) == u && e.cap > 0 && !visited[e.to as usize] {
                        visited[e.to as usize] = true;
                        queue.push_back(e.to);
                    }
                }
            }
        }
        visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1)
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 3);
        g.add_edge(s, b, 2);
        g.add_edge(a, t, 2);
        g.add_edge(b, t, 3);
        g.add_edge(a, b, 1);
        (g, s, t)
    }

    #[test]
    fn dinic_computes_max_flow_on_diamond() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
    }

    #[test]
    fn edmonds_karp_agrees_with_dinic() {
        let (mut g, s, t) = diamond();
        let d = g.max_flow_dinic(s, t);
        let ek = g.max_flow_edmonds_karp(s, t);
        assert_eq!(d, ek);
    }

    #[test]
    fn single_edge_network() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 7);
        assert_eq!(g.max_flow_dinic(s, t), 7);
    }

    #[test]
    fn disconnected_source_and_sink_have_zero_flow() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let _ = g.add_node();
        assert_eq!(g.max_flow_dinic(s, t), 0);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 0);
    }

    #[test]
    fn infinite_capacity_edges_are_never_bottlenecks() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let m = g.add_node();
        let t = g.add_node();
        g.add_edge(s, m, INF);
        g.add_edge(m, t, 4);
        assert_eq!(g.max_flow_dinic(s, t), 4);
    }

    #[test]
    fn parallel_edges_sum() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_edge(s, t, 2);
        g.add_edge(s, t, 3);
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 5);
    }

    #[test]
    fn edge_metadata_round_trips() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let e = g.add_edge(s, t, 9);
        assert_eq!(g.edge(e), (s, t, 9));
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        g.max_flow_dinic(s, t);
        assert_eq!(g.edge_flow(e), 9);
    }

    #[test]
    fn residual_reachability_identifies_cut_side() {
        // s -> a (1) -> t (10): the cut is the s->a edge, so only s is
        // reachable in the residual graph.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 1);
        g.add_edge(a, t, 10);
        g.max_flow_dinic(s, t);
        let reach = g.residual_reachable(s);
        assert!(reach[s.index()]);
        assert!(!reach[a.index()]);
        assert!(!reach[t.index()]);
    }

    #[test]
    fn residual_reachability_works_before_any_flow_run() {
        // Without a max-flow call there is no CSR; the fallback path must
        // still report plain reachability.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(s, a, 1);
        let reach = g.residual_reachable(s);
        assert!(reach[s.index()] && reach[a.index()] && !reach[b.index()]);
    }

    #[test]
    fn classic_cut_example() {
        // CLRS figure 26.6: maximum flow value 23.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let v1 = g.add_node();
        let v2 = g.add_node();
        let v3 = g.add_node();
        let v4 = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(g.max_flow_dinic(s, t), 23);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 23);
    }

    #[test]
    fn rerunning_max_flow_is_deterministic() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_dinic(s, t), 5);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 5);
        assert_eq!(g.max_flow_dinic(s, t), 5);
    }

    #[test]
    fn mutation_after_a_run_invalidates_the_csr() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
        // Widen the a -> t edge; the rebuilt CSR must see the new edge too.
        let a = NodeId(1);
        g.add_edge(a, t, 10);
        assert_eq!(g.max_flow_dinic(s, t), 5); // still limited by s-edges
        g.add_edge(s, a, 100);
        // a -> t now carries 12, a -> b -> t carries 1, s -> b -> t carries 2.
        assert_eq!(g.max_flow_dinic(s, t), 15);
        assert_eq!(g.max_flow_edmonds_karp(s, t), 15);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        g.add_edge(s, s, 10);
        assert_eq!(g.max_flow_dinic(s, s), 0);
    }

    #[test]
    fn flow_conservation_on_reported_edge_flows() {
        let (mut g, s, t) = diamond();
        let total = g.max_flow_dinic(s, t);
        // Flow out of s equals total.
        let mut out_of_s = 0;
        for i in 0..g.num_edges() {
            let id = EdgeId(i as u32);
            let (from, _, _) = g.edge(id);
            if from == s {
                out_of_s += g.edge_flow(id);
            }
        }
        assert_eq!(out_of_s, total);
    }

    #[test]
    fn reduce_capacity_repair_matches_from_scratch() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
        // Shrink s -> a from 3 to 1: the repaired + resumed flow must equal
        // a from-scratch run on the reduced network.
        let out = g.reduce_capacity_repair(EdgeId(0), 1, s, t);
        let (added, _) = g.max_flow_dinic_resume(s, t);
        let warm = 5 - out.drained + added;
        assert_eq!(g.max_flow_dinic(s, t), warm);
        assert_eq!(warm, 3);
    }

    #[test]
    fn zeroing_an_edge_drains_its_flow() {
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 2);
        let e = g.add_edge(a, t, 2);
        assert_eq!(g.max_flow_dinic(s, t), 2);
        // The only route dies entirely: all 2 units drain back.
        let out = g.reduce_capacity_repair(e, 0, s, t);
        assert_eq!(out.drained, 2);
        let (added, _) = g.max_flow_dinic_resume(s, t);
        assert_eq!(added, 0);
        assert_eq!(g.max_flow_dinic(s, t), 0);
    }

    #[test]
    fn repair_reroutes_before_draining() {
        // Two disjoint a -> t routes; shrinking one reroutes through the
        // other without losing flow value.
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a, 2);
        let e1 = g.add_edge(a, t, 2);
        g.add_edge(a, t, 2);
        assert_eq!(g.max_flow_dinic(s, t), 2);
        let flow_on_e1 = g.edge_flow(e1);
        let out = g.reduce_capacity_repair(e1, 0, s, t);
        // Whatever was on e1 fits on the parallel edge: nothing drained.
        assert_eq!(out.drained, 0);
        let (added, _) = g.max_flow_dinic_resume(s, t);
        assert_eq!(added, 0);
        if flow_on_e1 > 0 {
            assert!(out.paths > 0);
        }
    }

    #[test]
    fn raise_capacity_reaugments_incrementally() {
        let (mut g, s, t) = diamond();
        assert_eq!(g.max_flow_dinic(s, t), 5);
        let mut value = 5;
        let out = g.reduce_capacity_repair(EdgeId(0), 0, s, t); // s -> a
        value -= out.drained;
        let (added, _) = g.max_flow_dinic_resume(s, t);
        value += added;
        assert_eq!(value, 2); // only s -> b (2) remains
                              // Restore and re-augment back to the original maximum.
        g.raise_capacity(EdgeId(0), 3);
        let (added, _) = g.max_flow_dinic_resume(s, t);
        value += added;
        assert_eq!(value, 5);
        assert_eq!(g.max_flow_dinic(s, t), 5);
    }

    #[test]
    fn repeated_repairs_track_from_scratch() {
        // CLRS network: zero edges one at a time, checking the repaired
        // value against an independent from-scratch run after every step.
        let build = || {
            let mut g = FlowNetwork::new();
            let s = g.add_node();
            let v1 = g.add_node();
            let v2 = g.add_node();
            let v3 = g.add_node();
            let v4 = g.add_node();
            let t = g.add_node();
            g.add_edge(s, v1, 16);
            g.add_edge(s, v2, 13);
            g.add_edge(v1, v2, 10);
            g.add_edge(v2, v1, 4);
            g.add_edge(v1, v3, 12);
            g.add_edge(v3, v2, 9);
            g.add_edge(v2, v4, 14);
            g.add_edge(v4, v3, 7);
            g.add_edge(v3, t, 20);
            g.add_edge(v4, t, 4);
            (g, s, t)
        };
        let (mut warm, s, t) = build();
        let mut value = warm.max_flow_dinic(s, t);
        assert_eq!(value, 23);
        for kill in [4u32, 9, 1] {
            let out = warm.reduce_capacity_repair(EdgeId(kill), 0, s, t);
            value -= out.drained;
            let (added, _) = warm.max_flow_dinic_resume(s, t);
            value += added;
            let (mut cold, cs, ct) = build();
            for earlier in [4u32, 9, 1] {
                cold.reduce_capacity_repair(EdgeId(earlier), 0, cs, ct);
                if earlier == kill {
                    break;
                }
            }
            assert_eq!(value, cold.max_flow_dinic(cs, ct));
        }
    }

    #[test]
    fn dinic_handles_layered_ladders() {
        // A ladder with cross edges stresses the iterative blocking-flow
        // bookkeeping (multiple augmenting paths per phase).
        let mut g = FlowNetwork::new();
        let s = g.add_node();
        let t = g.add_node();
        let k = 12;
        let top = g.add_nodes(k);
        let bottom = g.add_nodes(k);
        for i in 0..k {
            g.add_edge(s, top[i], 2);
            g.add_edge(top[i], bottom[i], 1);
            g.add_edge(bottom[i], t, 2);
            if i > 0 {
                g.add_edge(top[i - 1], bottom[i], 1);
                g.add_edge(bottom[i - 1], top[i], 1);
            }
        }
        let d = g.max_flow_dinic(s, t);
        let ek = g.max_flow_edmonds_karp(s, t);
        assert_eq!(d, ek);
    }
}
