//! Minimum vertex cuts via node splitting.
//!
//! The resilience-to-flow reductions in the paper place *tuples* on the
//! nodes of a network: an endogenous tuple may be deleted at cost 1, an
//! exogenous tuple may never be deleted, and witnesses become s–t paths.
//! A minimum contingency set is then a minimum *vertex* cut. The classic
//! reduction to edge cuts splits every vertex `v` into `v_in -> v_out` with
//! the vertex capacity on that internal edge; all original edges get infinite
//! capacity.

use crate::mincut::MinCut;
use crate::network::{EdgeId, FlowInterrupted, FlowNetwork, NodeId, RepairOutcome, INF};

/// A network whose *vertices* carry capacities.
#[derive(Clone, Debug, Default)]
pub struct VertexCutNetwork {
    /// Per vertex: its capacity (use [`INF`] for uncuttable vertices).
    capacities: Vec<u64>,
    /// Directed edges between vertices.
    edges: Vec<(u32, u32)>,
    /// Reusable node-split flow network (rebuilt per cut computation, never
    /// reallocated).
    split: FlowNetwork,
    /// Resident warm flow over `split` (see [`VertexCutNetwork::warm_build`]);
    /// `None` when no warm state is held.
    warm: Option<WarmFlow>,
}

/// Warm (decremental) flow state resident in the split network.
#[derive(Clone, Copy, Debug)]
struct WarmFlow {
    source: usize,
    target: usize,
    s: NodeId,
    t: NodeId,
    /// Current (maximum, after the last re-augment) s–t flow value.
    value: u64,
}

/// Result of a minimum vertex cut computation.
#[derive(Clone, Debug)]
pub struct VertexCut {
    /// Total capacity of the cut (equals the max flow).
    pub value: u64,
    /// The vertices whose internal edge is cut, in ascending order.
    pub cut_vertices: Vec<usize>,
}

impl VertexCutNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with the given capacity, returning its index.
    pub fn add_vertex(&mut self, capacity: u64) -> usize {
        self.capacities.push(capacity);
        self.capacities.len() - 1
    }

    /// Empties the network while keeping its allocations, so repeated
    /// constructions (the engine's session re-solves) reuse the buffers.
    /// Any resident warm flow state is dropped.
    pub fn clear(&mut self) {
        self.capacities.clear();
        self.edges.clear();
        self.warm = None;
    }

    /// Adds a directed edge between two vertices.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.edges.push((from as u32, to as u32));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.capacities.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of edge `e` (in insertion order).
    pub fn edge(&self, e: usize) -> (usize, usize) {
        let (from, to) = self.edges[e];
        (from as usize, to as usize)
    }

    /// Overwrites vertex `v`'s *built* capacity. Only affects networks built
    /// after this call (cold solves / the next [`VertexCutNetwork::warm_build`]);
    /// use [`VertexCutNetwork::warm_set_capacity`] to update a resident flow.
    pub fn set_capacity(&mut self, v: usize, cap: u64) {
        self.capacities[v] = cap;
    }

    /// Computes a minimum vertex cut separating `source` from `target`.
    ///
    /// The source and target vertices themselves are treated as uncuttable
    /// (their capacity is ignored), matching the paper's constructions where
    /// s and t are artificial endpoints.
    pub fn min_vertex_cut(&mut self, source: usize, target: usize) -> VertexCut {
        match self.min_vertex_cut_interruptible(source, target, &mut || false) {
            Ok(cut) => cut,
            Err(_) => unreachable!("the never-stop callback cannot interrupt the run"),
        }
    }

    /// [`VertexCutNetwork::min_vertex_cut`] with a cooperative stop
    /// callback (see [`FlowNetwork::max_flow_dinic_interruptible`]).
    pub fn min_vertex_cut_interruptible(
        &mut self,
        source: usize,
        target: usize,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<VertexCut, FlowInterrupted> {
        let (s, t) = self.split_network(source, target);
        let cut = MinCut::compute_interruptible(&mut self.split, s, t, should_stop)?;
        let n = self.num_vertices();
        let mut cut_vertices: Vec<usize> = cut
            .cut_edges
            .iter()
            .filter_map(|e| (e.index() < n).then_some(e.index()))
            .collect();
        cut_vertices.sort_unstable();
        Ok(VertexCut {
            value: cut.value,
            cut_vertices,
        })
    }

    /// Computes only the value of a minimum vertex cut, skipping the
    /// cut-vertex extraction (see [`MinCut::compute_value`]).
    pub fn min_vertex_cut_value(&mut self, source: usize, target: usize) -> u64 {
        let (s, t) = self.split_network(source, target);
        MinCut::compute_value(&mut self.split, s, t)
    }

    /// [`VertexCutNetwork::min_vertex_cut_value`] with a cooperative stop
    /// callback.
    pub fn min_vertex_cut_value_interruptible(
        &mut self,
        source: usize,
        target: usize,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<u64, FlowInterrupted> {
        let (s, t) = self.split_network(source, target);
        MinCut::compute_value_interruptible(&mut self.split, s, t, should_stop)
    }

    /// Builds the node-split network and runs a full max-flow once, keeping
    /// the flow (and its residual graph) **resident** for subsequent
    /// decremental updates: [`VertexCutNetwork::warm_set_capacity`] repairs
    /// the resident flow in place when a vertex shrinks and
    /// [`VertexCutNetwork::warm_reaugment`] resumes Dinic from the repaired
    /// residual after restores — no from-scratch recomputation per step.
    /// Returns the maximum flow value (= the minimum vertex cut value).
    pub fn warm_build(&mut self, source: usize, target: usize) -> u64 {
        let (s, t) = self.split_network(source, target);
        let value = self.split.max_flow_dinic(s, t);
        self.warm = Some(WarmFlow {
            source,
            target,
            s,
            t,
            value,
        });
        value
    }

    /// Whether warm flow state is resident for this `source`/`target` pair.
    pub fn has_warm(&self, source: usize, target: usize) -> bool {
        self.warm
            .is_some_and(|w| w.source == source && w.target == target)
    }

    /// The resident warm flow value (the minimum cut value as of the last
    /// [`VertexCutNetwork::warm_build`] / [`VertexCutNetwork::warm_reaugment`],
    /// minus any drain from not-yet-re-augmented repairs).
    pub fn warm_value(&self) -> u64 {
        self.warm.expect("no warm flow state resident").value
    }

    /// Decrementally sets vertex `v`'s capacity on the **resident** split
    /// network. A shrink repairs the resident flow through the residual
    /// graph (see [`FlowNetwork::reduce_capacity_repair`]); a raise relaxes
    /// the internal arc in place. Either way the caller must
    /// [`VertexCutNetwork::warm_reaugment`] before reading the value as a
    /// minimum again. Exploits the construction invariant that vertex `v`'s
    /// internal edge has `EdgeId` exactly `v`. Returns the repair outcome
    /// (zero for raises and for shrinks the flow already fit).
    pub fn warm_set_capacity(&mut self, v: usize, cap: u64) -> RepairOutcome {
        let warm = self.warm.as_mut().expect("no warm flow state resident");
        let id = EdgeId(v as u32);
        let current = self.split.edge(id).2;
        if cap < current {
            let out = self.split.reduce_capacity_repair(id, cap, warm.s, warm.t);
            warm.value -= out.drained;
            out
        } else {
            self.split.raise_capacity(id, cap);
            RepairOutcome::default()
        }
    }

    /// Resumes Dinic from the repaired residual, restoring the resident flow
    /// to a maximum. Returns `(new_value, augmenting_paths)`.
    pub fn warm_reaugment(&mut self) -> (u64, u64) {
        let warm = self.warm.as_mut().expect("no warm flow state resident");
        let (added, paths) = self.split.max_flow_dinic_resume(warm.s, warm.t);
        warm.value += added;
        (warm.value, paths)
    }

    /// Extracts the cut vertices of the resident warm flow (which must be
    /// maximum, i.e. re-augmented) into `out`, ascending: vertices whose
    /// internal arc crosses the residual source partition **and still has
    /// positive capacity** — arcs zeroed by deletions separate for free and
    /// are not part of the reported contingency.
    pub fn warm_cut_vertices(&self, out: &mut Vec<usize>) {
        let warm = self.warm.expect("no warm flow state resident");
        let reach = self.split.residual_reachable(warm.s);
        out.clear();
        for v in 0..self.num_vertices() {
            if v == warm.source || v == warm.target {
                continue;
            }
            if reach[2 * v] && !reach[2 * v + 1] && self.split.edge(EdgeId(v as u32)).2 > 0 {
                out.push(v);
            }
        }
    }

    /// Builds the node-split flow network into the reusable `split` buffer:
    /// `v_in = 2v`, `v_out = 2v + 1`, with the internal edge of vertex `v`
    /// added v-th so its `EdgeId` is exactly `v` — no explicit map needed.
    fn split_network(&mut self, source: usize, target: usize) -> (NodeId, NodeId) {
        let n = self.num_vertices();
        // Rebuilding the split network invalidates any resident warm flow
        // (warm_build re-establishes it after the rebuild).
        self.warm = None;
        self.split.clear();
        for _ in 0..2 * n {
            self.split.add_node();
        }
        for v in 0..n {
            let cap = if v == source || v == target {
                INF
            } else {
                self.capacities[v]
            };
            self.split
                .add_edge(NodeId(2 * v as u32), NodeId(2 * v as u32 + 1), cap);
        }
        for &(from, to) in &self.edges {
            self.split
                .add_edge(NodeId(2 * from + 1), NodeId(2 * to), INF);
        }
        (NodeId(2 * source as u32), NodeId(2 * target as u32 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_cuts_cheapest_vertex() {
        // s - a(5) - b(1) - c(7) - t : the cut is {b}.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let a = g.add_vertex(5);
        let b = g.add_vertex(1);
        let c = g.add_vertex(7);
        let t = g.add_vertex(INF);
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![b]);
    }

    #[test]
    fn parallel_paths_need_one_vertex_each() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let mut mids = Vec::new();
        for _ in 0..4 {
            let m = g.add_vertex(1);
            g.add_edge(s, m);
            g.add_edge(m, t);
            mids.push(m);
        }
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 4);
        assert_eq!(cut.cut_vertices, mids);
    }

    #[test]
    fn shared_vertex_is_cut_once() {
        // Two paths share the middle vertex m: cutting m (capacity 1) breaks
        // both, so the cut value is 1 even though there are 2 paths.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let a = g.add_vertex(1);
        let b = g.add_vertex(1);
        let m = g.add_vertex(1);
        let c = g.add_vertex(1);
        let d = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, m);
        g.add_edge(b, m);
        g.add_edge(m, c);
        g.add_edge(m, d);
        g.add_edge(c, t);
        g.add_edge(d, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![m]);
    }

    #[test]
    fn uncuttable_vertices_are_routed_around() {
        // s -> x(INF) -> t and s -> y(1) -> t through x? No: make a single
        // path with an exogenous (INF) vertex followed by an endogenous one;
        // the cut must pick the endogenous vertex.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let exo = g.add_vertex(INF);
        let endo = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, exo);
        g.add_edge(exo, endo);
        g.add_edge(endo, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![endo]);
    }

    #[test]
    fn disconnected_graph_needs_no_cut() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let a = g.add_vertex(1);
        g.add_edge(s, a);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 0);
        assert!(cut.cut_vertices.is_empty());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn value_only_cut_matches_full_extraction() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        for _ in 0..3 {
            let m = g.add_vertex(1);
            g.add_edge(s, m);
            g.add_edge(m, t);
        }
        assert_eq!(g.min_vertex_cut_value(s, t), g.min_vertex_cut(s, t).value);
    }

    #[test]
    fn warm_flow_tracks_deletions_and_restores() {
        // Four parallel unit vertices; delete two, restore one, checking the
        // warm value and cut against a cold recomputation at every step.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let mut mids = Vec::new();
        for _ in 0..4 {
            let m = g.add_vertex(1);
            g.add_edge(s, m);
            g.add_edge(m, t);
            mids.push(m);
        }
        assert_eq!(g.warm_build(s, t), 4);
        assert!(g.has_warm(s, t));

        g.warm_set_capacity(mids[1], 0);
        let (value, _) = g.warm_reaugment();
        assert_eq!(value, 3);
        let mut cut = Vec::new();
        g.warm_cut_vertices(&mut cut);
        assert_eq!(cut, vec![mids[0], mids[2], mids[3]]);

        g.warm_set_capacity(mids[3], 0);
        let (value, _) = g.warm_reaugment();
        assert_eq!(value, 2);
        g.warm_cut_vertices(&mut cut);
        assert_eq!(cut, vec![mids[0], mids[2]]);

        g.warm_set_capacity(mids[1], 1);
        let (value, _) = g.warm_reaugment();
        assert_eq!(value, 3);
        g.warm_cut_vertices(&mut cut);
        assert_eq!(cut, vec![mids[0], mids[1], mids[2]]);
    }

    #[test]
    fn warm_cut_excludes_zeroed_shared_vertex() {
        // s -> a -> m -> t, s -> b -> m -> t: cutting m (capacity 1) is
        // optimal. Deleting m makes the instance already-false (value 0, no
        // cut vertices) — the zero-capacity arc must not be reported.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let a = g.add_vertex(1);
        let b = g.add_vertex(1);
        let m = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, m);
        g.add_edge(b, m);
        g.add_edge(m, t);
        assert_eq!(g.warm_build(s, t), 1);
        g.warm_set_capacity(m, 0);
        let (value, _) = g.warm_reaugment();
        assert_eq!(value, 0);
        let mut cut = Vec::new();
        g.warm_cut_vertices(&mut cut);
        assert!(cut.is_empty());
    }

    #[test]
    fn cold_runs_invalidate_warm_state() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let m = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, m);
        g.add_edge(m, t);
        assert_eq!(g.warm_build(s, t), 1);
        assert!(g.has_warm(s, t));
        let _ = g.min_vertex_cut(s, t);
        assert!(!g.has_warm(s, t));
        g.warm_build(s, t);
        g.clear();
        assert!(!g.has_warm(s, t));
    }

    #[test]
    fn weighted_vertices_choose_cheaper_side() {
        // Path s - a(3) - t and s - b(2) - t and s - c(4) - t: all three must
        // be cut; value is 9. Then make one of them INF and ensure the cut
        // value becomes INF-free by routing... instead verify total.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let a = g.add_vertex(3);
        let b = g.add_vertex(2);
        let c = g.add_vertex(4);
        for &v in &[a, b, c] {
            g.add_edge(s, v);
            g.add_edge(v, t);
        }
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 9);
        assert_eq!(cut.cut_vertices.len(), 3);
    }
}
