//! Minimum vertex cuts via node splitting.
//!
//! The resilience-to-flow reductions in the paper place *tuples* on the
//! nodes of a network: an endogenous tuple may be deleted at cost 1, an
//! exogenous tuple may never be deleted, and witnesses become s–t paths.
//! A minimum contingency set is then a minimum *vertex* cut. The classic
//! reduction to edge cuts splits every vertex `v` into `v_in -> v_out` with
//! the vertex capacity on that internal edge; all original edges get infinite
//! capacity.

use crate::mincut::MinCut;
use crate::network::{FlowInterrupted, FlowNetwork, NodeId, INF};

/// A network whose *vertices* carry capacities.
#[derive(Clone, Debug, Default)]
pub struct VertexCutNetwork {
    /// Per vertex: its capacity (use [`INF`] for uncuttable vertices).
    capacities: Vec<u64>,
    /// Directed edges between vertices.
    edges: Vec<(u32, u32)>,
    /// Reusable node-split flow network (rebuilt per cut computation, never
    /// reallocated).
    split: FlowNetwork,
}

/// Result of a minimum vertex cut computation.
#[derive(Clone, Debug)]
pub struct VertexCut {
    /// Total capacity of the cut (equals the max flow).
    pub value: u64,
    /// The vertices whose internal edge is cut, in ascending order.
    pub cut_vertices: Vec<usize>,
}

impl VertexCutNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with the given capacity, returning its index.
    pub fn add_vertex(&mut self, capacity: u64) -> usize {
        self.capacities.push(capacity);
        self.capacities.len() - 1
    }

    /// Empties the network while keeping its allocations, so repeated
    /// constructions (the engine's session re-solves) reuse the buffers.
    pub fn clear(&mut self) {
        self.capacities.clear();
        self.edges.clear();
    }

    /// Adds a directed edge between two vertices.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.edges.push((from as u32, to as u32));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.capacities.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Computes a minimum vertex cut separating `source` from `target`.
    ///
    /// The source and target vertices themselves are treated as uncuttable
    /// (their capacity is ignored), matching the paper's constructions where
    /// s and t are artificial endpoints.
    pub fn min_vertex_cut(&mut self, source: usize, target: usize) -> VertexCut {
        match self.min_vertex_cut_interruptible(source, target, &mut || false) {
            Ok(cut) => cut,
            Err(_) => unreachable!("the never-stop callback cannot interrupt the run"),
        }
    }

    /// [`VertexCutNetwork::min_vertex_cut`] with a cooperative stop
    /// callback (see [`FlowNetwork::max_flow_dinic_interruptible`]).
    pub fn min_vertex_cut_interruptible(
        &mut self,
        source: usize,
        target: usize,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<VertexCut, FlowInterrupted> {
        let (s, t) = self.split_network(source, target);
        let cut = MinCut::compute_interruptible(&mut self.split, s, t, should_stop)?;
        let n = self.num_vertices();
        let mut cut_vertices: Vec<usize> = cut
            .cut_edges
            .iter()
            .filter_map(|e| (e.index() < n).then_some(e.index()))
            .collect();
        cut_vertices.sort_unstable();
        Ok(VertexCut {
            value: cut.value,
            cut_vertices,
        })
    }

    /// Computes only the value of a minimum vertex cut, skipping the
    /// cut-vertex extraction (see [`MinCut::compute_value`]).
    pub fn min_vertex_cut_value(&mut self, source: usize, target: usize) -> u64 {
        let (s, t) = self.split_network(source, target);
        MinCut::compute_value(&mut self.split, s, t)
    }

    /// [`VertexCutNetwork::min_vertex_cut_value`] with a cooperative stop
    /// callback.
    pub fn min_vertex_cut_value_interruptible(
        &mut self,
        source: usize,
        target: usize,
        should_stop: &mut dyn FnMut() -> bool,
    ) -> Result<u64, FlowInterrupted> {
        let (s, t) = self.split_network(source, target);
        MinCut::compute_value_interruptible(&mut self.split, s, t, should_stop)
    }

    /// Builds the node-split flow network into the reusable `split` buffer:
    /// `v_in = 2v`, `v_out = 2v + 1`, with the internal edge of vertex `v`
    /// added v-th so its `EdgeId` is exactly `v` — no explicit map needed.
    fn split_network(&mut self, source: usize, target: usize) -> (NodeId, NodeId) {
        let n = self.num_vertices();
        self.split.clear();
        for _ in 0..2 * n {
            self.split.add_node();
        }
        for v in 0..n {
            let cap = if v == source || v == target {
                INF
            } else {
                self.capacities[v]
            };
            self.split
                .add_edge(NodeId(2 * v as u32), NodeId(2 * v as u32 + 1), cap);
        }
        for &(from, to) in &self.edges {
            self.split
                .add_edge(NodeId(2 * from + 1), NodeId(2 * to), INF);
        }
        (NodeId(2 * source as u32), NodeId(2 * target as u32 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_cuts_cheapest_vertex() {
        // s - a(5) - b(1) - c(7) - t : the cut is {b}.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let a = g.add_vertex(5);
        let b = g.add_vertex(1);
        let c = g.add_vertex(7);
        let t = g.add_vertex(INF);
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![b]);
    }

    #[test]
    fn parallel_paths_need_one_vertex_each() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let mut mids = Vec::new();
        for _ in 0..4 {
            let m = g.add_vertex(1);
            g.add_edge(s, m);
            g.add_edge(m, t);
            mids.push(m);
        }
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 4);
        assert_eq!(cut.cut_vertices, mids);
    }

    #[test]
    fn shared_vertex_is_cut_once() {
        // Two paths share the middle vertex m: cutting m (capacity 1) breaks
        // both, so the cut value is 1 even though there are 2 paths.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let a = g.add_vertex(1);
        let b = g.add_vertex(1);
        let m = g.add_vertex(1);
        let c = g.add_vertex(1);
        let d = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, m);
        g.add_edge(b, m);
        g.add_edge(m, c);
        g.add_edge(m, d);
        g.add_edge(c, t);
        g.add_edge(d, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![m]);
    }

    #[test]
    fn uncuttable_vertices_are_routed_around() {
        // s -> x(INF) -> t and s -> y(1) -> t through x? No: make a single
        // path with an exogenous (INF) vertex followed by an endogenous one;
        // the cut must pick the endogenous vertex.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let exo = g.add_vertex(INF);
        let endo = g.add_vertex(1);
        let t = g.add_vertex(INF);
        g.add_edge(s, exo);
        g.add_edge(exo, endo);
        g.add_edge(endo, t);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_vertices, vec![endo]);
    }

    #[test]
    fn disconnected_graph_needs_no_cut() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let a = g.add_vertex(1);
        g.add_edge(s, a);
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 0);
        assert!(cut.cut_vertices.is_empty());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn value_only_cut_matches_full_extraction() {
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        for _ in 0..3 {
            let m = g.add_vertex(1);
            g.add_edge(s, m);
            g.add_edge(m, t);
        }
        assert_eq!(g.min_vertex_cut_value(s, t), g.min_vertex_cut(s, t).value);
    }

    #[test]
    fn weighted_vertices_choose_cheaper_side() {
        // Path s - a(3) - t and s - b(2) - t and s - c(4) - t: all three must
        // be cut; value is 9. Then make one of them INF and ensure the cut
        // value becomes INF-free by routing... instead verify total.
        let mut g = VertexCutNetwork::new();
        let s = g.add_vertex(INF);
        let t = g.add_vertex(INF);
        let a = g.add_vertex(3);
        let b = g.add_vertex(2);
        let c = g.add_vertex(4);
        for &v in &[a, b, c] {
            g.add_edge(s, v);
            g.add_edge(v, t);
        }
        let cut = g.min_vertex_cut(s, t);
        assert_eq!(cut.value, 9);
        assert_eq!(cut.cut_vertices.len(), 3);
    }
}
