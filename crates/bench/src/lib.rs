//! Shared helpers for the benchmark harness (experiments E1–E10 of
//! DESIGN.md).
//!
//! Each Criterion bench regenerates one of the paper's tables or figures on
//! synthetic workloads; the helpers here build the workload instances so the
//! benches and the `report` binary stay in sync.

use cq::Query;
use database::Database;
use resilience_core::engine::{CompiledQuery, SolveOptions, SolveReport, SolveScratch};
use workloads::Workload;

/// One-call solve over the mutable store (fresh scratch per call) — the
/// benches' per-instance baseline, panicking on engine errors the way the
/// old one-call facade did.
pub fn solve_once(compiled: &CompiledQuery, db: &Database) -> SolveReport {
    let mut scratch = SolveScratch::new();
    compiled
        .solve_store(db, &SolveOptions::new(), &mut scratch)
        .expect("bench solve failed")
}

/// [`solve_once`] reduced to the numeric resilience.
pub fn resilience_once(compiled: &CompiledQuery, db: &Database) -> Option<usize> {
    solve_once(compiled, db).resilience.as_finite()
}

/// Builds the standard randomized instance used across experiments: a random
/// `R`-graph over `nodes` values with the given density, saturated unary
/// relations, and a deterministic sprinkling of tuples for every other
/// binary relation of the query.
pub fn standard_instance(q: &Query, seed: u64, nodes: u64, density: f64) -> Database {
    let mut workload = Workload::new(seed);
    let mut db = workload.random_graph_relation(q, "R", nodes, density);
    workload.saturate_unary_relations(q, &mut db, nodes);
    for rel in q.schema().relation_ids() {
        let name = q.schema().name(rel).to_string();
        if q.schema().arity(rel) == 2 && name != "R" {
            for a in 0..nodes {
                for b in 0..nodes {
                    if (a * 13 + b * 7 + seed).is_multiple_of(4) {
                        db.insert_named(&name, &[a, b]);
                    }
                }
            }
        }
    }
    db
}

/// The instance sizes (active-domain nodes) swept by the scaling benches.
pub const SWEEP_NODES: [u64; 3] = [6, 9, 12];

/// Density used by the scaling benches.
pub const SWEEP_DENSITY: f64 = 0.22;

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    #[test]
    fn standard_instance_is_reproducible() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let a = standard_instance(&q, 3, 8, 0.25);
        let b = standard_instance(&q, 3, 8, 0.25);
        assert_eq!(a.num_tuples(), b.num_tuples());
    }

    #[test]
    fn standard_instance_saturates_unary_relations() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let db = standard_instance(&q, 1, 7, 0.2);
        let a = db.schema().relation_id("A").unwrap();
        assert_eq!(db.tuples_of(a).len(), 7);
    }
}
