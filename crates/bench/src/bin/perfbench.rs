//! `perfbench` — merges two `CRITERION_JSON` capture files (benchmark JSONL
//! emitted by the criterion shim, see `vendor/README.md`) into a single
//! before/after baseline report such as the committed `BENCH_PR1.json`.
//!
//! Usage:
//!
//! ```text
//! CRITERION_JSON=before.jsonl cargo bench -p bench            # on the old tree
//! CRITERION_JSON=after.jsonl  cargo bench -p bench            # on the new tree
//! cargo run -p bench --bin perfbench -- \
//!     --before before.jsonl --after after.jsonl --out BENCH_PR1.json
//! ```
//!
//! Experiments present in only one capture are kept with a `null` partner so
//! later PRs can extend the suite without losing history.

use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

/// Pulls `"median_ns":<digits>` and `"bench":"<name>"` out of one shim JSONL
/// line without a JSON dependency (the shim's format is fixed).
fn parse_line(line: &str) -> Option<(String, u64)> {
    let name_start = line.find("\"bench\":\"")? + "\"bench\":\"".len();
    let name_end = name_start + line[name_start..].find('"')?;
    let median_start = line.find("\"median_ns\":")? + "\"median_ns\":".len();
    let median_end = median_start
        + line[median_start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(line.len() - median_start);
    let median = line[median_start..median_end].parse().ok()?;
    Some((line[name_start..name_end].to_string(), median))
}

fn load(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            // Later captures of the same benchmark overwrite earlier ones.
            Some((name, median)) => {
                out.insert(name, median);
            }
            None => return Err(format!("{path}: malformed line: {line}")),
        }
    }
    Ok(out)
}

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut before_path = None;
    let mut after_path = None;
    let mut out_path = None;
    let mut label = "BENCH".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--before" => before_path = it.next().cloned(),
            "--after" => after_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(before_path), Some(after_path), Some(out_path)) = (before_path, after_path, out_path)
    else {
        eprintln!(
            "usage: perfbench --before <jsonl> --after <jsonl> --out <json> [--label <name>]"
        );
        return ExitCode::FAILURE;
    };

    let before = match load(&before_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let after = match load(&after_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut names: Vec<&String> = before.keys().chain(after.keys()).collect();
    names.sort();
    names.dedup();

    let mut rows = Vec::new();
    let mut summary = String::new();
    for name in &names {
        let b = before.get(*name).copied();
        let a = after.get(*name).copied();
        let speedup = match (b, a) {
            (Some(b), Some(a)) if a > 0 => format!("{:.2}", b as f64 / a as f64),
            _ => "null".to_string(),
        };
        rows.push(format!(
            "    {{\"bench\": \"{name}\", \"before_median_ns\": {}, \"after_median_ns\": {}, \"speedup\": {speedup}}}",
            json_u64_opt(b),
            json_u64_opt(a),
        ));
        if let (Some(b), Some(a)) = (b, a) {
            summary.push_str(&format!(
                "{name:<50} {b:>14} -> {a:>12} ns  ({:.2}x)\n",
                b as f64 / a as f64
            ));
        }
    }
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"unit\": \"ns_per_iter_median\",\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // Write the report before touching stdout: a closed pipe downstream
    // (e.g. `perfbench | head`) must not lose the output file.
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!("wrote {out_path}\n"));
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}
