//! `perfbench` — performance baseline tooling. Two modes:
//!
//! **Merge mode** (default) merges two `CRITERION_JSON` capture files
//! (benchmark JSONL emitted by the criterion shim, see `vendor/README.md`)
//! into a single before/after baseline report such as the committed
//! `BENCH_PR1.json`:
//!
//! ```text
//! CRITERION_JSON=before.jsonl cargo bench -p bench            # on the old tree
//! CRITERION_JSON=after.jsonl  cargo bench -p bench            # on the new tree
//! cargo run -p bench --bin perfbench -- \
//!     --before before.jsonl --after after.jsonl --out BENCH_PR1.json
//! ```
//!
//! Experiments present in only one capture are kept with a `null` partner so
//! later PRs can extend the suite without losing history.
//!
//! **Batch mode** times the compiled, batched engine against a naive
//! per-instance loop (re-compile + solve over the mutable store for every
//! instance) on the e2/e5-style workloads, asserts the two paths produce
//! identical results on every instance, and writes a throughput report such
//! as the committed `BENCH_PR2.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- batch \
//!     --instances 100 --out BENCH_PR2.json
//! ```
//!
//! **Session mode** runs a k-deletion sweep on the e2/e5 workloads through
//! a deletion-aware [`resilience_core::engine::SolveSession`] (incremental
//! live-counter updates, no re-enumeration) against the from-scratch
//! baseline (`Database::without` copy + freeze + full re-solve per step),
//! asserts identical per-step resilience values and witness counts, and
//! writes a report such as the committed `BENCH_PR3.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- session \
//!     --instances 25 --deletions 8 --out BENCH_PR3.json
//! ```
//!
//! `--nodes V` overrides every session workload's graph size (the sweep
//! defaults to per-workload sizes chosen for interactive what-if scale).
//!
//! **Serve mode** measures `resd`, the resilience service daemon, under
//! concurrent load: for each worker-pool size it starts an in-process
//! daemon, drives N client threads issuing `solve` requests over the
//! newline-delimited JSON protocol, verifies every response byte-identical
//! to the locally rendered report, and writes requests/sec scaling such as
//! the committed `BENCH_PR5.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- serve \
//!     --workers-list 1,2,4 --clients 8 --requests 50 --out BENCH_PR5.json
//! ```
//!
//! `--smoke` shrinks the sweep for CI (still asserting identical results).
//! `--pipeline D` switches the timed clients to pipelined I/O: `D` frames
//! per write, responses read back in arrival order (byte-identity still
//! asserted per response).
//!
//! `--idle-conns N` switches serve mode to an idle-overhead comparison:
//! each configuration runs with 0 and with `N` held-open idle keep-alive
//! connections, best-of-`--reps`, and the difference measures what an idle
//! horde costs the event loop. `--max-idle-overhead-pct P` turns the worst
//! loss into a pass/fail gate, as the committed `BENCH_PR9.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- serve \
//!     --idle-conns 512 --clients 8 --requests 50 --reps 3 \
//!     --max-idle-overhead-pct 10 --out BENCH_PR9.json
//! ```
//!
//! `--deadlines` switches serve mode to an overhead comparison: every
//! request is issued twice per configuration — without options and with a
//! generous `timeout_ms` that never fires — and the best-of-`--reps`
//! difference isolates the cancellation-poll cost (responses must stay
//! byte-identical in both runs). `--max-overhead-pct P` turns the worst
//! measured overhead into a pass/fail gate, as the committed
//! `BENCH_PR6.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- serve --deadlines \
//!     --workers-list 1,2 --clients 8 --requests 50 --reps 3 \
//!     --max-overhead-pct 2 --out BENCH_PR6.json
//! ```
//!
//! **Cache mode** measures the compiled-plan cache on the full named-query
//! catalogue: every catalogue query is expanded into `--variants` seeded
//! random renamings/atom permutations (same shape, different text), compiled
//! cold (direct `Engine::compile` per variant) and through a shared
//! [`resilience_core::plancache::PlanCache`] (first variant per shape
//! compiles, the rest hit). Before any timing is reported, a differential
//! gate solves a random instance of every shape through the cached plan and
//! asserts (a) byte-identical report JSON to the representative's direct
//! compile, (b) semantically identical results (resilience, witnesses,
//! method, contingency size) to each variant's *own* direct compile, and
//! (c) that the reported contingency really falsifies the query. Writes a
//! report such as the committed `BENCH_PR7.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- cache \
//!     --variants 10 --min-speedup 5 --min-hit-rate 0.9 --out BENCH_PR7.json
//! ```
//!
//! `--smoke` drops the timing repetitions to one for CI; the differential
//! gate always covers the full catalogue.
//!
//! Session mode emits three rows per workload: `maintain` (witness-set
//! upkeep), `resolve` (scratch re-solve vs warm session re-solve) and
//! `resolve_warm` (cold session re-solve vs warm session re-solve — the
//! isolated contribution of the solver warm starts). **Resolve-warm mode**
//! (`perfbench resolve-warm ...`, same flags as session mode) runs only the
//! cold-vs-warm comparison:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- resolve-warm \
//!     --instances 25 --deletions 8 --out WARM.json
//! ```
//!
//! **Shard mode** measures the streaming shard pipeline on an instance
//! several times larger than the per-shard memory cap: the whole-instance
//! solve is the fits-in-RAM reference (and the differential gate), the
//! streaming path plans/builds/solves shards without ever holding the whole
//! instance, and per-tuple throughput plus the merged answer are gated, as
//! the committed `BENCH_PR10.json`:
//!
//! ```text
//! cargo run --release -p bench --bin perfbench -- shard \
//!     --tuples 24000 --shards 8 --out BENCH_PR10.json
//! ```
//!
//! `--smoke` shrinks the instance and repetitions for CI; the shard-parallel
//! speedup gate is skipped (with a JSON warning) on single-core machines.

// The legacy loop is exactly what batch mode benchmarks against.
#![allow(deprecated)]

use cq::parse_query;
use database::{Database, FrozenDb, TupleId, WitnessSet};
use resilience_core::engine::{Engine, SolveOptions, SolveScratch};
use resilience_core::plancache::PlanCache;
use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::process::ExitCode;
use std::time::Instant;
use workloads::Workload;

/// Pulls `"median_ns":<digits>` and `"bench":"<name>"` out of one shim JSONL
/// line without a JSON dependency (the shim's format is fixed).
fn parse_line(line: &str) -> Option<(String, u64)> {
    let name_start = line.find("\"bench\":\"")? + "\"bench\":\"".len();
    let name_end = name_start + line[name_start..].find('"')?;
    let median_start = line.find("\"median_ns\":")? + "\"median_ns\":".len();
    let median_end = median_start
        + line[median_start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(line.len() - median_start);
    let median = line[median_start..median_end].parse().ok()?;
    Some((line[name_start..name_end].to_string(), median))
}

fn load(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            // Later captures of the same benchmark overwrite earlier ones.
            Some((name, median)) => {
                out.insert(name, median);
            }
            None => return Err(format!("{path}: malformed line: {line}")),
        }
    }
    Ok(out)
}

fn json_u64_opt(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

/// One batch-vs-loop workload: a query plus a per-seed instance generator.
#[derive(Clone, Copy)]
struct BatchWorkload {
    name: &'static str,
    query_text: &'static str,
    nodes: u64,
    density: f64,
    saturate_unary: bool,
}

/// The e2 (basic hard chain) and e5 (unary chain expansion) workloads the
/// committed baselines track.
const BATCH_WORKLOADS: [BatchWorkload; 2] = [
    BatchWorkload {
        name: "e2/qchain_batch",
        query_text: "R(x,y), R(y,z)",
        nodes: 9,
        density: 0.2,
        saturate_unary: false,
    },
    BatchWorkload {
        name: "e5/achain_batch",
        query_text: "A(x), R(x,y), R(y,z)",
        nodes: 9,
        density: 0.2,
        saturate_unary: true,
    },
];

fn batch_instances(w: &BatchWorkload, count: usize) -> (cq::Query, Vec<Database>) {
    let q = parse_query(w.query_text).expect("workload query parses");
    let dbs = (0..count as u64)
        .map(|seed| {
            let mut workload = Workload::new(seed);
            let mut db = workload.random_graph_relation(&q, "R", w.nodes, w.density);
            if w.saturate_unary {
                workload.saturate_unary_relations(&q, &mut db, w.nodes);
            }
            db
        })
        .collect();
    (q, dbs)
}

fn batch_mode(args: &[String]) -> ExitCode {
    let mut instances = 100usize;
    let mut out_path: Option<String> = None;
    let mut label = "PR2-batch-engine".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--instances" => {
                instances = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--instances needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown batch argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("usage: perfbench batch [--instances N] [--label name] --out <json>");
        return ExitCode::FAILURE;
    };

    // Best-of-N wall-clock timing: one untimed warm-up, then the minimum
    // over `REPS` timed repetitions per path (single-shot wall times are too
    // noisy for a committed baseline).
    const REPS: usize = 5;
    let mut rows = Vec::new();
    let mut summary = String::new();
    for w in &BATCH_WORKLOADS {
        let (q, dbs) = batch_instances(w, instances);

        // Naive path: a fresh compile (re-classification) per instance, the
        // incremental-index database, sequential.
        let run_loop = || -> Vec<_> {
            let mut scratch = SolveScratch::new();
            dbs.iter()
                .map(|db| {
                    Engine::compile(&q)
                        .solve_store(db, &SolveOptions::new(), &mut scratch)
                        .expect("loop solve failed")
                })
                .collect()
        };
        // Engine path: compile once, freeze every instance, solve the batch
        // through the shared plan (compile + freeze inside the timed
        // region — they are the amortized per-query/per-instance setup).
        let run_batch = || {
            let compiled = Engine::compile(&q);
            let frozen: Vec<FrozenDb> = dbs.iter().map(|db| db.freeze()).collect();
            let reports = compiled.solve_batch(&frozen, &SolveOptions::new());
            (compiled, frozen, reports)
        };

        let loop_outcomes = run_loop(); // warm-up, kept for the differential check
        let mut loop_ns = u64::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            let outcomes = run_loop();
            loop_ns = loop_ns.min(start.elapsed().as_nanos() as u64);
            assert_eq!(outcomes.len(), instances);
        }

        let _ = run_batch(); // warm-up
        let mut batch_ns = u64::MAX;
        let mut reports = Vec::new();
        for _ in 0..REPS {
            let start = Instant::now();
            let (_, _, r) = run_batch();
            batch_ns = batch_ns.min(start.elapsed().as_nanos() as u64);
            reports = r;
        }

        // Differential check: identical results on every instance.
        let mut identical = true;
        for (i, (outcome, report)) in loop_outcomes.iter().zip(&reports).enumerate() {
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{}: instance {i} failed in batch mode: {e}", w.name);
                    return ExitCode::FAILURE;
                }
            };
            if outcome.resilience != report.resilience
                || outcome.contingency != report.contingency
                || outcome.method != report.method
            {
                eprintln!("{}: instance {i} differs between loop and batch", w.name);
                identical = false;
            }
        }
        if !identical {
            return ExitCode::FAILURE;
        }

        let speedup = loop_ns as f64 / batch_ns.max(1) as f64;
        rows.push(format!(
            "    {{\"bench\": \"{}\", \"instances\": {instances}, \
             \"loop_total_ns\": {loop_ns}, \"batch_total_ns\": {batch_ns}, \
             \"loop_ns_per_instance\": {}, \"batch_ns_per_instance\": {}, \
             \"speedup\": {speedup:.2}, \"identical_results\": true}}",
            w.name,
            loop_ns / instances.max(1) as u64,
            batch_ns / instances.max(1) as u64,
        ));
        summary.push_str(&format!(
            "{:<24} {instances} instances: loop {:>12} ns -> batch {:>12} ns  ({speedup:.2}x)\n",
            w.name, loop_ns, batch_ns
        ));
    }
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"mode\": \"batch_vs_loop\",\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!("wrote {out_path}\n"));
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}

/// One k-deletion sweep outcome: per step, `(resilience, witness count)`.
type SweepOutcome = Vec<(Option<usize>, usize)>;

fn session_mode(args: &[String], warm_only: bool) -> ExitCode {
    let mut instances = 25usize;
    // Default sweep length: 16 steps — the scale of a realistic interactive
    // what-if script, and long enough that the session's one-time costs
    // (open + first cold solve) amortize the way they do in actual use.
    let mut deletions = 16usize;
    let mut nodes: Option<u64> = None;
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut min_warm_speedup = 1.3f64;
    let mut label = if warm_only {
        "PR4-resolve-warm".to_string()
    } else {
        "PR4-session-sweep".to_string()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--instances" => {
                instances = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--instances needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--deletions" => {
                deletions = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--deletions needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--nodes" => {
                nodes = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--nodes needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            "--smoke" => smoke = true,
            "--min-warm-speedup" => {
                min_warm_speedup = match it.next().and_then(|s| s.parse().ok()) {
                    Some(x) => x,
                    None => {
                        eprintln!("--min-warm-speedup needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown session argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!(
            "usage: perfbench session [--instances N] [--deletions K] [--nodes V] \
             [--label name] [--smoke [--min-warm-speedup X]] --out <json>"
        );
        return ExitCode::FAILURE;
    };

    // The what-if sweeps cover both regimes. The PTIME linear-flow query
    // (e1-style `q_ACconf`) runs at interactive-instance scale, where the
    // baseline's per-step copy + freeze + re-enumeration dominates — this is
    // the workload the session exists for. The NP-complete e2/e5 chains are
    // kept at batch scale for continuity; there the exact branch-and-bound
    // dominates *both* paths, so the session's advantage is bounded by the
    // non-solver share of the step.
    let session_workloads = [
        BatchWorkload {
            name: "e1/acconf_session",
            query_text: "A(x), R(x,y), R(z,y), C(z)",
            nodes: 28,
            density: 0.18,
            saturate_unary: true,
        },
        BatchWorkload {
            nodes: 11,
            ..BATCH_WORKLOADS[0]
        },
        BatchWorkload {
            nodes: 11,
            ..BATCH_WORKLOADS[1]
        },
    ];
    const REPS: usize = 5;
    let mut rows = Vec::new();
    let mut summary = String::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for w in &session_workloads {
        let w = &BatchWorkload {
            nodes: nodes.unwrap_or(w.nodes),
            ..*w
        };
        let (q, dbs) = batch_instances(w, instances);
        let compiled = Engine::compile(&q);
        let frozen: Vec<FrozenDb> = dbs.iter().map(|db| db.freeze()).collect();
        let sequences: Vec<Vec<TupleId>> = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| {
                Workload::new(i as u64 ^ 0x5e55).random_deletion_sequence(&q, db, deletions)
            })
            .collect();
        let opts = SolveOptions::new();

        // Baseline: every deletion step pays a full `Database::without`
        // copy, a freeze, and a complete re-enumeration + solve.
        let run_scratch = || -> Vec<SweepOutcome> {
            dbs.iter()
                .zip(&sequences)
                .map(|(db, seq)| {
                    let mut deleted: HashSet<TupleId> = HashSet::new();
                    seq.iter()
                        .map(|&t| {
                            deleted.insert(t);
                            let report = compiled
                                .solve(&db.without(&deleted).freeze(), &opts)
                                .expect("scratch sweep solve failed");
                            (report.resilience.as_finite(), report.witnesses)
                        })
                        .collect()
                })
                .collect()
        };
        // Session: one enumeration at open, then O(degree) live-counter
        // updates per deletion and a warm-started re-solve over the live
        // view (reduced sets from the CSR arena, incumbent-seeded search).
        // Session creation is inside the timed region — the speedup already
        // includes it. `cold` disables the warm starts, isolating their
        // contribution.
        let run_session_with = |step_opts: &SolveOptions| -> Vec<SweepOutcome> {
            frozen
                .iter()
                .zip(&sequences)
                .map(|(fdb, seq)| {
                    let mut session = compiled.session(fdb).expect("session open failed");
                    seq.iter()
                        .map(|&t| {
                            session.delete(&[t]);
                            let report = session
                                .solve(step_opts)
                                .expect("session sweep solve failed");
                            (report.resilience.as_finite(), report.witnesses)
                        })
                        .collect()
                })
                .collect()
        };
        let cold_opts = SolveOptions::new().warm_start(false);
        let run_session = || run_session_with(&opts);
        let run_session_cold = || run_session_with(&cold_opts);

        // Maintenance metric: per deletion step, bring the witness set up to
        // date and read the live witness count. Baseline = the legacy
        // `Database::without` round trip (copy + full re-enumeration);
        // session = O(degree) live-counter update. This is the ROADMAP's
        // "incremental WitnessSet maintenance under deletions" item.
        let q_norm = compiled.classification().evidence.normalized.clone();
        let run_scratch_maintain = || -> Vec<Vec<usize>> {
            dbs.iter()
                .zip(&sequences)
                .map(|(db, seq)| {
                    let mut deleted: HashSet<TupleId> = HashSet::new();
                    seq.iter()
                        .map(|&t| {
                            deleted.insert(t);
                            WitnessSet::build(&q_norm, &db.without(&deleted)).len()
                        })
                        .collect()
                })
                .collect()
        };
        let run_session_maintain = || -> Vec<Vec<usize>> {
            frozen
                .iter()
                .zip(&sequences)
                .map(|(fdb, seq)| {
                    let mut session = compiled.session(fdb).expect("session open failed");
                    seq.iter()
                        .map(|&t| {
                            session.delete(&[t]);
                            session.live_witnesses()
                        })
                        .collect()
                })
                .collect()
        };

        let steps: usize = sequences.iter().map(Vec::len).sum();
        let speedups = &mut speedups;
        let mut emit = |metric: &str, scratch_ns: u64, session_ns: u64| {
            let name = format!("{}/{metric}", w.name.replace("_batch", "_session"));
            let speedup = scratch_ns as f64 / session_ns.max(1) as f64;
            speedups.push((name.clone(), speedup));
            rows.push(format!(
                "    {{\"bench\": \"{name}\", \"instances\": {instances}, \"deletion_steps\": {steps}, \
                 \"scratch_total_ns\": {scratch_ns}, \"session_total_ns\": {session_ns}, \
                 \"scratch_ns_per_step\": {}, \"session_ns_per_step\": {}, \
                 \"speedup\": {speedup:.2}, \"identical_results\": true}}",
                scratch_ns / steps.max(1) as u64,
                session_ns / steps.max(1) as u64,
            ));
            summary.push_str(&format!(
                "{name:<30} {instances} x {deletions} deletions: scratch {scratch_ns:>12} ns -> session {session_ns:>12} ns  ({speedup:.2}x)\n",
            ));
        };

        if !warm_only {
            let scratch_counts = run_scratch_maintain(); // warm-up + differential
            let mut scratch_maintain_ns = u64::MAX;
            for _ in 0..REPS {
                let start = Instant::now();
                let counts = run_scratch_maintain();
                scratch_maintain_ns = scratch_maintain_ns.min(start.elapsed().as_nanos() as u64);
                assert_eq!(counts.len(), instances);
            }
            let session_counts = run_session_maintain(); // warm-up + differential
            let mut session_maintain_ns = u64::MAX;
            for _ in 0..REPS {
                let start = Instant::now();
                let counts = run_session_maintain();
                session_maintain_ns = session_maintain_ns.min(start.elapsed().as_nanos() as u64);
                assert_eq!(counts.len(), instances);
            }
            if scratch_counts != session_counts {
                eprintln!("{}: witness counts diverge between paths", w.name);
                return ExitCode::FAILURE;
            }
            emit("maintain", scratch_maintain_ns, session_maintain_ns);
        }

        let _ = run_session(); // warm-up
        let mut session_ns = u64::MAX;
        let mut session_outcomes = Vec::new();
        for _ in 0..REPS {
            let start = Instant::now();
            let outcomes = run_session();
            session_ns = session_ns.min(start.elapsed().as_nanos() as u64);
            session_outcomes = outcomes;
        }

        if !warm_only {
            let scratch_outcomes = run_scratch(); // warm-up, kept for the check
            let mut scratch_ns = u64::MAX;
            for _ in 0..REPS {
                let start = Instant::now();
                let outcomes = run_scratch();
                scratch_ns = scratch_ns.min(start.elapsed().as_nanos() as u64);
                assert_eq!(outcomes.len(), instances);
            }
            if scratch_outcomes != session_outcomes {
                for (i, (a, b)) in scratch_outcomes.iter().zip(&session_outcomes).enumerate() {
                    if a != b {
                        eprintln!(
                            "{}: instance {i} diverges: scratch {a:?} vs session {b:?}",
                            w.name
                        );
                    }
                }
                return ExitCode::FAILURE;
            }
            emit("resolve", scratch_ns, session_ns);
        }

        // Cold-vs-warm per-step solve: identical sweeps through the same
        // session machinery, with the warm starts switched off on the cold
        // side. Isolates what the incumbent/replay machinery buys.
        let cold_outcomes = run_session_cold(); // warm-up + differential
        let mut cold_ns = u64::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            let outcomes = run_session_cold();
            cold_ns = cold_ns.min(start.elapsed().as_nanos() as u64);
            assert_eq!(outcomes.len(), instances);
        }
        if cold_outcomes != session_outcomes {
            eprintln!("{}: cold and warm session sweeps diverge", w.name);
            return ExitCode::FAILURE;
        }
        emit("resolve_warm", cold_ns, session_ns);
    }
    // CI gate: the flow-dispatched e1 sweep must show the resident warm
    // flow actually paying off (conservative floor; the full bench runs
    // much higher), on top of the differential identity checks above.
    if smoke {
        let gate = "e1/acconf_session/resolve_warm";
        let Some((_, speedup)) = speedups.iter().find(|(n, _)| n == gate) else {
            eprintln!("--smoke: gate metric {gate} was not measured");
            return ExitCode::FAILURE;
        };
        if *speedup < min_warm_speedup {
            eprintln!(
                "--smoke: {gate} speedup {speedup:.2}x below the {min_warm_speedup:.2}x floor"
            );
            return ExitCode::FAILURE;
        }
        summary.push_str(&format!(
            "smoke gate: {gate} {speedup:.2}x >= {min_warm_speedup:.2}x\n"
        ));
    }
    let mode = if warm_only {
        "cold_session_vs_warm_session"
    } else {
        "session_vs_without_reenumerate"
    };
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"mode\": \"{mode}\",\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!("wrote {out_path}\n"));
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}

/// One serve-mode measurement: `clients` threads, each issuing `requests`
/// solve requests against a daemon with `workers` pool threads. Returns
/// `(total_ns, total_requests)`; panics (test-style) on any response that is
/// not byte-identical to the locally rendered report.
///
/// `options_json`, when set, is attached verbatim as the request's
/// `options` object. Deadline options that never fire must leave every
/// response byte-identical to the no-options baseline (completed solves
/// with a cancel token are bit-identical to solves without), so the same
/// local expectation is asserted either way — which is exactly what makes
/// the `--deadlines` overhead comparison honest.
fn drive_daemon(
    w: &BatchWorkload,
    workers: usize,
    clients: usize,
    requests: usize,
    options_json: Option<&str>,
    idle_conns: usize,
    pipeline: usize,
) -> (u64, usize) {
    use server::client::Client;
    use server::{jsonio, Server, ServerConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    // Queue depth covers every client: this mode measures throughput, not
    // admission control, so surplus requests must queue and drain (the
    // default depth of 2x workers would refuse them as overloaded).
    let server = Server::bind(
        ServerConfig::new("127.0.0.1:0")
            .workers(workers)
            .queue_depth(clients.max(1)),
    )
    .expect("bind failed");
    let addr = server.local_addr().expect("local_addr failed");
    let flag = server.shutdown_flag();
    let server_thread = std::thread::spawn(move || server.run().expect("daemon failed"));

    let q = parse_query(w.query_text).expect("workload query parses");
    let compiled = Engine::compile(&q);
    let opts = SolveOptions::new();
    // Per-client instances (distinct seeds) rendered to the wire format;
    // the local expectation parses the same text, exactly like the daemon.
    let setups: Vec<(String, String)> = (0..clients as u64)
        .map(|seed| {
            let mut workload = Workload::new(seed);
            let mut db = workload.random_graph_relation(&q, "R", w.nodes, w.density);
            if w.saturate_unary {
                workload.saturate_unary_relations(&q, &mut db, w.nodes);
            }
            let text = server::dbtext::to_text(&db);
            let (local_db, _) = server::dbtext::parse_database_with_labels(&q, &text)
                .expect("round-trip parse failed");
            let report = compiled
                .solve(&local_db.freeze(), &opts)
                .expect("local solve failed");
            let tag = format!("c{seed}");
            (text, jsonio::report_json(&tag, &local_db, &report))
        })
        .collect();

    // Phase 1 — setup on a short-lived connection per client: register the
    // query and upload the instance, then disconnect. The registry is
    // shared across connections, so the handles stay valid.
    let handles: Vec<(String, String)> = setups
        .iter()
        .map(|(text, _)| {
            let mut client = Client::connect(addr).expect("connect failed");
            let (qid, _, _) = client.compile(w.query_text).expect("compile failed");
            let (db_id, _) = client.load_text(&qid, text).expect("load failed");
            (qid, db_id)
        })
        .collect();

    // The idle horde: held-open keep-alive connections that never write a
    // byte. Under the event loop each one costs a registered fd and
    // nothing else — `--idle-conns` plus `--max-idle-overhead-pct` gates
    // exactly that claim.
    let idle: Vec<TcpStream> = (0..idle_conns)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();

    // Phase 2 — timed: all clients pass the barrier, open a fresh
    // connection each and fire their requests — one at a time through the
    // shared client, or `pipeline` frames per write with responses read
    // back in order. Byte-identity with the local report is asserted on
    // every response either way.
    let pipeline = pipeline.max(1);
    let barrier = std::sync::Barrier::new(clients + 1);
    let total_ns = std::thread::scope(|scope| {
        let join_handles: Vec<_> = setups
            .iter()
            .zip(&handles)
            .enumerate()
            .map(|(i, ((_, expected), (qid, db_id)))| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let options = options_json
                        .map(|o| format!(", \"options\": {o}"))
                        .unwrap_or_default();
                    let request = format!(
                        "{{\"op\": \"solve\", \"query_id\": \"{qid}\", \"db_id\": \"{db_id}\", \
                         \"tag\": \"c{i}\"{options}}}"
                    );
                    barrier.wait();
                    if pipeline <= 1 {
                        let mut client = Client::connect(addr).expect("connect failed");
                        for _ in 0..requests {
                            let raw = client.request_raw(&request).expect("request failed");
                            let got = jsonio::extract_raw(&raw, "result");
                            assert_eq!(
                                got,
                                Some(expected.as_str()),
                                "client {i}: response differs from local report (raw: {raw})"
                            );
                        }
                    } else {
                        let stream = TcpStream::connect(addr).expect("connect failed");
                        let _ = stream.set_nodelay(true);
                        let mut reader = BufReader::new(stream.try_clone().expect("clone failed"));
                        let mut stream = stream;
                        let mut sent = 0usize;
                        let mut line = String::new();
                        while sent < requests {
                            let burst = pipeline.min(requests - sent);
                            let mut buf = String::with_capacity(burst * (request.len() + 1));
                            for _ in 0..burst {
                                buf.push_str(&request);
                                buf.push('\n');
                            }
                            stream.write_all(buf.as_bytes()).expect("send failed");
                            for _ in 0..burst {
                                line.clear();
                                reader.read_line(&mut line).expect("receive failed");
                                assert!(!line.is_empty(), "client {i}: connection closed");
                                let got = jsonio::extract_raw(line.trim_end(), "result");
                                assert_eq!(
                                    got,
                                    Some(expected.as_str()),
                                    "client {i}: pipelined response differs (raw: {line})"
                                );
                            }
                            sent += burst;
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in join_handles {
            handle.join().expect("client thread panicked");
        }
        start.elapsed().as_nanos() as u64
    });
    drop(idle);
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("daemon thread panicked");
    (total_ns, clients * requests)
}

/// Expands every catalogue query into `variants` seeded random
/// renamings/permutations of itself. The first variant of each shape is the
/// one the cache will adopt as representative (lookups run in order).
fn catalogue_variants(variants: usize) -> Vec<(&'static str, Vec<cq::Query>)> {
    cq::catalogue::all_named_queries()
        .iter()
        .enumerate()
        .map(|(i, nq)| {
            let mut wl = Workload::new(0xCAC4E ^ i as u64);
            (nq.name, wl.query_variants(&nq.query, variants))
        })
        .collect()
}

/// The differential gate of cache mode: for one catalogue shape, solve a
/// random instance through the cached plan of every variant and require
/// byte-identical output to the representative's direct compile, semantic
/// agreement with each variant's own direct compile, and a contingency that
/// really falsifies the query. Returns an error description on divergence.
fn cache_differential(
    name: &str,
    shape_index: usize,
    variants: &[cq::Query],
    cache: &PlanCache,
) -> Result<(), String> {
    use server::{dbtext, jsonio};
    let rep = &variants[0];
    let mut wl = Workload::new(0xD1FF ^ shape_index as u64);
    let db = wl.random_database(rep, 12, 6);
    // Round-trip through the schema-neutral text format so the same facts
    // can be loaded against every variant's (differently ordered) schema.
    let text = dbtext::to_text(&db);
    let rep_db =
        dbtext::parse_database(rep, &text).map_err(|e| format!("{name}: reparse failed: {e}"))?;
    let rep_frozen = rep_db.freeze();
    let opts = SolveOptions::new().want_contingency(true);
    let direct = Engine::compile(rep);
    let expected_report = direct
        .solve(&rep_frozen, &opts)
        .map_err(|e| format!("{name}: direct solve failed: {e}"))?;
    let expected = jsonio::report_json(name, &rep_db, &expected_report);
    for (vi, v) in variants.iter().enumerate() {
        let cached = cache.compile(v);
        if !cached.cacheable {
            return Err(format!("{name}: variant {vi} bypassed the cache"));
        }
        // The first variant of a shape must miss (distinct catalogue shapes
        // have distinct canonical forms), every later one must hit.
        if cached.hit != (vi > 0) {
            return Err(format!(
                "{name}: variant {vi} expected {}, got {}",
                if vi > 0 { "hit" } else { "miss" },
                if cached.hit { "hit" } else { "miss" }
            ));
        }
        let report = cached
            .compiled
            .solve(&rep_frozen, &opts)
            .map_err(|e| format!("{name}: cached solve failed: {e}"))?;
        // (a) Byte identity against the representative's direct compile.
        let got = jsonio::report_json(name, &rep_db, &report);
        if got != expected {
            return Err(format!(
                "{name}: variant {vi} cached report differs\n  direct: {expected}\n  cached: {got}"
            ));
        }
        // (b) Semantic identity against the variant's own direct compile
        // over the same facts — the anti-conflation check: a cache that
        // ever served the wrong shape's plan would answer differently here.
        let vdb = dbtext::parse_database(v, &text)
            .map_err(|e| format!("{name}: variant {vi} parse failed: {e}"))?;
        let vreport = Engine::compile(v)
            .solve(&vdb.freeze(), &opts)
            .map_err(|e| format!("{name}: variant {vi} direct solve failed: {e}"))?;
        let same = report.resilience == vreport.resilience
            && report.witnesses == vreport.witnesses
            && format!("{:?}", report.method) == format!("{:?}", vreport.method)
            && report.contingency.as_ref().map(Vec::len)
                == vreport.contingency.as_ref().map(Vec::len);
        if !same {
            return Err(format!(
                "{name}: variant {vi} semantics diverge: cached {:?}/{} vs direct {:?}/{}",
                report.resilience, report.witnesses, vreport.resilience, vreport.witnesses
            ));
        }
        // (c) The contingency the cached plan reports must actually
        // falsify the query on this instance.
        if let Some(gamma) = &report.contingency {
            let deleted: HashSet<TupleId> = gamma.iter().copied().collect();
            let reduced = rep_db.without(&deleted).freeze();
            let after = cached
                .compiled
                .solve(&reduced, &opts)
                .map_err(|e| format!("{name}: reduced solve failed: {e}"))?;
            if after.witnesses != 0 {
                return Err(format!(
                    "{name}: variant {vi} contingency leaves {} witnesses",
                    after.witnesses
                ));
            }
        }
    }
    Ok(())
}

fn cache_mode(args: &[String]) -> ExitCode {
    let mut variants = 10usize;
    let mut smoke = false;
    let mut min_speedup: Option<f64> = None;
    let mut min_hit_rate: Option<f64> = None;
    let mut out_path: Option<String> = None;
    let mut label = "PR7-plan-cache".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--variants" => {
                variants = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 2 => n,
                    _ => {
                        eprintln!("--variants needs a number >= 2");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--smoke" => smoke = true,
            "--min-speedup" => {
                min_speedup = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--min-speedup needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--min-hit-rate" => {
                min_hit_rate = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--min-hit-rate needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown cache argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!(
            "usage: perfbench cache [--variants N] [--smoke] [--min-speedup X] \
             [--min-hit-rate R] [--label name] --out <json>"
        );
        return ExitCode::FAILURE;
    };
    let reps = if smoke { 1 } else { 5 };

    let all = catalogue_variants(variants);
    let shapes = all.len();
    let lookups = shapes * variants;

    // Differential gate first: timing a cache that answers wrongly would be
    // meaningless. One fresh cache across the whole catalogue, exactly like
    // the timed pass.
    let gate_cache = PlanCache::new(shapes.max(1));
    for (i, (name, vs)) in all.iter().enumerate() {
        if let Err(e) = cache_differential(name, i, vs, &gate_cache) {
            eprintln!("cache differential gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    let gate_stats = gate_cache.stats();
    if gate_stats.collisions > 0 {
        // Collisions are handled (exact-form chaining), but the catalogue
        // should not produce any under a 128-bit key; surface it loudly.
        eprintln!(
            "note: {} canonical-key collisions across the catalogue",
            gate_stats.collisions
        );
    }

    // Cold baseline: direct Engine::compile for every variant.
    let run_cold = || {
        for (_, vs) in &all {
            for v in vs {
                std::hint::black_box(Engine::compile(v));
            }
        }
    };
    run_cold(); // warm-up
    let mut cold_ns = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        run_cold();
        cold_ns = cold_ns.min(start.elapsed().as_nanos() as u64);
    }

    // Cached pass: a fresh shared cache per repetition (the first variant
    // of each shape compiles, the rest hit). Hit and miss time are bucketed
    // per lookup so the hits-only speedup is measured, not inferred.
    let mut cached_ns = u64::MAX;
    let mut hit_ns_best = u64::MAX;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for _ in 0..reps {
        let cache = PlanCache::new(shapes.max(1));
        let (mut rep_hit_ns, mut rep_total_ns) = (0u64, 0u64);
        for (_, vs) in &all {
            for v in vs {
                let start = Instant::now();
                let out = cache.compile(v);
                let dt = start.elapsed().as_nanos() as u64;
                rep_total_ns += dt;
                if out.hit {
                    rep_hit_ns += dt;
                }
                std::hint::black_box(out);
            }
        }
        let stats = cache.stats();
        hits = stats.hits;
        misses = stats.misses;
        if rep_total_ns < cached_ns {
            cached_ns = rep_total_ns;
        }
        hit_ns_best = hit_ns_best.min(rep_hit_ns);
    }

    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let cold_per_compile = cold_ns / lookups.max(1) as u64;
    let hit_per_lookup = hit_ns_best / hits.max(1);
    let speedup_hits = cold_per_compile as f64 / hit_per_lookup.max(1) as f64;
    let speedup_total = cold_ns as f64 / cached_ns.max(1) as f64;

    let row = format!(
        "    {{\"bench\": \"cache/catalogue_variants\", \"shapes\": {shapes}, \
         \"variants_per_shape\": {variants}, \"lookups\": {lookups}, \
         \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {hit_rate:.3}, \
         \"cold_total_ns\": {cold_ns}, \"cached_total_ns\": {cached_ns}, \
         \"cold_ns_per_compile\": {cold_per_compile}, \"hit_ns_per_lookup\": {hit_per_lookup}, \
         \"speedup_total\": {speedup_total:.2}, \"speedup_hits\": {speedup_hits:.2}, \
         \"identical_results\": true}}"
    );
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"mode\": \"plan_cache_vs_direct_compile\",\n  \"experiments\": [\n{row}\n  ]\n}}\n",
    );
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let mut summary = format!(
        "cache/catalogue_variants  {shapes} shapes x {variants} variants: cold {cold_ns} ns -> cached {cached_ns} ns  \
         ({speedup_total:.2}x total, {speedup_hits:.2}x on hits, hit rate {:.1}%)\nwrote {out_path}\n",
        hit_rate * 100.0
    );
    if let Some(limit) = min_hit_rate {
        if hit_rate < limit {
            eprintln!("hit-rate gate FAILED: {hit_rate:.3} < {limit}");
            return ExitCode::FAILURE;
        }
        summary.push_str(&format!("hit-rate gate passed: {hit_rate:.3} >= {limit}\n"));
    }
    if let Some(limit) = min_speedup {
        if speedup_hits < limit {
            eprintln!("hit-speedup gate FAILED: {speedup_hits:.2}x < {limit}x");
            return ExitCode::FAILURE;
        }
        summary.push_str(&format!(
            "hit-speedup gate passed: {speedup_hits:.2}x >= {limit}x\n"
        ));
    }
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}

fn serve_mode(args: &[String]) -> ExitCode {
    let mut workers_list: Vec<usize> = Vec::new();
    let mut clients = 8usize;
    let mut requests = 50usize;
    let mut nodes: Option<u64> = None;
    let mut smoke = false;
    let mut deadlines = false;
    let mut timeout_ms = 60_000u64;
    let mut max_overhead_pct: Option<f64> = None;
    let mut reps = 3usize;
    let mut idle_conns = 0usize;
    let mut pipeline = 1usize;
    let mut max_idle_overhead_pct: Option<f64> = None;
    let mut out_path: Option<String> = None;
    let mut label = "PR5-serve".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--nodes" => {
                nodes = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--nodes needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--workers-list" => {
                let parsed: Option<Vec<usize>> = it
                    .next()
                    .map(|s| s.split(',').map(|n| n.parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => workers_list = list,
                    _ => {
                        eprintln!("--workers-list needs a comma-separated list of numbers");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--clients" => {
                clients = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--clients needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--requests" => {
                requests = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--requests needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--smoke" => smoke = true,
            "--deadlines" => deadlines = true,
            "--timeout-ms" => {
                timeout_ms = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--timeout-ms needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-overhead-pct" => {
                max_overhead_pct = match it.next().and_then(|s| s.parse::<f64>().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--max-overhead-pct needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--reps" => {
                reps = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--reps needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--idle-conns" => {
                idle_conns = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--idle-conns needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--pipeline" => {
                pipeline = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--pipeline needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-idle-overhead-pct" => {
                max_idle_overhead_pct = match it.next().and_then(|s| s.parse::<f64>().ok()) {
                    Some(n) => Some(n),
                    None => {
                        eprintln!("--max-idle-overhead-pct needs a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown serve argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!(
            "usage: perfbench serve [--workers-list 1,2,4] [--clients C] [--requests R] \
             [--smoke] [--pipeline D] \
             [--idle-conns N [--max-idle-overhead-pct P]] \
             [--deadlines [--timeout-ms MS] [--max-overhead-pct P]] [--reps K] \
             [--label name] --out <json>"
        );
        return ExitCode::FAILURE;
    };
    if idle_conns > 0 && label == "PR5-serve" {
        label = "PR9-serve-idle".to_string();
    }
    if smoke {
        clients = clients.min(4);
        requests = requests.min(8);
        if workers_list.is_empty() {
            workers_list = vec![1, 2];
        }
    } else if workers_list.is_empty() {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        workers_list = vec![1];
        let mut w = 2;
        while w <= max {
            workers_list.push(w);
            w *= 2;
        }
    }

    let mut rows = Vec::new();
    let mut summary = String::new();
    let mut worst_overhead: Option<(String, f64)> = None;
    let mut worst_idle: Option<(String, f64)> = None;
    let deadline_opts = format!("{{\"timeout_ms\": {timeout_ms}}}");
    for w in &BATCH_WORKLOADS {
        let w = &BatchWorkload {
            nodes: nodes.unwrap_or(w.nodes),
            ..*w
        };
        for &workers in &workers_list {
            let name = format!("serve/{}", w.name.replace("_batch", "_solve"));
            if idle_conns > 0 {
                // Interleave a 0-idle baseline and a run under the idle
                // horde; min-of-reps cancels most scheduler noise, so the
                // difference isolates what held-open connections cost the
                // event loop. Byte-identity is asserted on every response
                // in both runs.
                let (mut base_ns, mut idle_ns) = (u64::MAX, u64::MAX);
                let mut total_requests = 0;
                for _ in 0..reps {
                    let (b, n) = drive_daemon(w, workers, clients, requests, None, 0, pipeline);
                    let (d, _) =
                        drive_daemon(w, workers, clients, requests, None, idle_conns, pipeline);
                    base_ns = base_ns.min(b);
                    idle_ns = idle_ns.min(d);
                    total_requests = n;
                }
                let overhead_pct =
                    (idle_ns as f64 - base_ns as f64) / (base_ns as f64).max(1.0) * 100.0;
                if worst_idle.as_ref().is_none_or(|(_, p)| overhead_pct > *p) {
                    worst_idle = Some((format!("{name} workers {workers}"), overhead_pct));
                }
                let base_rps = total_requests as f64 / (base_ns as f64 / 1e9).max(1e-9);
                let idle_rps = total_requests as f64 / (idle_ns as f64 / 1e9).max(1e-9);
                rows.push(format!(
                    "    {{\"bench\": \"{name}\", \"workers\": {workers}, \"clients\": {clients}, \
                     \"requests_per_client\": {requests}, \"requests\": {total_requests}, \
                     \"pipeline\": {pipeline}, \"idle_conns\": {idle_conns}, \
                     \"base_ns\": {base_ns}, \"idle_ns\": {idle_ns}, \
                     \"base_requests_per_sec\": {base_rps:.1}, \
                     \"idle_requests_per_sec\": {idle_rps:.1}, \
                     \"overhead_pct\": {overhead_pct:.2}, \"identical_results\": true}}"
                ));
                summary.push_str(&format!(
                    "{name:<24} workers {workers:>2}: {base_rps:.0} req/s bare, {idle_rps:.0} \
                     req/s under {idle_conns} idle conns  ({overhead_pct:+.2}%)\n"
                ));
            } else if deadlines {
                // Interleave baseline and deadline runs and keep the best of
                // each: min-of-reps cancels most scheduler noise, so the
                // difference isolates the cancellation-poll cost (the
                // deadline is generous enough that no request ever cancels,
                // and byte-identity with the local report is still asserted
                // on every response).
                let (mut base_ns, mut dl_ns) = (u64::MAX, u64::MAX);
                let mut total_requests = 0;
                for _ in 0..reps {
                    let (b, n) = drive_daemon(w, workers, clients, requests, None, 0, pipeline);
                    let (d, _) = drive_daemon(
                        w,
                        workers,
                        clients,
                        requests,
                        Some(&deadline_opts),
                        0,
                        pipeline,
                    );
                    base_ns = base_ns.min(b);
                    dl_ns = dl_ns.min(d);
                    total_requests = n;
                }
                let overhead_pct =
                    (dl_ns as f64 - base_ns as f64) / (base_ns as f64).max(1.0) * 100.0;
                if worst_overhead
                    .as_ref()
                    .is_none_or(|(_, p)| overhead_pct > *p)
                {
                    worst_overhead = Some((format!("{name} workers {workers}"), overhead_pct));
                }
                rows.push(format!(
                    "    {{\"bench\": \"{name}\", \"workers\": {workers}, \"clients\": {clients}, \
                     \"requests_per_client\": {requests}, \"requests\": {total_requests}, \
                     \"timeout_ms\": {timeout_ms}, \"base_ns\": {base_ns}, \
                     \"deadline_ns\": {dl_ns}, \"overhead_pct\": {overhead_pct:.2}, \
                     \"identical_results\": true}}"
                ));
                summary.push_str(&format!(
                    "{name:<24} workers {workers:>2}: base {base_ns:>12} ns, with deadline \
                     {dl_ns:>12} ns  ({overhead_pct:+.2}%)\n"
                ));
            } else {
                let (total_ns, total_requests) =
                    drive_daemon(w, workers, clients, requests, None, 0, pipeline);
                let secs = (total_ns as f64 / 1e9).max(1e-9);
                let rps = total_requests as f64 / secs;
                rows.push(format!(
                    "    {{\"bench\": \"{name}\", \"workers\": {workers}, \"clients\": {clients}, \
                     \"requests_per_client\": {requests}, \"requests\": {total_requests}, \
                     \"pipeline\": {pipeline}, \"total_ns\": {total_ns}, \
                     \"requests_per_sec\": {rps:.1}, \"identical_results\": true}}"
                ));
                summary.push_str(&format!(
                    "{name:<24} workers {workers:>2}: {total_requests} requests in {total_ns:>12} ns  ({rps:.0} req/s)\n"
                ));
            }
        }
    }
    let mode = if idle_conns > 0 {
        "daemon_idle_conn_overhead"
    } else if deadlines {
        "daemon_deadline_overhead"
    } else {
        "daemon_requests_per_sec"
    };
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"mode\": \"{mode}\",\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!("wrote {out_path}\n"));
    if let (Some(limit), Some((worst, pct))) = (max_overhead_pct, &worst_overhead) {
        if *pct > limit {
            eprintln!("deadline overhead gate FAILED: {worst} costs {pct:.2}% (limit {limit}%)");
            return ExitCode::FAILURE;
        }
        summary.push_str(&format!(
            "deadline overhead gate passed: worst {worst} at {pct:.2}% (limit {limit}%)\n"
        ));
    }
    if let (Some(limit), Some((worst, pct))) = (max_idle_overhead_pct, &worst_idle) {
        if *pct > limit {
            eprintln!(
                "idle-connection gate FAILED: {worst} loses {pct:.2}% under {idle_conns} idle \
                 connections (limit {limit}%)"
            );
            return ExitCode::FAILURE;
        }
        summary.push_str(&format!(
            "idle-connection gate passed: worst {worst} at {pct:.2}% under {idle_conns} idle \
             connections (limit {limit}%)\n"
        ));
    }
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}

/// **Shard mode** (`perfbench shard ...`): builds one instance whose frozen
/// footprint is several times a per-shard memory cap, solves it whole (the
/// fits-in-RAM reference that also supplies the differential gate) and then
/// via the streaming shard pipeline — `plan_stream` over one replay of the
/// generator, one `build_shard` pass per shard overlapped with the gather
/// solve — and checks that the merged answer is identical and that the
/// per-tuple solve throughput stays within a configurable factor of the
/// whole-instance solve.
///
/// Gates (all enforced every run):
/// - merged resilience/witness counts equal the whole-instance solve, and
///   the streaming and eager shard paths return byte-identical reports;
/// - the whole instance is at least `--min-cap-ratio` (default 4) times the
///   largest resident shard (the memory cap a streaming solver needs);
/// - sharded per-tuple throughput ≥ `--min-throughput-ratio` (default 0.75)
///   of the whole-instance solve.
///
/// The shard-parallel speedup gate (threads = cores vs 1) only runs when
/// the machine has ≥ 2 cores; otherwise it is skipped with a warning field
/// in the JSON so CI on single-core runners stays green without silently
/// dropping the check.
fn shard_mode(args: &[String]) -> ExitCode {
    let mut tuples: Option<usize> = None;
    let mut groups = 8usize;
    let mut width = 48u64;
    let mut shards_k = 8usize;
    let mut smoke = false;
    let mut min_ratio = 0.75f64;
    let mut min_cap_ratio = 4.0f64;
    let mut min_parallel_speedup = 1.1f64;
    let mut out_path: Option<String> = None;
    let mut label = "PR10-shard-streaming".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        macro_rules! num {
            ($name:literal) => {
                match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!(concat!($name, " needs a number"));
                        return ExitCode::FAILURE;
                    }
                }
            };
        }
        match arg.as_str() {
            "--tuples" => tuples = Some(num!("--tuples")),
            "--groups" => groups = num!("--groups"),
            "--width" => width = num!("--width"),
            "--shards" => shards_k = num!("--shards"),
            "--smoke" => smoke = true,
            "--min-throughput-ratio" => min_ratio = num!("--min-throughput-ratio"),
            "--min-cap-ratio" => min_cap_ratio = num!("--min-cap-ratio"),
            "--min-parallel-speedup" => min_parallel_speedup = num!("--min-parallel-speedup"),
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown shard argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!(
            "usage: perfbench shard [--tuples N] [--groups G] [--width W] [--shards K] \
             [--smoke] [--min-throughput-ratio X] [--min-cap-ratio X] \
             [--min-parallel-speedup X] [--label name] --out <json>"
        );
        return ExitCode::FAILURE;
    };
    let tuples = tuples.unwrap_or(if smoke { 3_000 } else { 24_000 });
    let reps = if smoke { 1 } else { 3 };

    let q = parse_query("R(x,y), S(y,z)").expect("shard workload query parses");
    let spec = workloads::StreamSpec::for_query(&q, 7, tuples, groups, width);
    let compiled = Engine::compile(&q);
    let opts = SolveOptions::new();

    // Fits-in-RAM reference: materialize the generator (duplicate-free, so
    // tuple ids equal stream positions) and solve whole.
    let whole = spec.materialize().freeze();
    let whole_bytes = whole.resident_bytes();
    let mut whole_ns = u64::MAX;
    let mut whole_report = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = compiled.solve(&whole, &opts).expect("whole solve");
        whole_ns = whole_ns.min(start.elapsed().as_nanos() as u64);
        whole_report = Some(r);
    }
    let whole_report = whole_report.expect("at least one rep");

    // Streaming shard build: plan over one replay, one pass per shard.
    let mut plan = database::shard::plan_stream(spec.stream(), shards_k);
    let shard_count = plan.shards;
    let components = plan.components;
    let shards: Vec<resilience_core::shard::ShardInstance> = (0..shard_count)
        .map(|i| database::shard::build_shard(spec.schema(), spec.stream(), &mut plan, i).into())
        .collect();
    let max_shard_bytes = shards
        .iter()
        .map(|s| s.frozen.resident_bytes())
        .max()
        .unwrap_or(0);
    let cap_ratio = whole_bytes as f64 / max_shard_bytes.max(1) as f64;

    // Differential gate before any timing claims.
    let merged =
        resilience_core::shard::solve_sharded(&compiled, &shards, &opts, 1).expect("sharded solve");
    if merged.report.resilience != whole_report.resilience
        || merged.report.witnesses != whole_report.witnesses
    {
        eprintln!(
            "shard differential gate FAILED: merged {:?}/{} witnesses vs whole {:?}/{}",
            merged.report.resilience,
            merged.report.witnesses,
            whole_report.resilience,
            whole_report.witnesses
        );
        return ExitCode::FAILURE;
    }
    let contingency_sizes = (
        merged.report.contingency.as_ref().map(Vec::len),
        whole_report.contingency.as_ref().map(Vec::len),
    );
    if contingency_sizes.0 != contingency_sizes.1 {
        eprintln!("shard differential gate FAILED: contingency sizes {contingency_sizes:?}");
        return ExitCode::FAILURE;
    }

    // End-to-end streaming pass: re-plan and rebuild every shard from the
    // generator, overlapping builds with the gather solve.
    let stream_start = Instant::now();
    let mut replay_plan = database::shard::plan_stream(spec.stream(), shards_k);
    let replay_shards = replay_plan.shards;
    let shard_stream = (0..replay_shards).map(|i| {
        Ok::<_, std::convert::Infallible>(resilience_core::shard::ShardInstance::from(
            database::shard::build_shard(spec.schema(), spec.stream(), &mut replay_plan, i),
        ))
    });
    let streamed =
        resilience_core::shard::solve_sharded_streaming(&compiled, shard_stream, &opts, 1)
            .expect("streaming sharded solve");
    let streaming_ns = stream_start.elapsed().as_nanos() as u64;
    if streamed.report != merged.report {
        eprintln!("shard streaming gate FAILED: streaming report differs from eager merge");
        return ExitCode::FAILURE;
    }

    // Solve-only timing over the prebuilt shards (apples-to-apples with the
    // whole-instance solve, which excludes materialization too).
    let mut shard_ns = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = resilience_core::shard::solve_sharded(&compiled, &shards, &opts, 1)
            .expect("sharded solve");
        shard_ns = shard_ns.min(start.elapsed().as_nanos() as u64);
        std::hint::black_box(out);
    }
    let throughput_ratio = whole_ns as f64 / shard_ns.max(1) as f64;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (parallel_ns, parallel_speedup) = if cores >= 2 {
        let mut pns = u64::MAX;
        for _ in 0..reps {
            let start = Instant::now();
            let out = resilience_core::shard::solve_sharded(&compiled, &shards, &opts, cores)
                .expect("parallel sharded solve");
            pns = pns.min(start.elapsed().as_nanos() as u64);
            std::hint::black_box(out);
        }
        (Some(pns), Some(shard_ns as f64 / pns.max(1) as f64))
    } else {
        (None, None)
    };
    let parallel_gate = match parallel_speedup {
        Some(s) => format!("{s:.2}"),
        None => "null".to_string(),
    };
    let parallel_warning = if cores < 2 {
        ", \"parallel_gate\": \"skipped: available_parallelism() < 2\""
    } else {
        ""
    };

    let resilience_json = json_u64_opt(merged.report.resilience.as_finite().map(|k| k as u64));
    let whole_per_tuple = whole_ns / tuples.max(1) as u64;
    let shard_per_tuple = shard_ns / tuples.max(1) as u64;
    let row = format!(
        "    {{\"bench\": \"shard/stream_gather_chain\", \"tuples\": {tuples}, \
         \"groups\": {groups}, \"shards\": {shard_count}, \"data_components\": {components}, \
         \"query_components\": {qc}, \"whole_bytes\": {whole_bytes}, \
         \"max_shard_bytes\": {max_shard_bytes}, \"cap_ratio\": {cap_ratio:.2}, \
         \"resilience\": {resilience_json}, \"witnesses\": {wit}, \
         \"whole_solve_ns\": {whole_ns}, \"shard_solve_ns\": {shard_ns}, \
         \"streaming_total_ns\": {streaming_ns}, \"whole_ns_per_tuple\": {whole_per_tuple}, \
         \"shard_ns_per_tuple\": {shard_per_tuple}, \"throughput_ratio\": {throughput_ratio:.2}, \
         \"parallel_solve_ns\": {pns}, \"parallel_speedup\": {parallel_gate}{parallel_warning}, \
         \"identical_results\": true}}",
        qc = merged.query_components,
        wit = merged.report.witnesses,
        pns = json_u64_opt(parallel_ns),
    );
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"mode\": \"sharded_streaming_vs_whole\",\n  \"experiments\": [\n{row}\n  ]\n}}\n",
    );
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    let mut summary = format!(
        "shard/stream_gather_chain  {tuples} tuples -> {shard_count} shards ({components} data \
         components): whole {whole_ns} ns, sharded {shard_ns} ns ({throughput_ratio:.2}x), \
         streaming {streaming_ns} ns end-to-end\n\
         memory: whole {whole_bytes} B vs largest shard {max_shard_bytes} B \
         ({cap_ratio:.2}x cap)\nwrote {out_path}\n"
    );
    if cap_ratio < min_cap_ratio {
        eprintln!(
            "cap-ratio gate FAILED: instance only {cap_ratio:.2}x the largest shard \
             (need {min_cap_ratio:.2}x)"
        );
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!(
        "cap-ratio gate passed: {cap_ratio:.2}x >= {min_cap_ratio:.2}x\n"
    ));
    if throughput_ratio < min_ratio {
        eprintln!("throughput gate FAILED: {throughput_ratio:.2}x < {min_ratio:.2}x");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!(
        "throughput gate passed: {throughput_ratio:.2}x >= {min_ratio:.2}x\n"
    ));
    match parallel_speedup {
        Some(speedup) if speedup < min_parallel_speedup => {
            eprintln!(
                "parallel-speedup gate FAILED: {speedup:.2}x < {min_parallel_speedup:.2}x \
                 across {cores} cores"
            );
            return ExitCode::FAILURE;
        }
        Some(speedup) => summary.push_str(&format!(
            "parallel-speedup gate passed: {speedup:.2}x >= {min_parallel_speedup:.2}x \
             across {cores} cores\n"
        )),
        None => summary.push_str(
            "parallel-speedup gate skipped: available_parallelism() < 2 (warning in JSON)\n",
        ),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(|s| s.as_str()) == Some("batch") {
        return batch_mode(&args[1..]);
    }
    if args.first().map(|s| s.as_str()) == Some("shard") {
        return shard_mode(&args[1..]);
    }
    if args.first().map(|s| s.as_str()) == Some("serve") {
        return serve_mode(&args[1..]);
    }
    if args.first().map(|s| s.as_str()) == Some("cache") {
        return cache_mode(&args[1..]);
    }
    if args.first().map(|s| s.as_str()) == Some("session") {
        return session_mode(&args[1..], false);
    }
    if args.first().map(|s| s.as_str()) == Some("resolve-warm") {
        return session_mode(&args[1..], true);
    }
    let mut before_path = None;
    let mut after_path = None;
    let mut out_path = None;
    let mut label = "BENCH".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--before" => before_path = it.next().cloned(),
            "--after" => after_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--label" => label = it.next().cloned().unwrap_or(label),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(before_path), Some(after_path), Some(out_path)) = (before_path, after_path, out_path)
    else {
        eprintln!(
            "usage: perfbench --before <jsonl> --after <jsonl> --out <json> [--label <name>]"
        );
        return ExitCode::FAILURE;
    };

    let before = match load(&before_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let after = match load(&after_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut names: Vec<&String> = before.keys().chain(after.keys()).collect();
    names.sort();
    names.dedup();

    let mut rows = Vec::new();
    let mut summary = String::new();
    for name in &names {
        let b = before.get(*name).copied();
        let a = after.get(*name).copied();
        let speedup = match (b, a) {
            (Some(b), Some(a)) if a > 0 => format!("{:.2}", b as f64 / a as f64),
            _ => "null".to_string(),
        };
        rows.push(format!(
            "    {{\"bench\": \"{name}\", \"before_median_ns\": {}, \"after_median_ns\": {}, \"speedup\": {speedup}}}",
            json_u64_opt(b),
            json_u64_opt(a),
        ));
        if let (Some(b), Some(a)) = (b, a) {
            summary.push_str(&format!(
                "{name:<50} {b:>14} -> {a:>12} ns  ({:.2}x)\n",
                b as f64 / a as f64
            ));
        }
    }
    let doc = format!(
        "{{\n  \"label\": \"{label}\",\n  \"unit\": \"ns_per_iter_median\",\n  \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // Write the report before touching stdout: a closed pipe downstream
    // (e.g. `perfbench | head`) must not lose the output file.
    if let Err(e) = fs::write(&out_path, doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    summary.push_str(&format!("wrote {out_path}\n"));
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(summary.as_bytes());
    ExitCode::SUCCESS
}
