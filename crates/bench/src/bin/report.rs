//! `report` — regenerates the paper's qualitative results as a text report:
//!
//! 1. the full classification table (Table 1 annotations, Figure 5, the
//!    Section 8 case analysis) with classifier-vs-paper agreement;
//! 2. gadget validation: Vertex Cover → q_vc, 3SAT → q_chain,
//!    Vertex Cover → q_△ (IJP construction) and the Prop. 57 tripod step;
//! 3. flow-vs-exact agreement for every PTIME query on random instances;
//! 4. the Independent Join Path examples of Section 9.
//!
//! Run with `cargo run -p bench --bin report --release`.
//!
//! Flags:
//!
//! * `--smoke` — tiny instance sizes and only the fast sections; used by CI
//!   as a correctness smoke test.
//! * `--json PATH` — additionally writes the flow-vs-exact agreement table
//!   as machine-readable JSON to `PATH`.

use bench::standard_instance;
use cq::catalogue::{all_named_queries, PaperClass};
use cq::{classify, Complexity};
use gadgets::sat_chain::{chain_expansion_gadget, ChainExpansion};
use gadgets::triangle::{triangle_gadget_from_vc, tripod_from_triangle};
use gadgets::vc_qvc::vc_to_qvc;
use resilience_core::engine::SolveMethod;
use resilience_core::engine::{Engine, SolveOptions};
use resilience_core::ijp;
use resilience_core::ExactSolver;
use satgad::{min_vertex_cover_size, CnfFormula};
use workloads::Workload;

fn verdict(c: &Complexity) -> &'static str {
    match c {
        Complexity::PTime(_) => "PTIME",
        Complexity::NpComplete(_) => "NP-complete",
        Complexity::Open => "open",
    }
}

fn section_classification() {
    println!("== 1. Classification table (experiments E4, E10) ==\n");
    println!("{:<18} {:<13} {:<13} agree", "query", "paper", "classifier");
    let mut agree = 0usize;
    let all = all_named_queries();
    let total = all.len();
    for nq in all {
        let ours = classify(&nq.query).complexity;
        let ours_s = verdict(&ours);
        let paper_s = match nq.paper_class {
            PaperClass::PTime => "PTIME",
            PaperClass::NpComplete => "NP-complete",
            PaperClass::Open => "open",
        };
        let ok = ours_s == paper_s;
        if ok {
            agree += 1;
        }
        println!(
            "{:<18} {:<13} {:<13} {}",
            nq.name,
            paper_s,
            ours_s,
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\nagreement: {agree}/{total}\n");
}

fn section_gadgets() {
    println!("== 2. Hardness gadget validation (experiments E2, E5, E7) ==\n");
    let exact = ExactSolver::new();

    // Vertex Cover -> q_vc on random graphs.
    let mut ok = 0usize;
    let trials = 5usize;
    for seed in 0..trials as u64 {
        let graph = Workload::new(seed).random_undirected_graph(8, 0.3);
        let gadget = vc_to_qvc(&graph);
        let vc = min_vertex_cover_size(&graph);
        let rho = exact
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        if rho == vc {
            ok += 1;
        }
    }
    println!("VC -> q_vc        : {ok}/{trials} random graphs validated (resilience = min VC)");

    // 3SAT -> q_chain: one satisfiable, one unsatisfiable formula.
    let sat = CnfFormula::from_clauses(
        3,
        &[
            &[(0, true), (1, true), (2, true)],
            &[(0, false), (1, true), (2, false)],
        ],
    );
    let mut unsat = CnfFormula::new(3);
    for mask in 0..8u8 {
        unsat.add_clause(
            (0..3)
                .map(|v| satgad::Literal {
                    var: v,
                    positive: mask & (1 << v) != 0,
                })
                .collect(),
        );
    }
    for (label, f) in [("satisfiable", &sat), ("unsatisfiable", &unsat)] {
        let g = chain_expansion_gadget(f, ChainExpansion::Plain);
        let rho = exact.resilience_value(&g.query, &g.database).unwrap();
        println!(
            "3SAT -> q_chain   : {label:<13} formula -> resilience {rho} vs threshold {} ({})",
            g.threshold,
            if (rho == g.threshold) == f.is_satisfiable() {
                "consistent with DPLL"
            } else {
                "INCONSISTENT"
            }
        );
    }

    // Vertex Cover -> q_triangle via IJPs, then the tripod step.
    let graph = Workload::new(77).random_undirected_graph(6, 0.4);
    let triangle = triangle_gadget_from_vc(&graph);
    let vc = min_vertex_cover_size(&graph);
    let rho = exact
        .resilience_value(&triangle.query, &triangle.database)
        .unwrap();
    println!(
        "VC -> q_triangle  : resilience {rho} = VC({vc}) + |E|({}) : {}",
        triangle.num_edges,
        if rho == triangle.threshold_for_cover(vc) {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    let tripod = tripod_from_triangle(&triangle.query, &triangle.database);
    let rho_t = exact
        .resilience_value(&tripod.query, &tripod.database)
        .unwrap();
    println!(
        "q_triangle -> q_T : resilience preserved ({rho} -> {rho_t}) : {}",
        if rho == rho_t { "ok" } else { "MISMATCH" }
    );
    println!();
}

fn section_flow_vs_exact(sizes: &[u64], json_path: Option<&str>) {
    println!("== 3. Flow vs exact on PTIME queries (experiments E1, E3, E6, E8) ==\n");
    let cases = [
        ("q_rats", cq::catalogue::q_rats()),
        ("q_ACconf", cq::catalogue::q_acconf()),
        ("q_A3perm-R", cq::catalogue::q_a3perm_r()),
        ("q_Aperm", cq::catalogue::q_aperm()),
        ("z3", cq::catalogue::z3()),
        ("q_Swx3perm-R", cq::catalogue::q_swx3perm_r()),
        ("q_TS3conf", cq::catalogue::q_ts3conf()),
    ];
    println!(
        "{:<14} {:>7} {:>9} {:>11} {:>8}",
        "query", "nodes", "tuples", "resilience", "method"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for (label, nq) in cases {
        let compiled = Engine::compile(&nq.query);
        let exact = ExactSolver::new();
        for &nodes in sizes {
            let db = standard_instance(&nq.query, 1000 + nodes, nodes, 0.22);
            let outcome = compiled
                .solve(&db.freeze(), &SolveOptions::new())
                .unwrap_or_else(|e| panic!("{label}: engine solve failed: {e}"));
            let resilience = outcome.resilience.as_finite();
            let truth = exact.resilience_value(&nq.query, &db);
            assert_eq!(resilience, truth, "{label} disagreement");
            let method = match outcome.method {
                SolveMethod::LinearFlow => "linear",
                SolveMethod::BipartiteCover => "könig",
                SolveMethod::PermutationFlow => "perm",
                SolveMethod::RepFlow => "rep",
                SolveMethod::SpecialFlow(_) => "special",
                _ => "other",
            };
            println!(
                "{:<14} {:>7} {:>9} {:>11} {:>8}",
                label,
                nodes,
                db.num_tuples(),
                resilience.map_or(-1i64, |v| v as i64),
                method
            );
            json_rows.push(format!(
                "    {{\"query\": \"{label}\", \"nodes\": {nodes}, \"tuples\": {}, \
                 \"resilience\": {}, \"method\": \"{method}\", \"agrees_with_exact\": true}}",
                db.num_tuples(),
                resilience.map_or("null".to_string(), |v| v.to_string()),
            ));
        }
    }
    println!("\nall flow answers matched the exact solver\n");
    if let Some(path) = json_path {
        let doc = format!(
            "{{\n  \"table\": \"flow_vs_exact_agreement\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("agreement table written to {path}\n");
    }
}

fn section_ijp() {
    println!("== 4. Independent Join Paths (experiment E9) ==\n");
    let qvc = cq::parse_query("R(x), S(x,y), R(y)").unwrap();
    let found = ijp::search_ijp(&qvc, 2, 500).expect("q_vc IJP");
    println!(
        "q_vc    : automated search found an IJP after {} partitions (relation {}, resilience {})",
        found.partitions_tried, found.certificate.relation, found.certificate.resilience
    );
    let chain = cq::parse_query("R(x,y), R(y,z)").unwrap();
    let found = ijp::search_ijp(&chain, 2, 5_000).expect("q_chain IJP");
    println!(
        "q_chain : automated search found an IJP after {} partitions (relation {}, resilience {})",
        found.partitions_tried, found.certificate.relation, found.certificate.resilience
    );
    println!(
        "\nNote: the paper's Example 60 database for z5 fails condition (5) of Definition 48\n\
         under exact recomputation (see EXPERIMENTS.md, E9)."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!("Resilience for Binary Conjunctive Queries with Self-Joins — reproduction report\n");
    section_classification();
    if smoke {
        // CI smoke: tiny instances, skip the slow gadget / IJP sections.
        section_flow_vs_exact(&[5, 6], json_path.as_deref());
    } else {
        section_gadgets();
        section_flow_vs_exact(&[8, 11], json_path.as_deref());
        section_ijp();
    }
}
