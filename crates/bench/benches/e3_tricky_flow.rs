//! Experiment E3 (Figure 3 / Section 3.3): PTIME queries that need trickier
//! flow constructions — `q_ACconf` (Proposition 12) and `q_A3perm-R`
//! (Proposition 13).
//!
//! For each query the bench sweeps instance sizes and times the dedicated
//! flow algorithm against the exact solver; agreement is asserted before
//! timing.

use bench::{standard_instance, SWEEP_DENSITY, SWEEP_NODES};
use cq::catalogue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::engine::Engine;
use resilience_core::ExactSolver;

fn bench_query(c: &mut Criterion, label: &str, query: &cq::Query, seed: u64) {
    let solver = Engine::compile(query);
    let exact = ExactSolver::new();
    let mut group = c.benchmark_group(format!("e3/{label}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &nodes in &SWEEP_NODES {
        let db = standard_instance(query, seed + nodes, nodes, SWEEP_DENSITY);
        assert_eq!(
            bench::resilience_once(&solver, &db),
            exact.resilience_value(query, &db)
        );
        group.bench_with_input(BenchmarkId::new("flow", nodes), &db, |b, db| {
            b.iter(|| bench::resilience_once(&solver, db))
        });
        group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
            b.iter(|| exact.resilience_value(query, db))
        });
    }
    group.finish();
}

fn acconf(c: &mut Criterion) {
    bench_query(c, "q_ACconf", &catalogue::q_acconf().query, 100);
}

fn a3perm_r(c: &mut Criterion) {
    bench_query(c, "q_A3perm-R", &catalogue::q_a3perm_r().query, 200);
}

criterion_group!(e3, acconf, a3perm_r);
criterion_main!(e3);
