//! Experiment E1 (Figure 1 / Section 2): the self-join-free baseline.
//!
//! Regenerates the paper's introductory classification — `q_△` and `q_T` are
//! NP-complete, `q_rats` and `q_lin` are PTIME — and measures how the
//! polynomial algorithms scale against the exact solver on `q_rats`
//! instances of growing size.

use bench::{standard_instance, SWEEP_DENSITY, SWEEP_NODES};
use cq::catalogue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::engine::Engine;
use resilience_core::ExactSolver;

fn classification_of_figure_one(c: &mut Criterion) {
    let queries = [
        catalogue::q_triangle(),
        catalogue::q_tripod(),
        catalogue::q_rats(),
        catalogue::q_lin(),
    ];
    c.bench_function("e1/classify_figure1_queries", |b| {
        b.iter(|| {
            for nq in &queries {
                let c = cq::classify(&nq.query);
                criterion::black_box(c.complexity.is_np_complete());
            }
        })
    });
}

fn rats_flow_vs_exact(c: &mut Criterion) {
    let nq = catalogue::q_rats();
    let solver = Engine::compile(&nq.query);
    let exact = ExactSolver::new();
    let mut group = c.benchmark_group("e1/rats");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &nodes in &SWEEP_NODES {
        let db = standard_instance(&nq.query, 11, nodes, SWEEP_DENSITY);
        // Correctness of the series (who wins must be meaningful).
        assert_eq!(
            bench::resilience_once(&solver, &db),
            exact.resilience_value(&nq.query, &db)
        );
        group.bench_with_input(BenchmarkId::new("flow", nodes), &db, |b, db| {
            b.iter(|| bench::resilience_once(&solver, db))
        });
        group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
            b.iter(|| exact.resilience_value(&nq.query, db))
        });
    }
    group.finish();
}

criterion_group!(e1, classification_of_figure_one, rats_flow_vs_exact);
criterion_main!(e1);
