//! Experiment E2 (Figure 2 / Section 3.1): the basic hard queries `q_vc` and
//! `q_chain`.
//!
//! Builds the Proposition 9 (Vertex Cover) and Proposition 10 (3SAT) gadgets
//! on growing inputs and measures gadget construction plus exact resilience;
//! the exponential growth of the exact phase versus the polynomial gadget
//! construction is the "shape" the paper's hardness results predict.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadgets::sat_chain::chain_gadget;
use gadgets::vc_qvc::vc_to_qvc;
use resilience_core::ExactSolver;
use satgad::min_vertex_cover_size;
use workloads::Workload;

fn qvc_gadget(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/qvc_gadget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [6usize, 9, 12] {
        let graph = Workload::new(n as u64).random_undirected_graph(n, 0.3);
        group.bench_with_input(BenchmarkId::new("construct", n), &graph, |b, g| {
            b.iter(|| vc_to_qvc(g))
        });
        let gadget = vc_to_qvc(&graph);
        // Validate the reduction before timing the solve.
        let vc = min_vertex_cover_size(&graph);
        let rho = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        assert_eq!(vc, rho);
        group.bench_with_input(BenchmarkId::new("exact_resilience", n), &gadget, |b, g| {
            b.iter(|| ExactSolver::new().resilience_value(&g.query, &g.database))
        });
    }
    group.finish();
}

fn qchain_gadget(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/qchain_gadget");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for clauses in [2usize, 3] {
        let formula = Workload::new(7).random_3cnf(4, clauses);
        group.bench_with_input(BenchmarkId::new("construct", clauses), &formula, |b, f| {
            b.iter(|| chain_gadget(f))
        });
        let gadget = chain_gadget(&formula);
        group.bench_with_input(
            BenchmarkId::new("exact_resilience", clauses),
            &gadget,
            |b, g| b.iter(|| ExactSolver::new().resilience_value(&g.query, &g.database)),
        );
    }
    group.finish();
}

criterion_group!(e2, qvc_gadget, qchain_gadget);
criterion_main!(e2);
