//! Experiment E7 (Section 5, Figures 16–17): triads with self-joins.
//!
//! Builds the Vertex-Cover-based triangle gadget (Independent Join Paths,
//! Section 9), the Proposition 57 tripod transformation and the Lemma 21
//! tagging construction for the all-R self-join variation, and measures
//! construction plus exact resilience as the source graph grows.

use cq::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadgets::sj_variation::tag_self_join_variation;
use gadgets::triangle::{triangle_gadget_from_vc, tripod_from_triangle};
use resilience_core::ExactSolver;
use satgad::min_vertex_cover_size;
use workloads::Workload;

fn triangle_and_tripod(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7/triangle");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [4usize, 6, 8] {
        let graph = Workload::new(n as u64).random_undirected_graph(n, 0.35);
        let gadget = triangle_gadget_from_vc(&graph);
        let vc = min_vertex_cover_size(&graph);
        let rho = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        assert_eq!(rho, gadget.threshold_for_cover(vc));

        group.bench_with_input(BenchmarkId::new("construct", n), &graph, |b, g| {
            b.iter(|| triangle_gadget_from_vc(g))
        });
        group.bench_with_input(BenchmarkId::new("exact_triangle", n), &gadget, |b, g| {
            b.iter(|| ExactSolver::new().resilience_value(&g.query, &g.database))
        });
        let tripod = tripod_from_triangle(&gadget.query, &gadget.database);
        group.bench_with_input(BenchmarkId::new("exact_tripod", n), &tripod, |b, g| {
            b.iter(|| ExactSolver::new().resilience_value(&g.query, &g.database))
        });
    }
    group.finish();
}

fn lemma21_tagging(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7/lemma21_tagging");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let variation = parse_query("R(x,y), R(y,z), R(z,x)").unwrap();
    for n in [4usize, 6] {
        let graph = Workload::new(40 + n as u64).random_undirected_graph(n, 0.4);
        let triangle = triangle_gadget_from_vc(&graph);
        let tagged = tag_self_join_variation(&triangle.query, &variation, &triangle.database);
        assert_eq!(
            ExactSolver::new().resilience_value(&triangle.query, &triangle.database),
            ExactSolver::new().resilience_value(&tagged.query, &tagged.database)
        );
        group.bench_with_input(
            BenchmarkId::new("tag_and_solve", n),
            &(triangle, variation.clone()),
            |b, (triangle, variation)| {
                b.iter(|| {
                    let tagged =
                        tag_self_join_variation(&triangle.query, variation, &triangle.database);
                    ExactSolver::new().resilience_value(&tagged.query, &tagged.database)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(e7, triangle_and_tripod, lemma21_tagging);
criterion_main!(e7);
