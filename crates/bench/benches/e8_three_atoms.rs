//! Experiment E8 (Section 8, Figure 7): queries with exactly three R-atoms.
//!
//! The PTIME cases (`q_TS3conf`, `q_Swx3perm-R`, `q_A3perm-R`) run their
//! dedicated flow constructions against the exact solver; the NP-complete
//! case `q_AC3conf` and the open case `q_AS3conf` are solved exactly, which
//! illustrates the complexity landscape of Figure 7.

use bench::{standard_instance, SWEEP_DENSITY, SWEEP_NODES};
use cq::catalogue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::engine::{Engine, SolveMethod};
use resilience_core::ExactSolver;

fn ptime_three_atom_cases(c: &mut Criterion) {
    let cases = [
        ("q_TS3conf", catalogue::q_ts3conf()),
        ("q_Swx3perm-R", catalogue::q_swx3perm_r()),
        ("q_A3perm-R", catalogue::q_a3perm_r()),
    ];
    for (label, nq) in cases {
        let solver = Engine::compile(&nq.query);
        let exact = ExactSolver::new();
        let mut group = c.benchmark_group(format!("e8/{label}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));
        for &nodes in &SWEEP_NODES {
            let db = standard_instance(&nq.query, 700 + nodes, nodes, SWEEP_DENSITY);
            let outcome = bench::solve_once(&solver, &db);
            assert_ne!(outcome.method, SolveMethod::ExactBranchAndBound, "{label}");
            assert_eq!(
                outcome.resilience.as_finite(),
                exact.resilience_value(&nq.query, &db)
            );
            group.bench_with_input(BenchmarkId::new("flow", nodes), &db, |b, db| {
                b.iter(|| bench::resilience_once(&solver, db))
            });
            group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
                b.iter(|| exact.resilience_value(&nq.query, db))
            });
        }
        group.finish();
    }
}

fn hard_and_open_three_atom_cases(c: &mut Criterion) {
    let cases = [
        ("q_AC3conf", catalogue::q_ac3conf()),
        ("q_AS3conf_open", catalogue::q_as3conf()),
        ("q_AC3cc", catalogue::q_ac3cc()),
    ];
    for (label, nq) in cases {
        let solver = Engine::compile(&nq.query);
        let mut group = c.benchmark_group(format!("e8/{label}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));
        for &nodes in &SWEEP_NODES[..2] {
            let db = standard_instance(&nq.query, 800 + nodes, nodes, SWEEP_DENSITY);
            group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
                b.iter(|| bench::resilience_once(&solver, db))
            });
        }
        group.finish();
    }
}

criterion_group!(e8, ptime_three_atom_cases, hard_and_open_three_atom_cases);
criterion_main!(e8);
