//! Experiment E9 (Section 9, Figures 8, 18, 19): Independent Join Paths.
//!
//! Benchmarks IJP verification (Definition 48) on the paper's example
//! databases and the automated partition-enumeration search of Appendix C.2
//! on `q_vc` and `q_chain`.

use cq::parse_query;
use criterion::{criterion_group, criterion_main, Criterion};
use database::Database;
use resilience_core::ijp::{check_ijp, search_ijp};

fn example_databases(c: &mut Criterion) {
    // Example 58 (q_vc) and Example 59 (q_triangle).
    let qvc = parse_query("R(x), S(x,y), R(y)").unwrap();
    let mut d58 = Database::for_query(&qvc);
    d58.insert_named("R", &[1u64]);
    d58.insert_named("S", &[1u64, 2]);
    d58.insert_named("R", &[2u64]);

    let triangle = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
    let mut d59 = Database::for_query(&triangle);
    for (rel, vals) in [
        ("R", [1u64, 2]),
        ("R", [4, 2]),
        ("R", [4, 5]),
        ("S", [2, 3]),
        ("S", [5, 3]),
        ("T", [3, 1]),
        ("T", [3, 4]),
    ] {
        d59.insert_named(rel, &vals);
    }
    assert!(check_ijp(&qvc, &d58));
    assert!(check_ijp(&triangle, &d59));

    c.bench_function("e9/verify_example58_qvc", |b| {
        b.iter(|| check_ijp(&qvc, &d58))
    });
    c.bench_function("e9/verify_example59_triangle", |b| {
        b.iter(|| check_ijp(&triangle, &d59))
    });
}

fn automated_search(c: &mut Criterion) {
    let qvc = parse_query("R(x), S(x,y), R(y)").unwrap();
    let chain = parse_query("R(x,y), R(y,z)").unwrap();
    assert!(search_ijp(&qvc, 2, 500).is_some());
    assert!(search_ijp(&chain, 2, 5_000).is_some());

    let mut group = c.benchmark_group("e9/search");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("qvc", |b| b.iter(|| search_ijp(&qvc, 2, 500)));
    group.bench_function("qchain", |b| b.iter(|| search_ijp(&chain, 2, 5_000)));
    group.finish();
}

criterion_group!(e9, example_databases, automated_search);
criterion_main!(e9);
