//! Experiment E6 (Sections 7.2–7.4): the PTIME sides of the two-R-atom
//! dichotomy — confluences without exogenous paths, unbound permutations and
//! REP queries — plus the hard bound permutation solved exactly.
//!
//! Each PTIME case sweeps instance sizes, asserting flow/exact agreement and
//! timing both; the bound permutation (`q_ABperm`) is solved with the exact
//! solver only, which is the expected exponential-versus-polynomial contrast.

use bench::{standard_instance, SWEEP_DENSITY, SWEEP_NODES};
use cq::catalogue;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilience_core::engine::Engine;
use resilience_core::ExactSolver;

fn ptime_case(c: &mut Criterion, label: &str, query: &cq::Query, seed: u64) {
    let solver = Engine::compile(query);
    assert!(solver.classification().complexity.is_ptime(), "{label}");
    let exact = ExactSolver::new();
    let mut group = c.benchmark_group(format!("e6/{label}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &nodes in &SWEEP_NODES {
        let db = standard_instance(query, seed + nodes, nodes, SWEEP_DENSITY);
        assert_eq!(
            bench::resilience_once(&solver, &db),
            exact.resilience_value(query, &db)
        );
        group.bench_with_input(BenchmarkId::new("flow", nodes), &db, |b, db| {
            b.iter(|| bench::resilience_once(&solver, db))
        });
        group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
            b.iter(|| exact.resilience_value(query, db))
        });
    }
    group.finish();
}

fn confluence(c: &mut Criterion) {
    ptime_case(c, "confluence_qACconf", &catalogue::q_acconf().query, 300);
}

fn unbound_permutation(c: &mut Criterion) {
    ptime_case(c, "unbound_perm_qAperm", &catalogue::q_aperm().query, 400);
}

fn rep_z3(c: &mut Criterion) {
    ptime_case(c, "rep_z3", &catalogue::z3().query, 500);
}

fn bound_permutation_exact(c: &mut Criterion) {
    let nq = catalogue::q_abperm();
    let solver = Engine::compile(&nq.query);
    assert!(solver.classification().complexity.is_np_complete());
    let mut group = c.benchmark_group("e6/bound_perm_qABperm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &nodes in &SWEEP_NODES {
        let db = standard_instance(&nq.query, 600 + nodes, nodes, SWEEP_DENSITY);
        group.bench_with_input(BenchmarkId::new("exact", nodes), &db, |b, db| {
            b.iter(|| bench::resilience_once(&solver, db))
        });
    }
    group.finish();
}

criterion_group!(
    e6,
    confluence,
    unbound_permutation,
    rep_z3,
    bound_permutation_exact
);
criterion_main!(e6);
