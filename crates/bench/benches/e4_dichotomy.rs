//! Experiment E4 (Figure 5 / Theorem 37): the two-R-atom dichotomy.
//!
//! Benchmarks the dichotomy classifier itself over the whole named-query
//! catalogue (the decision procedure Theorem 37 promises to be polynomial)
//! and over a synthetic family of two-atom self-join queries; asserts that
//! the classification matches the paper before timing.

use cq::catalogue::{all_named_queries, PaperClass};
use cq::{classify, QueryBuilder};
use criterion::{criterion_group, criterion_main, Criterion};

fn classify_catalogue(c: &mut Criterion) {
    let catalogue = all_named_queries();
    // Validate agreement with the paper once, outside the timing loop.
    for nq in &catalogue {
        let got = classify(&nq.query).complexity;
        let ok = match nq.paper_class {
            PaperClass::PTime => got.is_ptime(),
            PaperClass::NpComplete => got.is_np_complete(),
            PaperClass::Open => got.is_open(),
        };
        assert!(ok, "{} misclassified", nq.name);
    }
    c.bench_function("e4/classify_full_catalogue", |b| {
        b.iter(|| {
            for nq in &catalogue {
                criterion::black_box(classify(&nq.query));
            }
        })
    });
}

fn classify_synthetic_two_atom_family(c: &mut Criterion) {
    // Every way two binary R-atoms over four variables can interact, with a
    // unary anchor; this is the raw material of Figure 5.
    let vars = ["x", "y", "z", "w"];
    let mut family = Vec::new();
    for a in 0..4 {
        for b in 0..4 {
            for d in 0..4 {
                for e in 0..4 {
                    let q = QueryBuilder::new()
                        .atom("A", &[vars[0]])
                        .atom("R", &[vars[a], vars[b]])
                        .atom("R", &[vars[d], vars[e]])
                        .build();
                    family.push(q);
                }
            }
        }
    }
    c.bench_function("e4/classify_synthetic_two_atom_family", |b| {
        b.iter(|| {
            let mut hard = 0usize;
            for q in &family {
                if classify(q).complexity.is_np_complete() {
                    hard += 1;
                }
            }
            criterion::black_box(hard)
        })
    });
}

criterion_group!(e4, classify_catalogue, classify_synthetic_two_atom_family);
criterion_main!(e4);
