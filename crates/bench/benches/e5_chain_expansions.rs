//! Experiment E5 (Figure 6a / Section 7.1): the eight unary expansions of
//! `q_chain` are all NP-complete (Lemmas 52–54).
//!
//! Builds the 3SAT gadget for each expansion and measures construction and
//! exact solving; the validation (satisfiable ⇔ resilience equals the
//! threshold) is asserted once per expansion before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadgets::sat_chain::{chain_expansion_gadget, ChainExpansion};
use resilience_core::ExactSolver;
use satgad::CnfFormula;

fn formula() -> CnfFormula {
    CnfFormula::from_clauses(
        3,
        &[
            &[(0, true), (1, true), (2, true)],
            &[(0, false), (1, true), (2, false)],
        ],
    )
}

fn expansions(c: &mut Criterion) {
    let f = formula();
    let satisfiable = f.is_satisfiable();
    let mut group = c.benchmark_group("e5/chain_expansions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for expansion in ChainExpansion::all() {
        let gadget = chain_expansion_gadget(&f, expansion);
        let rho = ExactSolver::new()
            .resilience_value(&gadget.query, &gadget.database)
            .unwrap();
        if gadget.threshold_is_exact {
            assert_eq!(satisfiable, rho == gadget.threshold, "{expansion:?}");
        } else {
            // Expansions reuse the plain structure: resilience never exceeds
            // the plain threshold (see gadgets::sat_chain docs).
            assert!(rho <= gadget.threshold, "{expansion:?}");
        }
        group.bench_with_input(
            BenchmarkId::new("construct", format!("{expansion:?}")),
            &f,
            |b, f| b.iter(|| chain_expansion_gadget(f, expansion)),
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{expansion:?}")),
            &gadget,
            |b, g| b.iter(|| ExactSolver::new().resilience_value(&g.query, &g.database)),
        );
    }
    group.finish();
}

criterion_group!(e5, expansions);
criterion_main!(e5);
