//! Exact resilience via minimum hitting set over the witness hypergraph.
//!
//! Resilience (Definition 1) asks for a minimum set of endogenous tuples
//! intersecting every witness. This is a minimum hitting set problem over
//! the witness sets, solved here by branch and bound:
//!
//! * the greedy hitting set provides an initial upper bound;
//! * a greedy packing of pairwise-disjoint witness sets provides a lower
//!   bound at every node;
//! * branching picks an uncovered witness with the fewest remaining tuples
//!   and tries each of its tuples in turn.
//!
//! Internally the solver works in the dense `0..k` tuple space maintained by
//! the witness set's CSR index (no per-solve renumbering map), and every
//! witness set becomes a packed `u64` bitset, so the cover and packing
//! checks at every branch-and-bound node are word operations over flat
//! arrays rather than hash probes.
//!
//! The solver is exponential in the worst case — the paper proves the
//! problem NP-complete for most self-join queries — but it comfortably
//! handles the instance sizes used to validate the polynomial algorithms and
//! the hardness gadgets (hundreds of tuples, thousands of witnesses).

use cq::Query;
use database::{FxHashMap, TupleId, TupleStore, WitnessSet};

/// The branch-and-bound search hit its node budget before proving
/// optimality. Returned by the fallible [`ExactSolver::try_resilience`]
/// family; the panicking wrappers keep the legacy contract (a loud panic
/// rather than a silently wrong answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Nodes explored before the search was cut off (equals the budget).
    pub nodes_explored: usize,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact resilience search exceeded {} nodes",
            self.nodes_explored
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Result of an exact resilience computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactResult {
    /// The resilience `ρ(q, D)`, or `None` when the query cannot be made
    /// false (some witness uses only exogenous tuples).
    pub resilience: Option<usize>,
    /// A minimum contingency set witnessing the value (empty when the query
    /// is already false).
    pub contingency: Vec<TupleId>,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Exact resilience solver.
#[derive(Clone, Debug)]
pub struct ExactSolver {
    /// Upper limit on branch-and-bound nodes before giving up (`None` in the
    /// result is *not* used for this; the solver panics instead, because a
    /// silent wrong answer would poison gadget validation).
    pub node_limit: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            node_limit: 50_000_000,
        }
    }
}

impl ExactSolver {
    /// Creates a solver with the default node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a custom node limit.
    pub fn with_node_limit(node_limit: usize) -> Self {
        ExactSolver { node_limit }
    }

    /// Computes the exact resilience of `q` over `db`.
    pub fn resilience<S: TupleStore + ?Sized>(&self, q: &Query, db: &S) -> ExactResult {
        let ws = WitnessSet::build(q, db);
        self.resilience_of_witnesses(&ws)
    }

    /// Fallible variant of [`ExactSolver::resilience`]: returns
    /// `Err(BudgetExhausted)` instead of panicking when the node budget runs
    /// out.
    pub fn try_resilience<S: TupleStore + ?Sized>(
        &self,
        q: &Query,
        db: &S,
    ) -> Result<ExactResult, BudgetExhausted> {
        let ws = WitnessSet::build(q, db);
        self.try_resilience_of_witnesses(&ws)
    }

    /// Computes a minimum hitting set of the witness hypergraph directly.
    ///
    /// # Panics
    /// Panics if the node budget is exhausted (see
    /// [`ExactSolver::try_resilience_of_witnesses`] for the fallible form).
    pub fn resilience_of_witnesses(&self, ws: &WitnessSet) -> ExactResult {
        self.try_resilience_of_witnesses(ws)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible minimum hitting set over the witness hypergraph: returns
    /// `Err(BudgetExhausted)` when the branch-and-bound search would exceed
    /// the solver's node budget.
    pub fn try_resilience_of_witnesses(
        &self,
        ws: &WitnessSet,
    ) -> Result<ExactResult, BudgetExhausted> {
        if ws.is_empty() {
            return Ok(ExactResult {
                resilience: Some(0),
                contingency: Vec::new(),
                nodes_explored: 0,
            });
        }
        if ws.has_undeletable_witness() {
            return Ok(ExactResult {
                resilience: None,
                contingency: Vec::new(),
                nodes_explored: 0,
            });
        }
        // The witness set's CSR index already renumbers the relevant tuples
        // into a dense `0..k` space; all bitsets below are indexed in it.
        let universe = ws.relevant_tuples();
        let blocks = universe.len().div_ceil(64);

        let sets_elems: Vec<Vec<u32>> = ws.reduced_dense_sets();
        let sets_bits: Vec<Vec<u64>> = sets_elems
            .iter()
            .map(|s| {
                let mut bits = vec![0u64; blocks];
                for &e in s {
                    bits[(e / 64) as usize] |= 1u64 << (e % 64);
                }
                bits
            })
            .collect();

        let best = greedy_hitting_set_dense(&sets_elems, universe.len());
        let mut state = SearchState {
            sets_elems,
            sets_bits,
            chosen: vec![0u64; blocks],
            scratch: vec![0u64; blocks],
            best,
            node_limit: self.node_limit,
            nodes: 0,
        };
        let mut current: Vec<u32> = Vec::new();
        if !state.branch(&mut current) {
            return Err(BudgetExhausted {
                nodes_explored: state.nodes,
            });
        }

        let mut contingency: Vec<TupleId> =
            state.best.iter().map(|&e| universe[e as usize]).collect();
        contingency.sort_unstable();
        Ok(ExactResult {
            resilience: Some(contingency.len()),
            contingency,
            nodes_explored: state.nodes,
        })
    }

    /// Convenience: just the numeric resilience.
    pub fn resilience_value<S: TupleStore + ?Sized>(&self, q: &Query, db: &S) -> Option<usize> {
        self.resilience(q, db).resilience
    }

    /// Decision version (Definition 1): is `(D, k) ∈ RES(q)`?
    ///
    /// Requires `D |= q` (otherwise the instance is not in the decision
    /// problem at all, mirroring the paper's definition).
    pub fn decide<S: TupleStore + ?Sized>(&self, q: &Query, db: &S, k: usize) -> bool {
        let ws = WitnessSet::build(q, db);
        if ws.is_empty() {
            return false; // D does not satisfy q
        }
        match self.resilience_of_witnesses(&ws).resilience {
            Some(r) => r <= k,
            None => false,
        }
    }
}

/// Does the bitset intersect the current selection? One AND per word.
#[inline]
fn intersects(bits: &[u64], chosen: &[u64]) -> bool {
    bits.iter().zip(chosen).any(|(&b, &c)| b & c != 0)
}

struct SearchState {
    /// Per reduced witness set, its dense elements (for branching).
    sets_elems: Vec<Vec<u32>>,
    /// Per reduced witness set, the same elements as a packed bitset.
    sets_bits: Vec<Vec<u64>>,
    /// Bitset of the tuples selected along the current branch.
    chosen: Vec<u64>,
    /// Scratch buffer for the lower-bound packing (no per-node allocation).
    scratch: Vec<u64>,
    best: Vec<u32>,
    node_limit: usize,
    nodes: usize,
}

impl SearchState {
    /// Explores one branch-and-bound node. Returns `false` when the node
    /// budget is exhausted (the search is then abandoned wholesale).
    fn branch(&mut self, current: &mut Vec<u32>) -> bool {
        if self.nodes >= self.node_limit {
            return false;
        }
        self.nodes += 1;
        if current.len() + self.lower_bound() >= self.best.len() {
            return true;
        }
        // Pick the uncovered set with the fewest tuples.
        let mut pick: Option<usize> = None;
        for (i, bits) in self.sets_bits.iter().enumerate() {
            if intersects(bits, &self.chosen) {
                continue;
            }
            match pick {
                Some(p) if self.sets_elems[p].len() <= self.sets_elems[i].len() => {}
                _ => pick = Some(i),
            }
        }
        let Some(pick) = pick else {
            // Everything covered: `current` is a hitting set.
            if current.len() < self.best.len() {
                self.best = current.clone();
            }
            return true;
        };
        for j in 0..self.sets_elems[pick].len() {
            let e = self.sets_elems[pick][j];
            current.push(e);
            self.chosen[(e / 64) as usize] |= 1u64 << (e % 64);
            let alive = self.branch(current);
            self.chosen[(e / 64) as usize] &= !(1u64 << (e % 64));
            current.pop();
            if !alive {
                return false;
            }
        }
        true
    }

    /// Lower bound: greedily pack witness sets that are pairwise disjoint and
    /// disjoint from the current selection — each needs its own deletion.
    fn lower_bound(&mut self) -> usize {
        self.scratch.copy_from_slice(&self.chosen);
        let mut bound = 0usize;
        for bits in &self.sets_bits {
            if intersects(bits, &self.scratch) {
                continue;
            }
            bound += 1;
            for (s, &b) in self.scratch.iter_mut().zip(bits) {
                *s |= b;
            }
        }
        bound
    }
}

/// Greedy hitting set over dense element ids: repeatedly pick the element
/// covering the most uncovered sets (ties broken towards the smaller id).
pub(crate) fn greedy_hitting_set_dense(sets: &[Vec<u32>], universe: usize) -> Vec<u32> {
    let mut covered = vec![false; sets.len()];
    let mut remaining = sets.len();
    let mut counts = vec![0u32; universe];
    let mut result: Vec<u32> = Vec::new();
    while remaining > 0 {
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, set) in sets.iter().enumerate() {
            if covered[i] {
                continue;
            }
            for &e in set {
                counts[e as usize] += 1;
            }
        }
        let (best, &best_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(e, &c)| (c, std::cmp::Reverse(e)))
            .expect("non-empty universe while sets remain uncovered");
        // A zero count means every remaining uncovered set is empty and can
        // never be hit.
        assert!(best_count > 0, "uncovered sets are non-empty");
        let best = best as u32;
        result.push(best);
        for (i, set) in sets.iter().enumerate() {
            if !covered[i] && set.contains(&best) {
                covered[i] = true;
                remaining -= 1;
            }
        }
    }
    result
}

/// Greedy hitting set: repeatedly pick the tuple covering the most uncovered
/// witness sets. Provides the initial upper bound for branch and bound and a
/// standalone approximation useful for large hard instances.
#[deprecated(
    since = "0.1.0",
    note = "use resilience_core::approx::greedy_upper_bound, which runs in the witness set's \
            dense tuple space without building a renumbering map"
)]
pub fn greedy_hitting_set(sets: &[Vec<TupleId>]) -> Vec<TupleId> {
    // Renumber into a dense space, run the dense greedy, map back.
    let mut universe: Vec<TupleId> = sets.iter().flatten().copied().collect();
    universe.sort_unstable();
    universe.dedup();
    let dense: FxHashMap<TupleId, u32> = universe
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    let dense_sets: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| s.iter().map(|t| dense[t]).collect())
        .collect();
    greedy_hitting_set_dense(&dense_sets, universe.len())
        .into_iter()
        .map(|e| universe[e as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;
    use database::Database;

    fn solve(q: &str, rows: &[(&str, &[u64])]) -> Option<usize> {
        let q = parse_query(q).unwrap();
        let mut db = Database::for_query(&q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        ExactSolver::new().resilience_value(&q, &db)
    }

    #[test]
    fn paper_chain_example_has_resilience_two() {
        // D = {R(1,2), R(2,3), R(3,3)}: witnesses (1,2,3),(2,3,3),(3,3,3).
        // R(3,3) alone kills the last two; R(1,2) or R(2,3) kills the first.
        let r = solve(
            "R(x,y), R(y,z)",
            &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn false_query_has_resilience_zero() {
        let r = solve("R(x,y), R(y,z)", &[("R", &[1, 2])]);
        assert_eq!(r, Some(0));
    }

    #[test]
    fn example_11_domination_subtlety() {
        // D = {A(1),A(5),R(1,2),R(2,3),R(3,1),R(5,1),R(2,5)} for
        // q_sj1rats :- A(x),R(x,y),R(y,z),R(z,x): the minimum contingency set
        // is {R(1,2)}, size 1 (Example 11).
        let r = solve(
            "A(x), R(x,y), R(y,z), R(z,x)",
            &[
                ("A", &[1]),
                ("A", &[5]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 1]),
                ("R", &[5, 1]),
                ("R", &[2, 5]),
            ],
        );
        assert_eq!(r, Some(1));
    }

    #[test]
    fn exogenous_relation_forces_other_deletions() {
        // q :- A(x), R^x(x,y): R-tuples cannot be deleted, so every A-tuple
        // participating in a witness must go.
        let r = solve(
            "A(x), R^x(x,y)",
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
                ("R", &[1, 10]),
                ("R", &[2, 20]),
            ],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn fully_exogenous_witness_is_unfalsifiable() {
        let r = solve("R^x(x,y)", &[("R", &[1, 2])]);
        assert_eq!(r, None);
    }

    #[test]
    fn triangle_instance() {
        // Two disjoint triangles: resilience 2 (one edge each).
        let r = solve(
            "R(x,y), S(y,z), T(z,x)",
            &[
                ("R", &[1, 2]),
                ("S", &[2, 3]),
                ("T", &[3, 1]),
                ("R", &[4, 5]),
                ("S", &[5, 6]),
                ("T", &[6, 4]),
            ],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn shared_tuple_across_witnesses_is_preferred() {
        // Star: R(0,i) for i=1..5 and S(i, 100): q :- R(x,y), S(y,z).
        // Deleting the 5 S-tuples or the 5 R-tuples is forced... actually
        // each witness is {R(0,i), S(i,100)}, pairwise disjoint across i, so
        // resilience is 5.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 1..=5u64 {
            db.insert_named("R", &[0, i]);
            db.insert_named("S", &[i, 100]);
        }
        assert_eq!(ExactSolver::new().resilience_value(&q, &db), Some(5));
    }

    #[test]
    fn hub_tuple_is_selected_once() {
        // All witnesses share R(0,1): resilience 1.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[0, 1]);
        for i in 0..6u64 {
            db.insert_named("S", &[1, 100 + i]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        assert_eq!(result.resilience, Some(1));
        assert_eq!(result.contingency.len(), 1);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.relation_of(result.contingency[0]), r);
    }

    #[test]
    fn contingency_set_is_valid() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (2, 5), (5, 5)] {
            db.insert_named("R", &[a as u64, b as u64]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        let gamma: std::collections::HashSet<TupleId> =
            result.contingency.iter().copied().collect();
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_contingency_set(&gamma));
        assert_eq!(result.resilience, Some(gamma.len()));
        // And removing the tuples really falsifies the query.
        let smaller = db.without(&gamma);
        assert!(!database::evaluate(&q, &smaller));
    }

    #[test]
    fn decision_version_matches_optimum() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        let solver = ExactSolver::new();
        assert!(!solver.decide(&q, &db, 1));
        assert!(solver.decide(&q, &db, 2));
        assert!(solver.decide(&q, &db, 3));
        // A database not satisfying q is not in RES(q) for any k.
        let empty = Database::for_query(&q);
        assert!(!solver.decide(&q, &empty, 0));
    }

    #[test]
    #[allow(deprecated)]
    fn greedy_hitting_set_hits_everything() {
        let sets = vec![
            vec![TupleId(1), TupleId(2)],
            vec![TupleId(2), TupleId(3)],
            vec![TupleId(4)],
        ];
        let hs = greedy_hitting_set(&sets);
        for set in &sets {
            assert!(set.iter().any(|t| hs.contains(t)));
        }
        assert!(hs.len() <= 3);
    }

    #[test]
    #[should_panic(expected = "uncovered sets are non-empty")]
    #[allow(deprecated)]
    fn greedy_hitting_set_panics_on_unhittable_empty_set() {
        // An empty set can never be hit; a silent hang or wrong answer here
        // would poison every caller, so the contract is a loud panic.
        greedy_hitting_set(&[vec![], vec![TupleId(1)]]);
    }

    #[test]
    fn bitsets_span_more_than_one_block() {
        // >64 relevant tuples forces multi-block bitsets: a star of 70
        // disjoint witnesses has resilience 70.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 1..=70u64 {
            db.insert_named("R", &[i, 1000 + i]);
            db.insert_named("S", &[1000 + i, 2000 + i]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        assert_eq!(result.resilience, Some(70));
        let gamma: std::collections::HashSet<TupleId> =
            result.contingency.iter().copied().collect();
        assert!(WitnessSet::build(&q, &db).is_contingency_set(&gamma));
    }

    #[test]
    fn vertex_cover_instance_through_qvc() {
        // q_vc over a 5-cycle graph: minimum vertex cover of C5 is 3.
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..5u64 {
            db.insert_named("R", &[v]);
            db.insert_named("S", &[v, (v + 1) % 5]);
        }
        assert_eq!(ExactSolver::new().resilience_value(&q, &db), Some(3));
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn node_limit_is_enforced() {
        // An adversarial instance with a tiny node limit must panic rather
        // than silently return a wrong answer.
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..12u64 {
            db.insert_named("R", &[v]);
            for w in 0..12u64 {
                if v < w {
                    db.insert_named("S", &[v, w]);
                }
            }
        }
        ExactSolver::with_node_limit(3).resilience(&q, &db);
    }
}
