//! Exact resilience via minimum hitting set over the witness hypergraph.
//!
//! Resilience (Definition 1) asks for a minimum set of endogenous tuples
//! intersecting every witness. This is a minimum hitting set problem over
//! the witness sets, solved here by branch and bound:
//!
//! * the greedy hitting set provides an initial upper bound;
//! * a greedy packing of pairwise-disjoint witness sets provides a lower
//!   bound at every node;
//! * branching picks an uncovered witness with the fewest remaining tuples
//!   and tries each of its tuples in turn.
//!
//! Internally the solver works in the dense `0..k` tuple space maintained by
//! the witness set's CSR index (no per-solve renumbering map) and consumes
//! the reduced sets straight from the flat [`ReducedSets`] arena; every
//! witness set becomes a packed `u64` bitset in one flat arena, so the cover
//! and packing checks at every branch-and-bound node are word operations
//! over flat arrays rather than hash probes. All per-solve buffers live in a
//! caller-owned [`ExactScratch`], so repeated solves (deletion-session
//! steps, batches) allocate nothing per witness.
//!
//! [`ExactSolver::solve_with_incumbent`] additionally accepts an *incumbent*
//! — a known feasible hitting set, e.g. the previous step's contingency set
//! restricted to live tuples in a deletion session. A feasible incumbent is
//! an upper bound by definition, so it can seed the search bound; when its
//! size already matches the disjoint-packing lower bound the search is
//! skipped entirely. An infeasible ("stale") incumbent is detected and
//! ignored, so it can never prune the true optimum.
//!
//! The solver is exponential in the worst case — the paper proves the
//! problem NP-complete for most self-join queries — but it comfortably
//! handles the instance sizes used to validate the polynomial algorithms and
//! the hardness gadgets (hundreds of tuples, thousands of witnesses).

use crate::cancel::CancelToken;
use cq::Query;
use database::{ReducedSets, TupleId, TupleStore, WitnessSet};

/// The branch-and-bound search hit its node budget before proving
/// optimality. Returned by the fallible [`ExactSolver::try_resilience`]
/// family; the panicking wrappers keep the legacy contract (a loud panic
/// rather than a silently wrong answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Nodes explored before the search was cut off (equals the budget).
    pub nodes_explored: usize,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact resilience search exceeded {} nodes",
            self.nodes_explored
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Anytime state of a search abandoned by a [`CancelToken`]: the bounds the
/// search had already established when it was interrupted. The upper bound
/// is always a *feasible* hitting set size (the greedy/incumbent seed, or a
/// better solution found during the search); the lower bound is the root
/// disjoint-packing bound. `lower <= optimum <= upper` by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelledSearch {
    /// Branch-and-bound nodes explored before the interruption.
    pub nodes_explored: usize,
    /// Root packing lower bound on the resilience.
    pub lower_bound: usize,
    /// Size of the best feasible hitting set found so far (an upper bound).
    pub upper_bound: usize,
}

/// Why a cancellable exact solve stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactInterrupt {
    /// The node budget ran out (the pre-existing failure mode).
    Budget(BudgetExhausted),
    /// The caller's [`CancelToken`] fired; anytime bounds are attached.
    Cancelled(CancelledSearch),
}

/// Result of an exact resilience computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactResult {
    /// The resilience `ρ(q, D)`, or `None` when the query cannot be made
    /// false (some witness uses only exogenous tuples).
    pub resilience: Option<usize>,
    /// A minimum contingency set witnessing the value (empty when the query
    /// is already false).
    pub contingency: Vec<TupleId>,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Outcome of a dense-space exact solve
/// ([`ExactSolver::solve_with_incumbent`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DenseExactOutcome {
    /// The resilience, or `None` when some reduced set is empty (the query
    /// cannot be falsified).
    pub resilience: Option<usize>,
    /// A minimum hitting set in dense ids, sorted ascending.
    pub contingency: Vec<u32>,
    /// Branch-and-bound nodes explored (0 when the search was skipped).
    pub nodes_explored: usize,
    /// Whether a verified-feasible incumbent seeded the search bound.
    pub incumbent_seeded: bool,
    /// Whether the incumbent matched the fresh packing lower bound, proving
    /// it optimal without any search.
    pub short_circuit: bool,
}

/// Reusable buffers for [`ExactSolver::solve_with_incumbent`]: bitsets,
/// greedy working state and the branch stack all survive across solves, so a
/// warm caller (the engine's sessions and batches) performs no per-witness
/// allocation.
#[derive(Clone, Debug, Default)]
pub struct ExactScratch {
    /// Flat bitset arena (`num_sets * blocks` words).
    bits: Vec<u64>,
    /// Tuples selected along the current branch (one block span).
    chosen: Vec<u64>,
    /// Packing scratch for the lower bound / incumbent check.
    pack: Vec<u64>,
    /// Greedy: per-set covered flags and per-element uncovered counts.
    covered: Vec<bool>,
    counts: Vec<u32>,
    /// Greedy result (the cold initial bound).
    greedy: Vec<u32>,
    /// Branch stack.
    current: Vec<u32>,
    /// Best hitting set found so far.
    best: Vec<u32>,
    /// Bool mask over the dense universe (incumbent screening / packing).
    marks: Vec<bool>,
}

impl ExactScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Exact resilience solver.
#[derive(Clone, Debug)]
pub struct ExactSolver {
    /// Upper limit on branch-and-bound nodes before giving up (`None` in the
    /// result is *not* used for this; the solver panics instead, because a
    /// silent wrong answer would poison gadget validation).
    pub node_limit: usize,
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver {
            node_limit: 50_000_000,
        }
    }
}

impl ExactSolver {
    /// Creates a solver with the default node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a custom node limit.
    pub fn with_node_limit(node_limit: usize) -> Self {
        ExactSolver { node_limit }
    }

    /// Computes the exact resilience of `q` over `db`.
    pub fn resilience<S: TupleStore + ?Sized>(&self, q: &Query, db: &S) -> ExactResult {
        let ws = WitnessSet::build(q, db);
        self.resilience_of_witnesses(&ws)
    }

    /// Fallible variant of [`ExactSolver::resilience`]: returns
    /// `Err(BudgetExhausted)` instead of panicking when the node budget runs
    /// out.
    pub fn try_resilience<S: TupleStore + ?Sized>(
        &self,
        q: &Query,
        db: &S,
    ) -> Result<ExactResult, BudgetExhausted> {
        let ws = WitnessSet::build(q, db);
        self.try_resilience_of_witnesses(&ws)
    }

    /// Computes a minimum hitting set of the witness hypergraph directly.
    ///
    /// # Panics
    /// Panics if the node budget is exhausted (see
    /// [`ExactSolver::try_resilience_of_witnesses`] for the fallible form).
    pub fn resilience_of_witnesses(&self, ws: &WitnessSet) -> ExactResult {
        self.try_resilience_of_witnesses(ws)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible minimum hitting set over the witness hypergraph: returns
    /// `Err(BudgetExhausted)` when the branch-and-bound search would exceed
    /// the solver's node budget.
    pub fn try_resilience_of_witnesses(
        &self,
        ws: &WitnessSet,
    ) -> Result<ExactResult, BudgetExhausted> {
        // The witness set's CSR index already renumbers the relevant tuples
        // into a dense `0..k` space; the reduced sets and all bitsets are
        // indexed in it.
        let reduced = ws.reduced();
        let dense = self.solve_with_incumbent(&reduced, None, &mut ExactScratch::default())?;
        let universe = ws.relevant_tuples();
        Ok(ExactResult {
            resilience: dense.resilience,
            contingency: dense
                .contingency
                .iter()
                .map(|&e| universe[e as usize])
                .collect(),
            nodes_explored: dense.nodes_explored,
        })
    }

    /// Minimum hitting set over prebuilt [`ReducedSets`], in dense tuple-id
    /// space, with an optional **incumbent** warm start and caller-owned
    /// scratch buffers (no per-witness allocation).
    ///
    /// `incumbent` is a candidate feasible hitting set in dense ids (sorted
    /// ascending). It is *verified* against `reduced` before use: if it hits
    /// every set it is by definition an upper bound on the optimum, so it
    /// seeds the branch-and-bound bound (and is returned outright when its
    /// size matches the disjoint-packing lower bound — the search is then
    /// skipped). If it misses some set — a stale incumbent from a state the
    /// current sets did not evolve from monotonically — it is ignored
    /// entirely, so a stale incumbent can never prune the true optimum.
    ///
    /// Without an incumbent this is exactly the cold solve: the greedy
    /// hitting set seeds the bound and the search always runs.
    pub fn solve_with_incumbent(
        &self,
        reduced: &ReducedSets,
        incumbent: Option<&[u32]>,
        scratch: &mut ExactScratch,
    ) -> Result<DenseExactOutcome, BudgetExhausted> {
        self.solve_with_incumbent_cancellable(reduced, incumbent, scratch, None)
            .map_err(|e| match e {
                ExactInterrupt::Budget(b) => b,
                ExactInterrupt::Cancelled(_) => {
                    unreachable!("no token was supplied, so the search cannot be cancelled")
                }
            })
    }

    /// [`ExactSolver::solve_with_incumbent`] with an optional [`CancelToken`]
    /// polled every 1024 branch-and-bound nodes. On cancellation the error
    /// carries the anytime bounds established so far (see
    /// [`CancelledSearch`]). With `cancel = None` the search is identical to
    /// the uncancellable entry point — same branch order, same node counts —
    /// so completed solves cannot differ between the two.
    pub fn solve_with_incumbent_cancellable(
        &self,
        reduced: &ReducedSets,
        incumbent: Option<&[u32]>,
        scratch: &mut ExactScratch,
        cancel: Option<&CancelToken>,
    ) -> Result<DenseExactOutcome, ExactInterrupt> {
        if reduced.is_empty() {
            return Ok(DenseExactOutcome {
                resilience: Some(0),
                ..DenseExactOutcome::default()
            });
        }
        if reduced.has_unhittable_set() {
            return Ok(DenseExactOutcome::default());
        }
        let universe = reduced.universe();
        let blocks = universe.div_ceil(64);
        let num_sets = reduced.len();

        // Incumbent screening runs BEFORE any bitset or greedy work: a
        // short-circuited step then costs two O(total-elements) passes over
        // the CSR arena and nothing else.
        let mut feasible_incumbent: Option<&[u32]> = None;
        let mut skip_greedy = false;
        let mut root_lb: Option<usize> = None;
        if let Some(inc) = incumbent {
            if incumbent_is_feasible(reduced, inc, &mut scratch.marks) {
                feasible_incumbent = Some(inc);
                // Fresh lower bound: a maximal packing of pairwise-disjoint
                // sets. If the incumbent already matches it, it is optimal
                // and the search (and its setup) are skipped entirely.
                let lb = csr_packing_bound(reduced, &mut scratch.marks);
                root_lb = Some(lb);
                if inc.len() == lb {
                    let mut contingency = inc.to_vec();
                    contingency.sort_unstable();
                    return Ok(DenseExactOutcome {
                        resilience: Some(contingency.len()),
                        contingency,
                        nodes_explored: 0,
                        incumbent_seeded: true,
                        short_circuit: true,
                    });
                }
                // An incumbent within a couple of deletions of the lower
                // bound is already a near-optimal seed: the greedy pass
                // cannot tighten the bound by much, so skip it.
                skip_greedy = inc.len() <= lb + 2;
            }
        }
        // A cancellable search reports the root packing bound as its anytime
        // lower bound; compute it once here when the incumbent path above
        // did not already. (Token-free solves skip this pass entirely.)
        if cancel.is_some() && root_lb.is_none() {
            root_lb = Some(csr_packing_bound(reduced, &mut scratch.marks));
        }

        // Flat bitset arena: set `i` occupies `bits[i*blocks..(i+1)*blocks]`.
        scratch.bits.clear();
        scratch.bits.resize(num_sets * blocks, 0);
        for (i, s) in reduced.iter().enumerate() {
            let row = &mut scratch.bits[i * blocks..(i + 1) * blocks];
            for &e in s {
                row[(e / 64) as usize] |= 1u64 << (e % 64);
            }
        }
        scratch.chosen.clear();
        scratch.chosen.resize(blocks, 0);
        scratch.pack.clear();
        scratch.pack.resize(blocks, 0);

        // A verified-feasible incumbent of at most the greedy's size takes
        // over as the initial bound (ties prefer the incumbent so unchanged
        // optima are reused across session steps); near-optimal incumbents
        // replace the greedy pass outright.
        let mut incumbent_seeded = false;
        scratch.best.clear();
        match feasible_incumbent {
            Some(inc) if skip_greedy => {
                incumbent_seeded = true;
                scratch.best.extend_from_slice(inc);
            }
            Some(inc) => {
                greedy_hitting_set_dense(reduced, scratch);
                if inc.len() <= scratch.greedy.len() {
                    incumbent_seeded = true;
                    scratch.best.extend_from_slice(inc);
                } else {
                    scratch.best.extend_from_slice(&scratch.greedy);
                }
            }
            None => {
                greedy_hitting_set_dense(reduced, scratch);
                scratch.best.extend_from_slice(&scratch.greedy);
            }
        }

        let mut state = SearchState {
            sets: reduced,
            bits: &scratch.bits,
            blocks,
            chosen: &mut scratch.chosen,
            pack: &mut scratch.pack,
            best: &mut scratch.best,
            node_limit: self.node_limit,
            nodes: 0,
            cancel,
            cancelled: false,
        };
        scratch.current.clear();
        let mut current = std::mem::take(&mut scratch.current);
        let alive = state.branch(&mut current);
        let nodes = state.nodes;
        let was_cancelled = state.cancelled;
        scratch.current = current;
        if !alive {
            return Err(if was_cancelled {
                ExactInterrupt::Cancelled(CancelledSearch {
                    nodes_explored: nodes,
                    lower_bound: root_lb.unwrap_or(0),
                    upper_bound: scratch.best.len(),
                })
            } else {
                ExactInterrupt::Budget(BudgetExhausted {
                    nodes_explored: nodes,
                })
            });
        }

        let mut contingency = scratch.best.clone();
        contingency.sort_unstable();
        Ok(DenseExactOutcome {
            resilience: Some(contingency.len()),
            contingency,
            nodes_explored: nodes,
            incumbent_seeded,
            short_circuit: false,
        })
    }

    /// Convenience: just the numeric resilience.
    pub fn resilience_value<S: TupleStore + ?Sized>(&self, q: &Query, db: &S) -> Option<usize> {
        self.resilience(q, db).resilience
    }

    /// Decision version (Definition 1): is `(D, k) ∈ RES(q)`?
    ///
    /// Requires `D |= q` (otherwise the instance is not in the decision
    /// problem at all, mirroring the paper's definition).
    pub fn decide<S: TupleStore + ?Sized>(&self, q: &Query, db: &S, k: usize) -> bool {
        let ws = WitnessSet::build(q, db);
        if ws.is_empty() {
            return false; // D does not satisfy q
        }
        match self.resilience_of_witnesses(&ws).resilience {
            Some(r) => r <= k,
            None => false,
        }
    }
}

/// Does the bitset intersect the current selection? One AND per word.
#[inline]
fn intersects(bits: &[u64], chosen: &[u64]) -> bool {
    bits.iter().zip(chosen).any(|(&b, &c)| b & c != 0)
}

/// Does the incumbent hit every set? Runs on the CSR arena directly with a
/// reusable bool mask — no bitsets are built for rejected (or
/// short-circuited) incumbents.
fn incumbent_is_feasible(reduced: &ReducedSets, incumbent: &[u32], marks: &mut Vec<bool>) -> bool {
    marks.clear();
    marks.resize(reduced.universe(), false);
    for &e in incumbent {
        if (e as usize) >= reduced.universe() {
            return false;
        }
        marks[e as usize] = true;
    }
    reduced.iter().all(|s| s.iter().any(|&e| marks[e as usize]))
}

/// Maximal greedy packing of pairwise-disjoint sets over the CSR arena (the
/// root lower bound, bool-array form for the pre-search short-circuit).
/// Shared with [`crate::approx::packing_lower_bound`] so the approximation
/// module and the short-circuit decision can never disagree on the bound.
pub(crate) fn csr_packing_bound(reduced: &ReducedSets, marks: &mut Vec<bool>) -> usize {
    marks.clear();
    marks.resize(reduced.universe(), false);
    let mut bound = 0usize;
    for s in reduced.iter() {
        // An empty set forces nothing deletable and must not count (it can
        // only appear on unfalsifiable instances, which the solver screens
        // out before calling; the public approx wrapper does not).
        if s.is_empty() || s.iter().any(|&e| marks[e as usize]) {
            continue;
        }
        bound += 1;
        for &e in s {
            marks[e as usize] = true;
        }
    }
    bound
}

struct SearchState<'a> {
    /// The reduced witness sets (dense elements, for branching).
    sets: &'a ReducedSets,
    /// Flat bitset arena: set `i` is `bits[i*blocks..(i+1)*blocks]`.
    bits: &'a [u64],
    blocks: usize,
    /// Bitset of the tuples selected along the current branch.
    chosen: &'a mut [u64],
    /// Scratch buffer for the lower-bound packing (no per-node allocation).
    pack: &'a mut [u64],
    best: &'a mut Vec<u32>,
    node_limit: usize,
    nodes: usize,
    /// Optional cooperative-cancellation token, polled every 1024 nodes.
    cancel: Option<&'a CancelToken>,
    /// Set when the token fired (distinguishes cancellation from budget
    /// exhaustion in the shared `false` abort signal of `branch`).
    cancelled: bool,
}

impl SearchState<'_> {
    /// Explores one branch-and-bound node. Returns `false` when the node
    /// budget is exhausted (the search is then abandoned wholesale).
    ///
    /// One merged pass over the sets computes both the packing lower bound
    /// (pairwise-disjoint uncovered sets each force a deletion) and the
    /// branch pick (the uncovered set with the fewest tuples); universes of
    /// at most 64 dense ids take a single-word fast path.
    fn branch(&mut self, current: &mut Vec<u32>) -> bool {
        if self.nodes >= self.node_limit {
            return false;
        }
        // Poll the cancellation token at bounded intervals (every 64
        // nodes): one masked compare on the happy path, so the overhead is
        // far below the per-node cover/packing work. The interval also
        // bounds deadline overshoot — a single node costs well under a
        // millisecond even in debug builds, so 64 nodes keeps the overshoot
        // comfortably inside the grace window callers are promised.
        if self.nodes & 0x3F == 0 {
            if let Some(token) = self.cancel {
                if token.is_cancelled() {
                    self.cancelled = true;
                    return false;
                }
            }
        }
        self.nodes += 1;
        let mut bound = 0usize;
        let mut pick: Option<usize> = None;
        if self.blocks == 1 {
            let chosen0 = self.chosen[0];
            let mut pack0 = chosen0;
            for (i, &b) in self.bits.iter().enumerate() {
                if b & chosen0 != 0 {
                    continue;
                }
                match pick {
                    Some(p) if self.sets.set(p).len() <= self.sets.set(i).len() => {}
                    _ => pick = Some(i),
                }
                if b & pack0 == 0 {
                    bound += 1;
                    pack0 |= b;
                }
            }
        } else {
            self.pack.copy_from_slice(self.chosen);
            for i in 0..self.sets.len() {
                let row = &self.bits[i * self.blocks..(i + 1) * self.blocks];
                if intersects(row, self.chosen) {
                    continue;
                }
                match pick {
                    Some(p) if self.sets.set(p).len() <= self.sets.set(i).len() => {}
                    _ => pick = Some(i),
                }
                if !intersects(row, self.pack) {
                    bound += 1;
                    for (s, &b) in self.pack.iter_mut().zip(row) {
                        *s |= b;
                    }
                }
            }
        }
        if current.len() + bound >= self.best.len() {
            return true;
        }
        let Some(pick) = pick else {
            // Everything covered: `current` is a hitting set.
            if current.len() < self.best.len() {
                self.best.clear();
                self.best.extend_from_slice(current);
            }
            return true;
        };
        for j in 0..self.sets.set(pick).len() {
            let e = self.sets.set(pick)[j];
            current.push(e);
            self.chosen[(e / 64) as usize] |= 1u64 << (e % 64);
            let alive = self.branch(current);
            self.chosen[(e / 64) as usize] &= !(1u64 << (e % 64));
            current.pop();
            if !alive {
                return false;
            }
        }
        true
    }
}

/// Greedy hitting set over the reduced sets' dense element ids: repeatedly
/// pick the element covering the most uncovered sets (ties broken towards
/// the smaller id). The result lands in `scratch.greedy`; all working
/// buffers are reused.
pub(crate) fn greedy_hitting_set_dense<'a>(
    sets: &ReducedSets,
    scratch: &'a mut ExactScratch,
) -> &'a [u32] {
    let universe = sets.universe();
    scratch.covered.clear();
    scratch.covered.resize(sets.len(), false);
    scratch.counts.clear();
    scratch.counts.resize(universe, 0);
    scratch.greedy.clear();
    let covered = &mut scratch.covered;
    let counts = &mut scratch.counts;
    let result = &mut scratch.greedy;
    let mut remaining = sets.len();
    while remaining > 0 {
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, set) in sets.iter().enumerate() {
            if covered[i] {
                continue;
            }
            for &e in set {
                counts[e as usize] += 1;
            }
        }
        let (best, &best_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(e, &c)| (c, std::cmp::Reverse(e)))
            .expect("non-empty universe while sets remain uncovered");
        // A zero count means every remaining uncovered set is empty and can
        // never be hit.
        assert!(best_count > 0, "uncovered sets are non-empty");
        let best = best as u32;
        result.push(best);
        for (i, set) in sets.iter().enumerate() {
            if !covered[i] && set.contains(&best) {
                covered[i] = true;
                remaining -= 1;
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;
    use database::{Database, ReducedSets};

    fn solve(q: &str, rows: &[(&str, &[u64])]) -> Option<usize> {
        let q = parse_query(q).unwrap();
        let mut db = Database::for_query(&q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        ExactSolver::new().resilience_value(&q, &db)
    }

    #[test]
    fn paper_chain_example_has_resilience_two() {
        // D = {R(1,2), R(2,3), R(3,3)}: witnesses (1,2,3),(2,3,3),(3,3,3).
        // R(3,3) alone kills the last two; R(1,2) or R(2,3) kills the first.
        let r = solve(
            "R(x,y), R(y,z)",
            &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn false_query_has_resilience_zero() {
        let r = solve("R(x,y), R(y,z)", &[("R", &[1, 2])]);
        assert_eq!(r, Some(0));
    }

    #[test]
    fn example_11_domination_subtlety() {
        // D = {A(1),A(5),R(1,2),R(2,3),R(3,1),R(5,1),R(2,5)} for
        // q_sj1rats :- A(x),R(x,y),R(y,z),R(z,x): the minimum contingency set
        // is {R(1,2)}, size 1 (Example 11).
        let r = solve(
            "A(x), R(x,y), R(y,z), R(z,x)",
            &[
                ("A", &[1]),
                ("A", &[5]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 1]),
                ("R", &[5, 1]),
                ("R", &[2, 5]),
            ],
        );
        assert_eq!(r, Some(1));
    }

    #[test]
    fn exogenous_relation_forces_other_deletions() {
        // q :- A(x), R^x(x,y): R-tuples cannot be deleted, so every A-tuple
        // participating in a witness must go.
        let r = solve(
            "A(x), R^x(x,y)",
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
                ("R", &[1, 10]),
                ("R", &[2, 20]),
            ],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn fully_exogenous_witness_is_unfalsifiable() {
        let r = solve("R^x(x,y)", &[("R", &[1, 2])]);
        assert_eq!(r, None);
    }

    #[test]
    fn triangle_instance() {
        // Two disjoint triangles: resilience 2 (one edge each).
        let r = solve(
            "R(x,y), S(y,z), T(z,x)",
            &[
                ("R", &[1, 2]),
                ("S", &[2, 3]),
                ("T", &[3, 1]),
                ("R", &[4, 5]),
                ("S", &[5, 6]),
                ("T", &[6, 4]),
            ],
        );
        assert_eq!(r, Some(2));
    }

    #[test]
    fn shared_tuple_across_witnesses_is_preferred() {
        // Star: R(0,i) for i=1..5 and S(i, 100): q :- R(x,y), S(y,z).
        // Deleting the 5 S-tuples or the 5 R-tuples is forced... actually
        // each witness is {R(0,i), S(i,100)}, pairwise disjoint across i, so
        // resilience is 5.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 1..=5u64 {
            db.insert_named("R", &[0, i]);
            db.insert_named("S", &[i, 100]);
        }
        assert_eq!(ExactSolver::new().resilience_value(&q, &db), Some(5));
    }

    #[test]
    fn hub_tuple_is_selected_once() {
        // All witnesses share R(0,1): resilience 1.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[0, 1]);
        for i in 0..6u64 {
            db.insert_named("S", &[1, 100 + i]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        assert_eq!(result.resilience, Some(1));
        assert_eq!(result.contingency.len(), 1);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.relation_of(result.contingency[0]), r);
    }

    #[test]
    fn contingency_set_is_valid() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (2, 5), (5, 5)] {
            db.insert_named("R", &[a as u64, b as u64]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        let gamma: std::collections::HashSet<TupleId> =
            result.contingency.iter().copied().collect();
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_contingency_set(&gamma));
        assert_eq!(result.resilience, Some(gamma.len()));
        // And removing the tuples really falsifies the query.
        let smaller = db.without(&gamma);
        assert!(!database::evaluate(&q, &smaller));
    }

    #[test]
    fn decision_version_matches_optimum() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[2, 3]);
        db.insert_named("R", &[3, 3]);
        let solver = ExactSolver::new();
        assert!(!solver.decide(&q, &db, 1));
        assert!(solver.decide(&q, &db, 2));
        assert!(solver.decide(&q, &db, 3));
        // A database not satisfying q is not in RES(q) for any k.
        let empty = Database::for_query(&q);
        assert!(!solver.decide(&q, &empty, 0));
    }

    #[test]
    fn greedy_hitting_set_hits_everything() {
        let reduced = ReducedSets::from_sets([vec![1u32, 2], vec![2, 3], vec![4]], 5);
        let mut scratch = ExactScratch::new();
        greedy_hitting_set_dense(&reduced, &mut scratch);
        let hs = scratch.greedy.clone();
        for set in reduced.iter() {
            assert!(set.iter().any(|t| hs.contains(t)));
        }
        assert!(hs.len() <= 3);
    }

    #[test]
    #[should_panic(expected = "uncovered sets are non-empty")]
    fn greedy_hitting_set_panics_on_unhittable_empty_set() {
        // An empty set can never be hit; a silent hang or wrong answer here
        // would poison every caller, so the contract is a loud panic. (All
        // production callers screen empty sets out through
        // `ReducedSets::has_unhittable_set` first.)
        let reduced = ReducedSets::from_sets([vec![], vec![1u32]], 2);
        greedy_hitting_set_dense(&reduced, &mut ExactScratch::new());
    }

    /// The reduced sets of the paper's chain example in dense space:
    /// universe {R(1,2)=0, R(2,3)=1, R(3,3)=2}, sets {2} and {0,1}
    /// (the singleton subsumes both witnesses through R(3,3)).
    fn chain_reduced() -> ReducedSets {
        ReducedSets::from_sets([vec![2u32], vec![0, 1]], 3)
    }

    #[test]
    fn feasible_incumbent_seeds_and_short_circuits() {
        let solver = ExactSolver::new();
        let mut scratch = ExactScratch::new();
        // Cold solve: optimum 2.
        let cold = solver
            .solve_with_incumbent(&chain_reduced(), None, &mut scratch)
            .unwrap();
        assert_eq!(cold.resilience, Some(2));
        assert!(!cold.incumbent_seeded && !cold.short_circuit);
        assert!(cold.nodes_explored > 0);
        // Warm solve with the previous optimum as incumbent: the packing
        // lower bound is also 2 ({2} and {0,1} are disjoint), so the search
        // is skipped entirely and the incumbent is returned verbatim.
        let incumbent = cold.contingency.clone();
        let warm = solver
            .solve_with_incumbent(&chain_reduced(), Some(&incumbent), &mut scratch)
            .unwrap();
        assert_eq!(warm.resilience, cold.resilience);
        assert_eq!(warm.contingency, incumbent);
        assert!(warm.incumbent_seeded && warm.short_circuit);
        assert_eq!(warm.nodes_explored, 0);
    }

    #[test]
    fn stale_incumbent_never_prunes_the_true_optimum() {
        let solver = ExactSolver::new();
        let mut scratch = ExactScratch::new();
        // {0} misses the set {2}: an infeasible ("stale") incumbent. If it
        // were trusted as an upper bound of 1 it would prune the true
        // optimum (2); the feasibility check must reject it.
        let stale = vec![0u32];
        let out = solver
            .solve_with_incumbent(&chain_reduced(), Some(&stale), &mut scratch)
            .unwrap();
        assert_eq!(out.resilience, Some(2));
        assert!(!out.incumbent_seeded, "stale incumbent must be ignored");
        assert!(!out.short_circuit);
        // A stale incumbent referencing ids outside the universe is also
        // rejected rather than indexing out of bounds.
        let out_of_range = vec![7u32];
        let out2 = solver
            .solve_with_incumbent(&chain_reduced(), Some(&out_of_range), &mut scratch)
            .unwrap();
        assert_eq!(out2.resilience, Some(2));
        assert!(!out2.incumbent_seeded);
    }

    #[test]
    fn suboptimal_feasible_incumbent_still_finds_the_optimum() {
        let solver = ExactSolver::new();
        let mut scratch = ExactScratch::new();
        // {0,1,2} hits everything but is larger than the optimum: the search
        // must still find the 2-element optimum. (The greedy bound is
        // already <= 3, so the oversized incumbent is simply not seeded.)
        let fat = vec![0u32, 1, 2];
        let out = solver
            .solve_with_incumbent(&chain_reduced(), Some(&fat), &mut scratch)
            .unwrap();
        assert_eq!(out.resilience, Some(2));
    }

    #[test]
    fn incumbent_outcomes_match_cold_solves_on_random_instances() {
        // Differential: warm (with the cold optimum as incumbent) and cold
        // dense solves agree on the value for randomized chain instances.
        use workloads::Workload;
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        for seed in 0..6u64 {
            let db = Workload::new(seed).random_graph_relation(&q, "R", 8, 0.3);
            let ws = WitnessSet::build(&q, &db);
            let reduced = ws.reduced();
            let solver = ExactSolver::new();
            let mut scratch = ExactScratch::new();
            let cold = solver
                .solve_with_incumbent(&reduced, None, &mut scratch)
                .unwrap();
            let warm = solver
                .solve_with_incumbent(&reduced, Some(&cold.contingency.clone()), &mut scratch)
                .unwrap();
            assert_eq!(cold.resilience, warm.resilience, "seed {seed}");
            // The warm result is a valid hitting set of the same size.
            assert_eq!(warm.contingency.len(), cold.contingency.len());
            for set in reduced.iter() {
                assert!(
                    set.iter().any(|e| warm.contingency.contains(e)),
                    "seed {seed}: warm result misses a set"
                );
            }
        }
    }

    #[test]
    fn bitsets_span_more_than_one_block() {
        // >64 relevant tuples forces multi-block bitsets: a star of 70
        // disjoint witnesses has resilience 70.
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 1..=70u64 {
            db.insert_named("R", &[i, 1000 + i]);
            db.insert_named("S", &[1000 + i, 2000 + i]);
        }
        let result = ExactSolver::new().resilience(&q, &db);
        assert_eq!(result.resilience, Some(70));
        let gamma: std::collections::HashSet<TupleId> =
            result.contingency.iter().copied().collect();
        assert!(WitnessSet::build(&q, &db).is_contingency_set(&gamma));
    }

    #[test]
    fn vertex_cover_instance_through_qvc() {
        // q_vc over a 5-cycle graph: minimum vertex cover of C5 is 3.
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..5u64 {
            db.insert_named("R", &[v]);
            db.insert_named("S", &[v, (v + 1) % 5]);
        }
        assert_eq!(ExactSolver::new().resilience_value(&q, &db), Some(3));
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn node_limit_is_enforced() {
        // An adversarial instance with a tiny node limit must panic rather
        // than silently return a wrong answer.
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..12u64 {
            db.insert_named("R", &[v]);
            for w in 0..12u64 {
                if v < w {
                    db.insert_named("S", &[v, w]);
                }
            }
        }
        ExactSolver::with_node_limit(3).resilience(&q, &db);
    }
}
