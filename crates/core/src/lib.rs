//! Core resilience library — the paper's primary contribution, executable.
//!
//! The crate answers the question the paper studies: *given a Boolean
//! conjunctive query `q` (possibly with self-joins) and a database `D`, how
//! many endogenous tuples must be deleted to make `q` false?*  It provides:
//!
//! * [`exact`] — ground truth: minimum hitting set over the witness
//!   hypergraph by branch and bound, used for NP-complete queries, for the
//!   decision problem `RES(q)`, and to validate everything else;
//! * [`flow_algorithms`] — the generic polynomial constructions (witness-path
//!   flow for linear queries and 2-confluences, bipartite vertex cover for
//!   two-tuple witnesses, pair-node flow for unbound permutations, the
//!   Proposition 36 REP flow);
//! * [`special`] — the dedicated flow graphs of Propositions 13, 41 and 44
//!   (`q_A3perm-R`, `q_TS3conf`, `q_Swx3perm-R`);
//! * [`solver`] — [`solver::ResilienceSolver`], which classifies the query
//!   with `cq::classify` (Theorem 37 + Sections 5–8) and dispatches each
//!   instance to the matching algorithm;
//! * [`ijp`] — Independent Join Paths (Section 9): verification of
//!   Definition 48 and the automated partition-enumeration search of
//!   Appendix C.2.
//!
//! ```
//! use cq::parse_query;
//! use database::Database;
//! use resilience_core::solver::ResilienceSolver;
//!
//! let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap(); // q_ACconf
//! let mut db = Database::for_query(&q);
//! db.insert_named("A", &[1u64]);
//! db.insert_named("R", &[1u64, 2]);
//! db.insert_named("R", &[3u64, 2]);
//! db.insert_named("C", &[3u64]);
//! let solver = ResilienceSolver::new(&q);
//! assert!(solver.classification().complexity.is_ptime());
//! assert_eq!(solver.resilience(&db), Some(1));
//! ```

pub mod approx;
pub mod exact;
pub mod flow_algorithms;
pub mod ijp;
pub mod solver;
pub mod special;

pub use approx::ResilienceBounds;
pub use exact::{ExactResult, ExactSolver};
pub use flow_algorithms::FlowResult;
pub use solver::{ResilienceSolver, SolveMethod, SolveOutcome};
