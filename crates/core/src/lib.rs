//! Core resilience library — the paper's primary contribution, executable.
//!
//! The crate answers the question the paper studies: *given a Boolean
//! conjunctive query `q` (possibly with self-joins) and a database `D`, how
//! many endogenous tuples must be deleted to make `q` false?*  It provides:
//!
//! * [`exact`] — ground truth: minimum hitting set over the witness
//!   hypergraph by branch and bound, used for NP-complete queries, for the
//!   decision problem `RES(q)`, and to validate everything else;
//! * [`flow_algorithms`] — the generic polynomial constructions (witness-path
//!   flow for linear queries and 2-confluences, bipartite vertex cover for
//!   two-tuple witnesses, pair-node flow for unbound permutations, the
//!   Proposition 36 REP flow);
//! * [`special`] — the dedicated flow graphs of Propositions 13, 41 and 44
//!   (`q_A3perm-R`, `q_TS3conf`, `q_Swx3perm-R`);
//! * [`engine`] — the compiled, batched API: [`engine::Engine::compile`]
//!   runs classification + join-plan compilation once per query, and the
//!   resulting [`engine::CompiledQuery`] solves one frozen instance
//!   ([`engine::CompiledQuery::solve`]) or many in parallel
//!   ([`engine::CompiledQuery::solve_batch`]);
//! * [`ijp`] — Independent Join Paths (Section 9): verification of
//!   Definition 48 and the automated partition-enumeration search of
//!   Appendix C.2.
//!
//! ```
//! use cq::parse_query;
//! use database::Database;
//! use resilience_core::engine::{Engine, Resilience, SolveOptions};
//!
//! let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap(); // q_ACconf
//! let compiled = Engine::compile(&q);
//! assert!(compiled.classification().complexity.is_ptime());
//!
//! let mut db = Database::for_query(&q);
//! db.insert_named("A", &[1u64]);
//! db.insert_named("R", &[1u64, 2]);
//! db.insert_named("R", &[3u64, 2]);
//! db.insert_named("C", &[3u64]);
//! let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
//! assert_eq!(report.resilience, Resilience::Finite(1));
//! ```

pub mod approx;
pub mod cancel;
pub mod engine;
pub mod exact;
pub mod flow_algorithms;
pub mod ijp;
pub mod plancache;
pub mod shard;
pub mod special;

pub use approx::ResilienceBounds;
pub use cancel::CancelToken;
pub use engine::SolveMethod;
pub use engine::{
    AnytimeBounds, CompiledQuery, Engine, Resilience, Session, SharedSolveSession, SolveError,
    SolveOptions, SolveReport, SolveScratch, SolveSession,
};
pub use exact::{BudgetExhausted, CancelledSearch, ExactInterrupt, ExactResult, ExactSolver};
pub use flow_algorithms::{FlowCancelled, FlowResult};
pub use plancache::{CachedCompile, PlanCache, PlanCacheStats};
pub use shard::{solve_sharded, solve_sharded_streaming, ShardInstance, ShardedOutcome};
