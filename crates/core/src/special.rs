//! Dedicated polynomial algorithms for the named three-R-atom PTIME queries
//! of Sections 3.3 and 8: `q_A3perm-R` (Proposition 13), `q_Swx3perm-R`
//! (Proposition 44) and `q_TS3conf` (Proposition 41).
//!
//! These queries cannot use the plain witness-path construction because the
//! same `R`-tuple may appear at several positions of a witness; the paper
//! designs bespoke flow graphs whose min cuts respect the "delete once, pay
//! once" semantics. The implementations below follow the proofs; the test
//! suite and benchmark E8 cross-validate them against the exact solver on
//! randomized instances.

use crate::flow_algorithms::FlowResult;
use cq::Query;
use database::{Constant, TupleId, TupleStore, WitnessSet};
use flow::{FlowNetwork, MinCut, INF};
use std::collections::{HashMap, HashSet};

/// Resilience of `q_A3perm-R :- A(x), R(x,y), R(y,z), R(z,y)` (Proposition 13).
///
/// 2-way tuples (`R(a,b)` whose inverse `R(b,a)` is also present, loops
/// included) become unit-capacity pair edges on the right; `A`-tuples become
/// unit-capacity edges on the left; 1-way `R`-tuples act as infinite-weight
/// connectors (an `A`-tuple is always at least as good a choice).
pub fn a3perm_r_resilience<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    a3perm_r_resilience_opts(q, db, true)
}

/// [`a3perm_r_resilience`] with optional contingency extraction.
pub fn a3perm_r_resilience_opts<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    want_contingency: bool,
) -> Option<FlowResult> {
    let a_rel = db.schema().relation_id(resolve_name(q, "A")?)?;
    let r_rel = db.schema().relation_id(resolve_name(q, "R")?)?;
    Some(perm_r_flow(
        db,
        PermLeft::Unary(a_rel),
        r_rel,
        want_contingency,
    ))
}

/// Resilience of `q_Swx3perm-R :- S(w,x), R(x,y), R(y,z), R(z,y)`
/// (Proposition 44). Identical to [`a3perm_r_resilience`] except that the
/// left-hand tuples are the binary `S(e, a)` tuples (joining on their second
/// attribute) and 1-way `R`-tuples now cost 1 (they are not dominated by
/// `S`).
pub fn swx3perm_r_resilience<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    swx3perm_r_resilience_opts(q, db, true)
}

/// [`swx3perm_r_resilience`] with optional contingency extraction.
pub fn swx3perm_r_resilience_opts<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    want_contingency: bool,
) -> Option<FlowResult> {
    let s_rel = db.schema().relation_id(resolve_name(q, "S")?)?;
    let r_rel = db.schema().relation_id(resolve_name(q, "R")?)?;
    Some(perm_r_flow(
        db,
        PermLeft::BinarySecond(s_rel),
        r_rel,
        want_contingency,
    ))
}

/// Which relation anchors the left end of the permutation-plus-R query and
/// how its tuples join variable `x`.
enum PermLeft {
    /// `A(x)`: the anchor value is the single attribute.
    Unary(cq::RelId),
    /// `S(w, x)`: the anchor value is the second attribute and 1-way
    /// `R`-tuples are *not* dominated, so they carry capacity 1.
    BinarySecond(cq::RelId),
}

fn resolve_name<'n>(q: &Query, name: &'n str) -> Option<&'n str> {
    // The catalogue queries use literal names A/S/R; a structurally
    // isomorphic user query may use different names, in which case the caller
    // should map names before calling. We simply check the name exists.
    q.schema().relation_id(name).map(|_| name)
}

fn perm_r_flow<S: TupleStore + ?Sized>(
    db: &S,
    left: PermLeft,
    r_rel: cq::RelId,
    want_contingency: bool,
) -> FlowResult {
    // Classify R-tuples into 2-way pairs and 1-way tuples.
    let mut two_way_pairs: HashSet<(Constant, Constant)> = HashSet::new();
    let mut one_way: Vec<TupleId> = Vec::new();
    for &t in db.tuples_of(r_rel) {
        let v = db.values_of(t);
        let (a, b) = (v[0], v[1]);
        if db.contains_values(r_rel, &[b, a]) {
            let key = if a <= b { (a, b) } else { (b, a) };
            two_way_pairs.insert(key);
        } else {
            one_way.push(t);
        }
    }

    let mut network = FlowNetwork::new();
    let s = network.add_node();
    let t_sink = network.add_node();

    // Left-hand tuples: one unit edge each.
    let mut left_edge: HashMap<TupleId, flow::EdgeId> = HashMap::new();
    // Anchor value -> right endpoint of each left tuple edge.
    let mut left_out: Vec<(TupleId, Constant, flow::NodeId)> = Vec::new();
    let (left_rel, anchor_pos, one_way_cap) = match left {
        PermLeft::Unary(rel) => (rel, 0usize, INF),
        PermLeft::BinarySecond(rel) => (rel, 1usize, 1u64),
    };
    for &lt in db.tuples_of(left_rel) {
        let vals = db.values_of(lt);
        let anchor = vals[anchor_pos];
        let n_in = network.add_node();
        let n_out = network.add_node();
        let e = network.add_edge(n_in, n_out, 1);
        network.add_edge(s, n_in, INF);
        left_edge.insert(lt, e);
        left_out.push((lt, anchor, n_out));
    }

    // Pair nodes: one unit edge each, connected to the sink.
    let mut pair_edge: HashMap<(Constant, Constant), flow::EdgeId> = HashMap::new();
    let mut pair_in: HashMap<(Constant, Constant), flow::NodeId> = HashMap::new();
    for &pair in &two_way_pairs {
        let n_in = network.add_node();
        let n_out = network.add_node();
        let e = network.add_edge(n_in, n_out, 1);
        network.add_edge(n_out, t_sink, INF);
        pair_edge.insert(pair, e);
        pair_in.insert(pair, n_in);
    }

    // Connectors from left tuples to pairs: either the anchor belongs to the
    // pair, or a (1-way) R-tuple leads from the anchor into the pair.
    let mut one_way_edge: HashMap<TupleId, flow::EdgeId> = HashMap::new();
    for &(lt, anchor, n_out) in &left_out {
        let _ = lt;
        for &pair in &two_way_pairs {
            let (u, v) = pair;
            let direct = anchor == u || anchor == v;
            let via_one_way: Option<TupleId> = one_way.iter().copied().find(|&ot| {
                let vals = db.values_of(ot);
                vals[0] == anchor && (vals[1] == u || vals[1] == v)
            });
            if direct {
                network.add_edge(n_out, pair_in[&pair], INF);
            } else if let Some(ot) = via_one_way {
                let e = network.add_edge(n_out, pair_in[&pair], one_way_cap);
                if one_way_cap == 1 {
                    one_way_edge.insert(ot, e);
                }
            }
        }
    }

    if !want_contingency {
        return FlowResult {
            resilience: MinCut::compute_value(&mut network, s, t_sink) as usize,
            contingency: Vec::new(),
        };
    }
    let cut = MinCut::compute(&mut network, s, t_sink);

    // Translate the cut back to tuples: a cut left edge deletes that left
    // tuple; a cut pair edge deletes one tuple of the pair; a cut 1-way edge
    // deletes that 1-way R-tuple.
    let mut contingency: Vec<TupleId> = Vec::new();
    for (&lt, &e) in &left_edge {
        if cut.cut_edges.contains(&e) {
            contingency.push(lt);
        }
    }
    for (&pair, &e) in &pair_edge {
        if cut.cut_edges.contains(&e) {
            if let Some(t) = db.lookup_values(r_rel, &[pair.0, pair.1]) {
                contingency.push(t);
            }
        }
    }
    for (&ot, &e) in &one_way_edge {
        if cut.cut_edges.contains(&e) {
            contingency.push(ot);
        }
    }
    contingency.sort_unstable();
    contingency.dedup();
    FlowResult {
        resilience: cut.value as usize,
        contingency,
    }
}

/// Resilience of `q_TS3conf :- T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)`
/// (Proposition 41).
///
/// Any `R(a,b)` with both `T(a,b)` and `S(a,b)` present forms a witness on
/// its own (taking `z = x = a`, `w = y = b`) and is forced into every
/// contingency set. After removing the forced tuples, the query behaves like
/// a linear query and the witness-path flow is exact (Lemma 55-style
/// argument in the paper).
pub fn ts3conf_resilience<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    ts3conf_resilience_opts(q, db, true)
}

/// [`ts3conf_resilience`] with optional contingency extraction. The forced
/// tuples still have to be identified either way (they contribute to the
/// value); only the flow-cut translation is skipped.
///
/// The post-reduction instance is expressed as a *deletion-aware view*: the
/// witnesses of `D \ forced` are exactly the witnesses of `D` using no
/// forced tuple ([`WitnessSet::without_tuples`]), so no database copy or
/// re-enumeration happens, and the flow's contingency tuples reference the
/// original store directly (the old implementation had to translate ids back
/// by value).
pub fn ts3conf_resilience_opts<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    want_contingency: bool,
) -> Option<FlowResult> {
    let t_rel = db.schema().relation_id("T")?;
    let s_rel = db.schema().relation_id("S")?;
    let r_rel = db.schema().relation_id("R")?;

    let mut forced: Vec<TupleId> = Vec::new();
    for &rt in db.tuples_of(r_rel) {
        let v = db.values_of(rt);
        if db.contains_values(t_rel, &[v[0], v[1]]) && db.contains_values(s_rel, &[v[0], v[1]]) {
            forced.push(rt);
        }
    }
    let forced_set: HashSet<TupleId> = forced.iter().copied().collect();

    let order = cq::linear::linear_order_all(q)?;
    let ws = WitnessSet::build(q, db).without_tuples(&forced_set);
    // The forced tuples are deleted from the view, so the witness-path flow
    // never creates nodes for them: cutting is decided among the survivors
    // only, exactly as on a physically reduced instance.
    let flow = crate::flow_algorithms::witness_path_flow_opts(
        q,
        db,
        &ws,
        &order,
        &HashSet::new(),
        want_contingency,
    )?;
    if !want_contingency {
        return Some(FlowResult {
            resilience: forced.len() + flow.resilience,
            contingency: Vec::new(),
        });
    }
    let mut contingency = forced;
    contingency.extend(flow.contingency);
    contingency.sort_unstable();
    contingency.dedup();
    Some(FlowResult {
        resilience: contingency.len(),
        contingency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use cq::catalogue;
    use cq::parse_query;
    use database::Database;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn a3perm_r_simple_instances_match_exact() {
        let q = catalogue::q_a3perm_r().query;
        // A couple of hand-built instances with 2-way pairs, loops and 1-way
        // connectors.
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[2, 2]),
            ],
        );
        let flow = a3perm_r_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn a3perm_r_loop_only_instance() {
        let q = catalogue::q_a3perm_r().query;
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 1])]);
        let flow = a3perm_r_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        assert_eq!(flow.resilience, 1);
    }

    #[test]
    fn a3perm_r_no_witness_is_zero() {
        let q = catalogue::q_a3perm_r().query;
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 2]), ("R", &[2, 3])]);
        let flow = a3perm_r_resilience(&q, &db).unwrap();
        assert_eq!(flow.resilience, 0);
        assert!(!database::evaluate(&q, &db));
    }

    #[test]
    fn swx3perm_r_matches_exact_on_small_instance() {
        let q = catalogue::q_swx3perm_r().query;
        let db = build_db(
            &q,
            &[
                ("S", &[10, 1]),
                ("S", &[11, 1]),
                ("S", &[12, 2]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[2, 2]),
            ],
        );
        let flow = swx3perm_r_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn ts3conf_forced_tuples_and_flow_match_exact() {
        let q = catalogue::q_ts3conf().query;
        let db = build_db(
            &q,
            &[
                ("T", &[1, 2]),
                ("S", &[1, 2]),
                ("R", &[1, 2]), // forced: T(1,2) and S(1,2) both present
                ("T", &[3, 4]),
                ("R", &[3, 4]),
                ("R", &[5, 4]),
                ("R", &[5, 6]),
                ("S", &[5, 6]),
            ],
        );
        let flow = ts3conf_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn ts3conf_no_forced_tuples() {
        let q = catalogue::q_ts3conf().query;
        let db = build_db(
            &q,
            &[
                ("T", &[1, 2]),
                ("R", &[1, 2]),
                ("R", &[3, 2]),
                ("R", &[3, 4]),
                ("S", &[3, 4]),
            ],
        );
        let flow = ts3conf_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn a3perm_r_crafted_one_way_connector() {
        // Witness through a 1-way tuple: A(5), R(5,1) one-way, pair {1,2}.
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,y)").unwrap();
        let db = build_db(
            &q,
            &[("A", &[5]), ("R", &[5, 1]), ("R", &[1, 2]), ("R", &[2, 1])],
        );
        let flow = a3perm_r_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        assert_eq!(flow.resilience, 1);
    }
}
