//! Flow-based polynomial-time resilience algorithms.
//!
//! All PTIME cases of the dichotomy reduce to minimum cuts. This module
//! contains the generic constructions shared by several cases:
//!
//! * [`witness_path_flow`] — the classic "witnesses are s–t paths over tuple
//!   nodes" construction used for linear queries (Section 2.4) and, with
//!   duplicated self-join positions collapsing onto a single node, for
//!   2-confluences (Proposition 31) and `q_TS3conf` (Proposition 41);
//! * [`pairwise_bipartite_resilience`] — minimum vertex cover via König's
//!   theorem when every witness touches at most two endogenous tuples drawn
//!   from two relations (e.g. the normal form of `q_rats`);
//! * [`permutation_flow_resilience`] — the pair-node construction for
//!   unbound 2-permutations (Propositions 33 and 35);
//! * [`rep_flow_resilience`] — Proposition 36's observation that
//!   off-diagonal tuples of the REP relation are never needed, after which
//!   the witness-path flow applies.
//!
//! Each function returns `None` when the construction detects that the query
//! cannot be made false on the given instance (a witness with no deletable
//! tuple).

use crate::cancel::CancelToken;
use cq::linear::linear_order_all;
use cq::patterns::single_self_join_relation;
use cq::Query;
use database::{FxHashMap, TupleId, TupleStore, WitnessSet, WitnessView};
use flow::{VertexCutNetwork, INF};
use std::collections::HashSet;

/// Reusable buffers for the flow constructions: the tuple → node map, the
/// edge list, the vertex-cut network and the cuttability mask all survive
/// across solves, so a deletion-session step re-runs a flow without
/// allocating per witness (or per tuple, after the first solve).
#[derive(Clone, Debug, Default)]
pub struct FlowScratch {
    /// `node_of[t]` is the node of tuple `t`, or `u32::MAX` when unmapped.
    node_of: Vec<u32>,
    /// Tuples assigned a node in the current run (for cheap reset).
    touched: Vec<TupleId>,
    /// `tuple_of[n]` is the tuple placed on node `n` (valid for tuple nodes).
    tuple_of: Vec<Option<TupleId>>,
    /// Edge list under construction (deduplicated before insertion).
    edges: Vec<(u32, u32)>,
    /// Combined cuttability mask buffer (endogenous minus frozen tuples).
    cuttable: Vec<bool>,
    /// Pair-node lookup for the permutation construction.
    pair_node: FxHashMap<(TupleId, TupleId), u32>,
    /// The vertex-capacitated network (cleared, not reallocated).
    network: VertexCutNetwork,
}

impl FlowScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Dense tuple -> network-node map over borrowed scratch buffers; resetting
/// touches only the tuples mapped by the previous run.
struct NodeMap<'s> {
    node_of: &'s mut Vec<u32>,
    touched: &'s mut Vec<TupleId>,
    tuple_of: &'s mut Vec<Option<TupleId>>,
}

impl<'s> NodeMap<'s> {
    fn prepare(
        node_of: &'s mut Vec<u32>,
        touched: &'s mut Vec<TupleId>,
        tuple_of: &'s mut Vec<Option<TupleId>>,
        num_tuples: usize,
    ) -> NodeMap<'s> {
        if node_of.len() < num_tuples {
            node_of.resize(num_tuples, u32::MAX);
        }
        for t in touched.drain(..) {
            node_of[t.index()] = u32::MAX;
        }
        tuple_of.clear();
        NodeMap {
            node_of,
            touched,
            tuple_of,
        }
    }

    /// The node of `t`, creating it with `capacity` on first use.
    fn node(&mut self, t: TupleId, network: &mut VertexCutNetwork, capacity: u64) -> usize {
        let slot = &mut self.node_of[t.index()];
        if *slot != u32::MAX {
            return *slot as usize;
        }
        let n = network.add_vertex(capacity);
        *slot = n as u32;
        self.touched.push(t);
        if self.tuple_of.len() <= n {
            self.tuple_of.resize(n + 1, None);
        }
        self.tuple_of[n] = Some(t);
        n
    }

    /// Records that `node` (created outside [`NodeMap::node`], e.g. a pair
    /// node) stands for tuple `t`.
    fn register(&mut self, node: usize, t: TupleId) {
        if self.tuple_of.len() <= node {
            self.tuple_of.resize(node + 1, None);
        }
        self.tuple_of[node] = Some(t);
    }

    fn tuple(&self, node: usize) -> Option<TupleId> {
        self.tuple_of.get(node).copied().flatten()
    }
}

/// Deduplicates a directed edge list in place (sort + dedup; no hashing).
fn dedup_edges(edges: &mut Vec<(u32, u32)>) {
    edges.sort_unstable();
    edges.dedup();
}

/// Result of a flow-based resilience computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowResult {
    /// The computed resilience.
    pub resilience: usize,
    /// A contingency set achieving it (one tuple per cut vertex; for
    /// pair-node constructions one representative tuple per pair).
    pub contingency: Vec<TupleId>,
}

/// A flow-based solve interrupted by its [`CancelToken`] mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCancelled {
    /// Flow routed before cancellation — a valid (not necessarily maximum)
    /// flow, hence a certified lower bound on the resilience.
    pub partial_flow: u64,
}

/// Builds the stop callback Dinic polls out of an optional token: a counter
/// increment per call, with the token (and its clock read) consulted only
/// every 64th call, so cancellation support costs the happy path nothing
/// measurable.
fn stop_from_token(cancel: Option<&CancelToken>) -> impl FnMut() -> bool + '_ {
    let mut tick = 0u32;
    move || match cancel {
        Some(token) => {
            tick = tick.wrapping_add(1);
            tick & 63 == 0 && token.is_cancelled()
        }
        None => false,
    }
}

/// The generic witness-path vertex-cut construction.
///
/// Tuples become nodes (capacity 1 if endogenous and not listed in
/// `uncuttable`, infinite otherwise); every witness contributes the s–t path
/// that visits its tuples in the order the atoms appear in `atom_order`.
/// For *linear* atom orders every hybrid s–t path of the resulting graph is
/// itself a witness, so the minimum vertex cut equals the resilience.
///
/// Returns `None` if some witness has no cuttable tuple at all.
pub fn witness_path_flow<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    uncuttable: &HashSet<TupleId>,
) -> Option<FlowResult> {
    witness_path_flow_opts(q, db, ws, atom_order, uncuttable, true)
}

/// [`witness_path_flow`] with contingency extraction made optional: with
/// `want_contingency = false` only the cut *value* is computed (the
/// residual-reachability sweep and cut translation are skipped) and the
/// returned contingency is empty.
pub fn witness_path_flow_opts<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    uncuttable: &HashSet<TupleId>,
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    // Dense cuttability mask: endogenous and not frozen by the caller.
    scratch.cuttable = db.endogenous_mask(q);
    for t in uncuttable {
        scratch.cuttable[t.index()] = false;
    }
    uncancelled(witness_path_flow_core(
        db,
        ws.view(),
        atom_order,
        want_contingency,
        &mut scratch,
        None,
    ))
}

/// Unwraps a cancellable flow result produced without a token (which can
/// therefore never be the cancelled variant).
fn uncancelled(result: Result<Option<FlowResult>, FlowCancelled>) -> Option<FlowResult> {
    match result {
        Ok(flow) => flow,
        Err(_) => unreachable!("no token was supplied, so the flow cannot be cancelled"),
    }
}

/// [`witness_path_flow_opts`] over a (possibly live-restricted)
/// [`WitnessView`] with caller-owned scratch. `scratch.cuttable` must hold
/// the cuttability mask (endogenous tuples minus any caller-frozen ones)
/// before the call — session callers cache it across steps.
pub fn witness_path_flow_live<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(witness_path_flow_core(
        db,
        view,
        atom_order,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`witness_path_flow_live`] with an optional [`CancelToken`], polled at
/// bounded intervals inside the max-flow run. `Err` reports the partial flow
/// routed before cancellation; the `Ok` results are identical to the
/// token-free function.
pub fn witness_path_flow_live_cancellable<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    witness_path_flow_core(db, view, atom_order, want_contingency, scratch, cancel)
}

/// Seeds `scratch.cuttable` with the endogenous mask of `q` over `db`
/// (reusing the buffer). Callers may then freeze further tuples before
/// running [`witness_path_flow_live`].
pub fn seed_cuttable_mask<S: TupleStore + ?Sized>(q: &Query, db: &S, scratch: &mut FlowScratch) {
    db.endogenous_mask_into(q, &mut scratch.cuttable);
}

/// Marks `t` uncuttable in `scratch.cuttable`.
pub fn freeze_tuple(t: TupleId, scratch: &mut FlowScratch) {
    if t.index() < scratch.cuttable.len() {
        scratch.cuttable[t.index()] = false;
    }
}

fn witness_path_flow_core<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    if view.is_empty() {
        return Ok(Some(FlowResult {
            resilience: 0,
            contingency: Vec::new(),
        }));
    }
    let FlowScratch {
        node_of,
        touched,
        tuple_of,
        edges,
        cuttable,
        network,
        ..
    } = scratch;
    network.clear();
    let source = network.add_vertex(INF);
    let target = network.add_vertex(INF);
    let mut nodes = NodeMap::prepare(node_of, touched, tuple_of, db.num_tuples());

    edges.clear();
    for w in view.witnesses() {
        // Check the witness can be destroyed at all.
        if !w.atom_tuples.iter().any(|t| cuttable[t.index()]) {
            return Ok(None);
        }
        let mut prev = source;
        for &atom_idx in atom_order {
            let t = w.atom_tuples[atom_idx];
            let cap = if cuttable[t.index()] { 1 } else { INF };
            let n = nodes.node(t, network, cap);
            if n != prev {
                edges.push((prev as u32, n as u32));
            }
            prev = n;
        }
        edges.push((prev as u32, target as u32));
    }
    dedup_edges(edges);
    for &(from, to) in edges.iter() {
        network.add_edge(from as usize, to as usize);
    }
    let mut stop = stop_from_token(cancel);
    if !want_contingency {
        let value = network
            .min_vertex_cut_value_interruptible(source, target, &mut stop)
            .map_err(|e| FlowCancelled {
                partial_flow: e.partial_flow,
            })?;
        return Ok(Some(FlowResult {
            resilience: value as usize,
            contingency: Vec::new(),
        }));
    }
    let cut = network
        .min_vertex_cut_interruptible(source, target, &mut stop)
        .map_err(|e| FlowCancelled {
            partial_flow: e.partial_flow,
        })?;
    let contingency: Vec<TupleId> = cut
        .cut_vertices
        .iter()
        .filter_map(|&v| nodes.tuple(v))
        .collect();
    Ok(Some(FlowResult {
        resilience: cut.value as usize,
        contingency,
    }))
}

/// Witness-path flow using the query's own linear order of all atoms.
/// Returns `None` if the query is not linear or some witness is uncuttable.
pub fn linear_query_flow<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    let order = linear_order_all(q)?;
    let ws = WitnessSet::build(q, db);
    witness_path_flow(q, db, &ws, &order, &HashSet::new())
}

/// Minimum hitting set when every witness touches at most two endogenous
/// tuples: this is vertex cover over the "conflict graph" of tuples, solvable
/// by König's theorem whenever that graph is bipartite. Returns `None` when
/// some witness has more than two endogenous tuples, no endogenous tuple, or
/// the conflict graph is not bipartite.
pub fn pairwise_bipartite_resilience(ws: &WitnessSet) -> Option<usize> {
    pairwise_bipartite_resilience_view(ws.view())
}

/// [`pairwise_bipartite_resilience`] over a (possibly live-restricted)
/// [`WitnessView`] — the engine's deletion sessions pass the live rows
/// directly instead of materializing a filtered witness set.
pub fn pairwise_bipartite_resilience_view(view: WitnessView<'_>) -> Option<usize> {
    use satgad::UndirectedGraph;

    // The witness set's CSR index already renumbers the relevant tuples into
    // a dense `0..k` space; use it as the vertex numbering directly.
    let num_vertices = view.relevant_tuples().len();
    let dense = |t: TupleId| view.dense_id_of(t).expect("relevant tuple has a dense id") as usize;
    let mut graph = UndirectedGraph::new(num_vertices);
    let mut forced: HashSet<usize> = HashSet::new();
    for set in view.endogenous_sets() {
        match set.len() {
            0 => return None,
            1 => {
                forced.insert(dense(set[0]));
            }
            2 => {
                graph.add_edge(dense(set[0]), dense(set[1]));
            }
            _ => return None,
        }
    }
    // Forced vertices (singleton witnesses) must be deleted; remove their
    // incident edges by solving VC on the residual graph.
    let mut residual = UndirectedGraph::new(num_vertices);
    for (u, v) in graph.edges() {
        if !forced.contains(&u) && !forced.contains(&v) {
            residual.add_edge(u, v);
        }
    }
    let vc = satgad::bipartite_min_vertex_cover(&residual)?;
    Some(forced.len() + vc)
}

/// Resilience of an unbound 2-permutation query (Propositions 33 and 35,
/// "case 1"). The self-join relation `R` occurs as `R(x,y), R(y,x)`; every
/// witness either uses a symmetric pair `{R(a,b), R(b,a)}` (or a loop
/// `R(a,a)`), of which a minimum contingency set deletes exactly one, or is
/// destroyed further left. The construction collapses each symmetric pair to
/// a single unit-capacity "pair node" placed after the remaining endogenous
/// tuples of the witness (taken in the query's pseudo-linear order).
pub fn permutation_flow_resilience<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
) -> Option<FlowResult> {
    let ws = WitnessSet::build(q, db);
    permutation_flow_with(q, db, &ws, true)
}

/// [`permutation_flow_resilience`] over an already-built witness set, with
/// optional contingency extraction. Used by the engine so the per-instance
/// witness enumeration is shared with the dispatcher.
pub fn permutation_flow_with<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    seed_cuttable_mask(q, db, &mut scratch);
    permutation_flow_live(q, db, ws.view(), want_contingency, &mut scratch)
}

/// [`permutation_flow_with`] over a (possibly live-restricted)
/// [`WitnessView`] with caller-owned scratch. `scratch.cuttable` must hold
/// the endogenous mask of `q` (see [`seed_cuttable_mask`]).
pub fn permutation_flow_live<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(permutation_flow_live_cancellable(
        q,
        db,
        view,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`permutation_flow_live`] with an optional [`CancelToken`], polled at
/// bounded intervals inside the max-flow run (see
/// [`witness_path_flow_live_cancellable`]).
pub fn permutation_flow_live_cancellable<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    let Some((rel, r_atoms)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    if r_atoms.len() != 2 {
        return Ok(None);
    }
    if view.is_empty() {
        return Ok(Some(FlowResult {
            resilience: 0,
            contingency: Vec::new(),
        }));
    }
    let r_is_endogenous = r_atoms.iter().any(|&i| !q.atom(i).exogenous);

    // Order of the non-R atoms: keep query order restricted to endogenous
    // non-R atoms (pseudo-linear for the queries this is applied to).
    let left_atoms: Vec<usize> = (0..q.num_atoms())
        .filter(|i| !r_atoms.contains(i) && !q.atom(*i).exogenous)
        .collect();

    let FlowScratch {
        node_of,
        touched,
        tuple_of,
        edges,
        cuttable: endo,
        pair_node,
        network,
    } = scratch;
    network.clear();
    let source = network.add_vertex(INF);
    let target = network.add_vertex(INF);
    let mut nodes = NodeMap::prepare(node_of, touched, tuple_of, db.num_tuples());
    pair_node.clear();
    edges.clear();

    let _ = rel; // the relation id is implied by `r_atoms`

    for w in view.witnesses() {
        let mut prev = source;
        for &atom_idx in &left_atoms {
            let t = w.atom_tuples[atom_idx];
            let cap = if endo[t.index()] { 1 } else { INF };
            let n = nodes.node(t, network, cap);
            if n != prev {
                edges.push((prev as u32, n as u32));
            }
            prev = n;
        }
        // The symmetric pair used by this witness.
        let t1 = w.atom_tuples[r_atoms[0]];
        let t2 = w.atom_tuples[r_atoms[1]];
        let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let n = match pair_node.get(&key) {
            Some(&n) => n as usize,
            None => {
                let cap = if r_is_endogenous && endo[key.0.index()] {
                    1
                } else {
                    INF
                };
                let n = network.add_vertex(cap);
                pair_node.insert(key, n as u32);
                nodes.register(n, key.0);
                n
            }
        };
        if n != prev {
            edges.push((prev as u32, n as u32));
        }
        edges.push((n as u32, target as u32));

        // Guard against unfalsifiable witnesses.
        if !w.atom_tuples.iter().any(|t| endo[t.index()]) {
            return Ok(None);
        }
    }
    dedup_edges(edges);
    for &(from, to) in edges.iter() {
        network.add_edge(from as usize, to as usize);
    }
    let mut stop = stop_from_token(cancel);
    if !want_contingency {
        let value = network
            .min_vertex_cut_value_interruptible(source, target, &mut stop)
            .map_err(|e| FlowCancelled {
                partial_flow: e.partial_flow,
            })?;
        return Ok(Some(FlowResult {
            resilience: value as usize,
            contingency: Vec::new(),
        }));
    }
    let cut = network
        .min_vertex_cut_interruptible(source, target, &mut stop)
        .map_err(|e| FlowCancelled {
            partial_flow: e.partial_flow,
        })?;
    let contingency: Vec<TupleId> = cut
        .cut_vertices
        .iter()
        .filter_map(|&v| nodes.tuple(v))
        .collect();
    Ok(Some(FlowResult {
        resilience: cut.value as usize,
        contingency,
    }))
}

/// Resilience of a REP query containing `z3` (Proposition 36): tuples
/// `R(a,b)` with `a != b` are never needed in a minimum contingency set, so
/// they are treated as uncuttable and the witness-path flow applies over the
/// pseudo-linear order of the endogenous atoms.
pub fn rep_flow_resilience<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    let ws = WitnessSet::build(q, db);
    let order = rep_atom_order(q);
    rep_flow_with(q, db, &ws, &order, true)
}

/// The atom order the REP flow walks: linear, else pseudo-linear, else
/// query order. Depends only on the query, so batch callers (the engine)
/// compute it once per compilation.
pub fn rep_atom_order(q: &Query) -> Vec<usize> {
    cq::linear::linear_order_all(q)
        .or_else(|| cq::linear::pseudo_linear_order(q))
        .unwrap_or_else(|| (0..q.num_atoms()).collect())
}

/// [`rep_flow_resilience`] over an already-built witness set and a
/// precomputed [`rep_atom_order`], with optional contingency extraction
/// (engine entry point).
pub fn rep_flow_with<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    seed_cuttable_mask(q, db, &mut scratch);
    rep_flow_live(q, db, ws.view(), atom_order, want_contingency, &mut scratch)
}

/// [`rep_flow_with`] over a (possibly live-restricted) [`WitnessView`] with
/// caller-owned scratch. `scratch.cuttable` must hold the endogenous mask of
/// `q` on entry; the off-diagonal REP tuples are frozen in place here
/// (Proposition 36: they are never needed in a minimum contingency set).
pub fn rep_flow_live<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(rep_flow_live_cancellable(
        q,
        db,
        view,
        atom_order,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`rep_flow_live`] with an optional [`CancelToken`], polled at bounded
/// intervals inside the max-flow run (see
/// [`witness_path_flow_live_cancellable`]).
pub fn rep_flow_live_cancellable<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    let Some((rel, _)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    let Some(db_rel) = db.schema().relation_id(q.schema().name(rel)) else {
        return Ok(None);
    };
    for &t in db.tuples_of(db_rel) {
        let vals = db.values_of(t);
        if vals.len() == 2 && vals[0] != vals[1] {
            freeze_tuple(t, scratch);
        }
    }
    witness_path_flow_core(db, view, atom_order, want_contingency, scratch, cancel)
}

/// Warm solve could not express the current deletion set on the resident
/// network (permutation construction: a deleted tuple sits on an atom the
/// pair-node network does not model); the caller must re-run the cold
/// construction for this step. The warm state is invalidated so the next
/// step attempts a fresh build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarmFallback;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum WarmKind {
    #[default]
    None,
    WitnessPath,
    Permutation,
}

/// Per-session warm flow state: the split network of the *full* witness set
/// stays resident across steps, deletions are expressed by zeroing the
/// deleted tuple's node arc (draining the overflow through the residual
/// graph) and restores re-add capacity, so each re-solve runs Dinic from the
/// repaired residual instead of from scratch.
///
/// Correctness rests on the same hybrid-path property that justifies the
/// cold constructions: every s–t path of the full network is itself a
/// witness, so the paths that avoid the zeroed arcs are exactly the
/// witnesses of the live instance and the repaired min cut equals the cold
/// min cut over the live view.
#[derive(Clone, Debug, Default)]
pub struct FlowWarmState {
    valid: bool,
    kind: WarmKind,
    /// `arc_of[t]` is the node whose split arc models tuple `t` (`u32::MAX`
    /// when `t` has no node in the resident network).
    arc_of: Vec<u32>,
    /// `t` appears in some witness but has no node (permutation construction
    /// only: exogenous non-R atoms). Deleting such a tuple cannot be
    /// expressed by arc zeroing and forces a cold fallback.
    unmodeled: Vec<bool>,
    /// Deletion state currently applied to the network, per tuple.
    applied: Vec<bool>,
    /// Built capacity of each node's split arc (restored when the last
    /// deleted member of the node comes back).
    orig_cap: Vec<u64>,
    /// Number of currently-deleted member tuples per node (pair nodes have
    /// up to two members; the arc is zero iff the count is positive).
    dead: Vec<u32>,
    /// Representative tuple per node, for cut translation.
    tuple_of: Vec<Option<TupleId>>,
    network: VertexCutNetwork,
    source: usize,
    target: usize,
    cut_buf: Vec<usize>,
    /// Cumulative: augmenting paths rerouted/drained by deletion repairs.
    pub repairs: u64,
    /// Cumulative: augmenting paths found by post-delta re-augmentation.
    pub reaugmentations: u64,
    /// Cumulative: cold (re)builds, including fallbacks to the cold solver.
    pub cold_fallbacks: u64,
    /// Augmenting paths repaired during the last step's delta application.
    pub step_repaired: u64,
    /// Augmenting paths added by the last step's re-augmentation.
    pub step_reaugmented: u64,
    /// The last step rebuilt the network cold (or fell back cold).
    pub step_rebuilt: bool,
    /// The last step reused the resident residual state.
    pub step_reused: bool,
}

impl FlowWarmState {
    /// Creates empty (invalid) warm state; the first solve builds it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the resident network; the next warm solve rebuilds from the
    /// full view and the current deletion mask.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.kind = WarmKind::None;
    }

    /// Whether a resident network is currently valid.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    fn begin_step(&mut self) {
        self.step_repaired = 0;
        self.step_reaugmented = 0;
        self.step_rebuilt = false;
        self.step_reused = false;
    }

    fn reset(&mut self, num_tuples: usize, kind: WarmKind) {
        self.valid = false;
        self.kind = kind;
        self.arc_of.clear();
        self.arc_of.resize(num_tuples, u32::MAX);
        self.unmodeled.clear();
        self.unmodeled.resize(num_tuples, false);
        self.applied.clear();
        self.applied.resize(num_tuples, false);
        self.orig_cap.clear();
        self.dead.clear();
        self.tuple_of.clear();
        self.network.clear();
        self.cold_fallbacks += 1;
        self.step_rebuilt = true;
    }

    /// Adds a node whose split arc starts at `built_cap` (or zero when some
    /// member is already deleted) and records the per-node bookkeeping.
    fn add_node(&mut self, built_cap: u64, dead_members: u32, t: Option<TupleId>) -> usize {
        let initial = if dead_members > 0 { 0 } else { built_cap };
        let n = self.network.add_vertex(initial);
        debug_assert_eq!(n, self.orig_cap.len());
        self.orig_cap.push(built_cap);
        self.dead.push(dead_members);
        self.tuple_of.push(t);
        n
    }

    /// Applies the deletion-state deltas accumulated since the last warm
    /// solve: zero-and-repair newly deleted arcs, restore revived ones.
    fn apply_deltas(&mut self, deleted: &[bool], touched: &[TupleId]) -> Result<(), WarmFallback> {
        self.step_reused = true;
        for &t in touched {
            let desired = deleted[t.index()];
            if self.applied[t.index()] == desired {
                continue;
            }
            let node = self.arc_of[t.index()];
            if node == u32::MAX {
                if desired && self.unmodeled[t.index()] {
                    self.valid = false;
                    self.cold_fallbacks += 1;
                    self.step_rebuilt = true;
                    return Err(WarmFallback);
                }
                // Not on any witness: no flow impact.
                self.applied[t.index()] = desired;
                continue;
            }
            self.applied[t.index()] = desired;
            let node = node as usize;
            if desired {
                self.dead[node] += 1;
                if self.dead[node] == 1 {
                    let out = self.network.warm_set_capacity(node, 0);
                    self.step_repaired += out.paths;
                }
            } else {
                self.dead[node] -= 1;
                if self.dead[node] == 0 {
                    self.network.warm_set_capacity(node, self.orig_cap[node]);
                }
            }
        }
        Ok(())
    }

    /// Re-augments from the repaired residual and extracts the result.
    /// `Ok(None)` mirrors the cold constructions' "some live witness is
    /// uncuttable" answer (its all-infinite path keeps the flow above
    /// `INF / 2`); the state stays valid for later steps.
    fn finish_solve(&mut self, want_contingency: bool) -> Option<FlowResult> {
        let (value, paths) = self.network.warm_reaugment();
        self.step_reaugmented += paths;
        self.reaugmentations += paths;
        self.repairs += self.step_repaired;
        if value >= INF / 2 {
            return None;
        }
        if !want_contingency {
            return Some(FlowResult {
                resilience: value as usize,
                contingency: Vec::new(),
            });
        }
        let mut cut = std::mem::take(&mut self.cut_buf);
        self.network.warm_cut_vertices(&mut cut);
        let contingency: Vec<TupleId> = cut
            .iter()
            .filter_map(|&v| self.tuple_of.get(v).copied().flatten())
            .collect();
        self.cut_buf = cut;
        Some(FlowResult {
            resilience: value as usize,
            contingency,
        })
    }

    /// Builds the witness-path network over the full view with the current
    /// deletions pre-zeroed, then runs the initial max flow.
    fn build_witness_path<S: TupleStore + ?Sized>(
        &mut self,
        db: &S,
        full: WitnessView<'_>,
        atom_order: &[usize],
        cuttable: &[bool],
        edges: &mut Vec<(u32, u32)>,
        deleted: &[bool],
    ) {
        self.reset(db.num_tuples(), WarmKind::WitnessPath);
        let source = self.add_node(INF, 0, None);
        let target = self.add_node(INF, 0, None);
        edges.clear();
        for w in full.witnesses() {
            // Unlike the cold construction there is no uncuttable-witness
            // bail: an uncuttable witness contributes an all-infinite path,
            // so the repaired flow exceeds `INF / 2` exactly when some *live*
            // witness is uncuttable.
            let mut prev = source;
            for &atom_idx in atom_order {
                let t = w.atom_tuples[atom_idx];
                let n = match self.arc_of[t.index()] {
                    u32::MAX => {
                        let cap = if cuttable[t.index()] { 1 } else { INF };
                        let is_dead = deleted[t.index()];
                        let n = self.add_node(cap, is_dead as u32, Some(t));
                        self.arc_of[t.index()] = n as u32;
                        self.applied[t.index()] = is_dead;
                        n
                    }
                    n => n as usize,
                };
                if n != prev {
                    edges.push((prev as u32, n as u32));
                }
                prev = n;
            }
            edges.push((prev as u32, target as u32));
        }
        dedup_edges(edges);
        for &(from, to) in edges.iter() {
            self.network.add_edge(from as usize, to as usize);
        }
        self.source = source;
        self.target = target;
        self.network.warm_build(source, target);
        self.valid = true;
    }

    /// Builds the pair-node permutation network over the full view with the
    /// current deletions pre-zeroed. Fails (cold fallback) when a currently
    /// deleted tuple sits on an atom the construction does not model.
    #[allow(clippy::too_many_arguments)]
    fn build_permutation<S: TupleStore + ?Sized>(
        &mut self,
        db: &S,
        full: WitnessView<'_>,
        left_atoms: &[usize],
        r_atoms: &[usize],
        r_is_endogenous: bool,
        endo: &[bool],
        pair_node: &mut FxHashMap<(TupleId, TupleId), u32>,
        edges: &mut Vec<(u32, u32)>,
        deleted: &[bool],
    ) -> Result<(), WarmFallback> {
        self.reset(db.num_tuples(), WarmKind::Permutation);
        let source = self.add_node(INF, 0, None);
        let target = self.add_node(INF, 0, None);
        pair_node.clear();
        edges.clear();
        let num_atoms = full
            .witnesses()
            .next()
            .map(|w| w.atom_tuples.len())
            .unwrap_or(0);
        let skipped_atoms: Vec<usize> = (0..num_atoms)
            .filter(|i| !left_atoms.contains(i) && !r_atoms.contains(i))
            .collect();
        for w in full.witnesses() {
            let mut prev = source;
            for &atom_idx in left_atoms {
                let t = w.atom_tuples[atom_idx];
                let n = match self.arc_of[t.index()] {
                    u32::MAX => {
                        let cap = if endo[t.index()] { 1 } else { INF };
                        let is_dead = deleted[t.index()];
                        let n = self.add_node(cap, is_dead as u32, Some(t));
                        self.arc_of[t.index()] = n as u32;
                        self.applied[t.index()] = is_dead;
                        n
                    }
                    n => n as usize,
                };
                if n != prev {
                    edges.push((prev as u32, n as u32));
                }
                prev = n;
            }
            let t1 = w.atom_tuples[r_atoms[0]];
            let t2 = w.atom_tuples[r_atoms[1]];
            let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            let n = match pair_node.get(&key) {
                Some(&n) => n as usize,
                None => {
                    let cap = if r_is_endogenous && endo[key.0.index()] {
                        1
                    } else {
                        INF
                    };
                    let mut dead_members = deleted[key.0.index()] as u32;
                    if key.1 != key.0 {
                        dead_members += deleted[key.1.index()] as u32;
                    }
                    let n = self.add_node(cap, dead_members, Some(key.0));
                    pair_node.insert(key, n as u32);
                    self.arc_of[key.0.index()] = n as u32;
                    self.applied[key.0.index()] = deleted[key.0.index()];
                    if key.1 != key.0 {
                        self.arc_of[key.1.index()] = n as u32;
                        self.applied[key.1.index()] = deleted[key.1.index()];
                    }
                    n
                }
            };
            if n != prev {
                edges.push((prev as u32, n as u32));
            }
            edges.push((n as u32, target as u32));
            // Atoms outside the construction (exogenous non-R): their
            // deletion cannot be expressed on this network.
            for &atom_idx in &skipped_atoms {
                let t = w.atom_tuples[atom_idx];
                if self.arc_of[t.index()] == u32::MAX {
                    self.unmodeled[t.index()] = true;
                    if deleted[t.index()] {
                        self.valid = false;
                        return Err(WarmFallback);
                    }
                }
            }
        }
        dedup_edges(edges);
        for &(from, to) in edges.iter() {
            self.network.add_edge(from as usize, to as usize);
        }
        self.source = source;
        self.target = target;
        self.network.warm_build(source, target);
        self.valid = true;
        Ok(())
    }
}

/// Borrowed per-step warm context: the session's resident state, its current
/// deletion mask and the tuples whose state changed since the warm network
/// last applied deltas (drained on success).
pub struct WarmSession<'a> {
    /// The session-resident warm state.
    pub state: &'a mut FlowWarmState,
    /// Current deletion mask, indexed by tuple.
    pub deleted: &'a [bool],
    /// Tuples whose deletion state changed since the last warm application.
    pub touched: &'a mut Vec<TupleId>,
}

/// Warm-start counterpart of [`witness_path_flow_live`]: solves over the
/// live instance implied by `deleted` using (and maintaining) the resident
/// network built from the *full* view. `scratch.cuttable` must hold the same
/// mask the cold calls use; it is read only on rebuilds.
pub fn witness_path_flow_warm<S: TupleStore + ?Sized>(
    db: &S,
    full: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    warm: WarmSession<'_>,
) -> Result<Option<FlowResult>, WarmFallback> {
    let WarmSession {
        state,
        deleted,
        touched,
    } = warm;
    state.begin_step();
    if !state.valid || state.kind != WarmKind::WitnessPath {
        touched.clear();
        state.build_witness_path(
            db,
            full,
            atom_order,
            &scratch.cuttable,
            &mut scratch.edges,
            deleted,
        );
    } else {
        state.apply_deltas(deleted, touched)?;
        touched.clear();
    }
    Ok(state.finish_solve(want_contingency))
}

/// Warm-start counterpart of [`permutation_flow_live`]. Mirrors the cold
/// construction's early `None` answers (not an unbound 2-permutation) and
/// falls back cold when a deleted tuple sits outside the modelled atoms.
pub fn permutation_flow_warm<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    full: WitnessView<'_>,
    want_contingency: bool,
    scratch: &mut FlowScratch,
    warm: WarmSession<'_>,
) -> Result<Option<FlowResult>, WarmFallback> {
    let WarmSession {
        state,
        deleted,
        touched,
    } = warm;
    state.begin_step();
    let Some((_, r_atoms)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    if r_atoms.len() != 2 {
        return Ok(None);
    }
    if !state.valid || state.kind != WarmKind::Permutation {
        let r_is_endogenous = r_atoms.iter().any(|&i| !q.atom(i).exogenous);
        let left_atoms: Vec<usize> = (0..q.num_atoms())
            .filter(|i| !r_atoms.contains(i) && !q.atom(*i).exogenous)
            .collect();
        touched.clear();
        let FlowScratch {
            edges,
            cuttable: endo,
            pair_node,
            ..
        } = scratch;
        state.build_permutation(
            db,
            full,
            &left_atoms,
            &r_atoms,
            r_is_endogenous,
            endo,
            pair_node,
            edges,
            deleted,
        )?;
    } else {
        state.apply_deltas(deleted, touched)?;
        touched.clear();
    }
    Ok(state.finish_solve(want_contingency))
}

/// Warm-start counterpart of [`rep_flow_live`]: freezes the off-diagonal
/// tuples of the self-join relation into `scratch.cuttable` (Proposition 36)
/// and delegates to the witness-path warm solve.
pub fn rep_flow_warm<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    full: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    warm: WarmSession<'_>,
) -> Result<Option<FlowResult>, WarmFallback> {
    let Some((rel, _)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    let Some(db_rel) = db.schema().relation_id(q.schema().name(rel)) else {
        return Ok(None);
    };
    for &t in db.tuples_of(db_rel) {
        let vals = db.values_of(t);
        if vals.len() == 2 && vals[0] != vals[1] {
            freeze_tuple(t, scratch);
        }
    }
    witness_path_flow_warm(db, full, atom_order, want_contingency, scratch, warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use cq::parse_query;
    use database::Database;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn linear_sjfree_flow_matches_exact() {
        // q :- A(x), R(x,y), B(y) over a small bipartite-ish instance.
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[1, 11]),
                ("R", &[2, 10]),
                ("B", &[10]),
                ("B", &[11]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        // Contingency really works.
        let gamma: HashSet<TupleId> = flow.contingency.iter().copied().collect();
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_contingency_set(&gamma));
    }

    #[test]
    fn exogenous_middle_relation_is_never_cut() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 10]),
                ("B", &[10]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        assert_eq!(flow.resilience, 1); // delete B(10)
        let b = db.schema().relation_id("B").unwrap();
        assert!(flow.contingency.iter().all(|&t| db.relation_of(t) == b));
    }

    #[test]
    fn acconf_flow_matches_exact_on_crafted_instance() {
        // The Proposition 12 case analysis instance.
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[4]),
                ("C", &[1]),
                ("C", &[5]),
                ("R", &[1, 2]),
                ("R", &[4, 2]),
                ("R", &[5, 2]),
                ("R", &[1, 3]),
                ("R", &[5, 3]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn unfalsifiable_instance_returns_none() {
        let q = parse_query("R^x(x,y), S^x(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("S", &[2, 3])]);
        let ws = WitnessSet::build(&q, &db);
        let order: Vec<usize> = vec![0, 1];
        assert!(witness_path_flow(&q, &db, &ws, &order, &HashSet::new()).is_none());
    }

    #[test]
    fn empty_database_has_zero_resilience() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = Database::for_query(&q);
        let flow = linear_query_flow(&q, &db).unwrap();
        assert_eq!(flow.resilience, 0);
        assert!(flow.contingency.is_empty());
    }

    #[test]
    fn pairwise_bipartite_matches_exact_for_rats_normal_form() {
        // Normal form of q_rats: R^x(x,y), A(x), T^x(z,x), S(y,z).
        let q = parse_query("R^x(x,y), A(x), T^x(z,x), S(y,z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("T", &[20, 1]),
                ("T", &[21, 2]),
                ("S", &[10, 20]),
                ("S", &[11, 21]),
                ("S", &[10, 21]),
            ],
        );
        let ws = WitnessSet::build(&q, &db);
        let via_flow = pairwise_bipartite_resilience(&ws).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(via_flow, exact);
    }

    #[test]
    fn pairwise_bipartite_rejects_triple_witnesses() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 2]), ("B", &[2])]);
        let ws = WitnessSet::build(&q, &db);
        assert!(pairwise_bipartite_resilience(&ws).is_none());
    }

    #[test]
    fn permutation_flow_counts_disjoint_pairs() {
        // q_perm :- R(x,y), R(y,x): three disjoint symmetric pairs plus one
        // loop => resilience 4 (Proposition 33: one deletion per witness
        // pair).
        let q = parse_query("R(x,y), R(y,x)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[3, 4]),
                ("R", &[4, 3]),
                ("R", &[5, 6]),
                ("R", &[6, 5]),
                ("R", &[7, 7]),
                ("R", &[8, 9]), // no inverse: not a witness
            ],
        );
        let flow = permutation_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        assert_eq!(flow.resilience, 4);
    }

    #[test]
    fn aperm_flow_matches_exact() {
        // q_Aperm :- A(x), R(x,y), R(y,x): bipartite choice between A-tuples
        // and symmetric pairs.
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[1, 3]),
                ("R", &[3, 1]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[4, 4]),
            ],
        );
        let flow = permutation_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn rep_flow_matches_exact_for_z3() {
        // z3 :- R(x,x), R(x,y), A(y)
        let q = parse_query("R(x,x), R(x,y), A(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1, 1]),
                ("R", &[1, 2]),
                ("R", &[1, 3]),
                ("R", &[2, 2]),
                ("R", &[2, 3]),
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
            ],
        );
        let flow = rep_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        // Off-diagonal tuples never appear in the contingency set.
        for &t in &flow.contingency {
            let vals = db.values_of(t);
            if vals.len() == 2 {
                assert_eq!(vals[0], vals[1], "off-diagonal tuple chosen");
            }
        }
    }

    #[test]
    fn witness_path_flow_respects_uncuttable_set() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 2]), ("B", &[2])]);
        let ws = WitnessSet::build(&q, &db);
        let order = vec![0, 1, 2];
        // Making both A(1) and B(2) uncuttable leaves only R(1,2).
        let a = db
            .lookup(db.schema().relation_id("A").unwrap(), &[1u64])
            .unwrap();
        let b = db
            .lookup(db.schema().relation_id("B").unwrap(), &[2u64])
            .unwrap();
        let uncuttable: HashSet<TupleId> = [a, b].into_iter().collect();
        let flow = witness_path_flow(&q, &db, &ws, &order, &uncuttable).unwrap();
        assert_eq!(flow.resilience, 1);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.relation_of(flow.contingency[0]), r);
    }
}
