//! Flow-based polynomial-time resilience algorithms.
//!
//! All PTIME cases of the dichotomy reduce to minimum cuts. This module
//! contains the generic constructions shared by several cases:
//!
//! * [`witness_path_flow`] — the classic "witnesses are s–t paths over tuple
//!   nodes" construction used for linear queries (Section 2.4) and, with
//!   duplicated self-join positions collapsing onto a single node, for
//!   2-confluences (Proposition 31) and `q_TS3conf` (Proposition 41);
//! * [`pairwise_bipartite_resilience`] — minimum vertex cover via König's
//!   theorem when every witness touches at most two endogenous tuples drawn
//!   from two relations (e.g. the normal form of `q_rats`);
//! * [`permutation_flow_resilience`] — the pair-node construction for
//!   unbound 2-permutations (Propositions 33 and 35);
//! * [`rep_flow_resilience`] — Proposition 36's observation that
//!   off-diagonal tuples of the REP relation are never needed, after which
//!   the witness-path flow applies.
//!
//! Each function returns `None` when the construction detects that the query
//! cannot be made false on the given instance (a witness with no deletable
//! tuple).

use crate::cancel::CancelToken;
use cq::linear::linear_order_all;
use cq::patterns::single_self_join_relation;
use cq::Query;
use database::{FxHashMap, TupleId, TupleStore, WitnessSet, WitnessView};
use flow::{VertexCutNetwork, INF};
use std::collections::HashSet;

/// Reusable buffers for the flow constructions: the tuple → node map, the
/// edge list, the vertex-cut network and the cuttability mask all survive
/// across solves, so a deletion-session step re-runs a flow without
/// allocating per witness (or per tuple, after the first solve).
#[derive(Clone, Debug, Default)]
pub struct FlowScratch {
    /// `node_of[t]` is the node of tuple `t`, or `u32::MAX` when unmapped.
    node_of: Vec<u32>,
    /// Tuples assigned a node in the current run (for cheap reset).
    touched: Vec<TupleId>,
    /// `tuple_of[n]` is the tuple placed on node `n` (valid for tuple nodes).
    tuple_of: Vec<Option<TupleId>>,
    /// Edge list under construction (deduplicated before insertion).
    edges: Vec<(u32, u32)>,
    /// Combined cuttability mask buffer (endogenous minus frozen tuples).
    cuttable: Vec<bool>,
    /// Pair-node lookup for the permutation construction.
    pair_node: FxHashMap<(TupleId, TupleId), u32>,
    /// The vertex-capacitated network (cleared, not reallocated).
    network: VertexCutNetwork,
}

impl FlowScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Dense tuple -> network-node map over borrowed scratch buffers; resetting
/// touches only the tuples mapped by the previous run.
struct NodeMap<'s> {
    node_of: &'s mut Vec<u32>,
    touched: &'s mut Vec<TupleId>,
    tuple_of: &'s mut Vec<Option<TupleId>>,
}

impl<'s> NodeMap<'s> {
    fn prepare(
        node_of: &'s mut Vec<u32>,
        touched: &'s mut Vec<TupleId>,
        tuple_of: &'s mut Vec<Option<TupleId>>,
        num_tuples: usize,
    ) -> NodeMap<'s> {
        if node_of.len() < num_tuples {
            node_of.resize(num_tuples, u32::MAX);
        }
        for t in touched.drain(..) {
            node_of[t.index()] = u32::MAX;
        }
        tuple_of.clear();
        NodeMap {
            node_of,
            touched,
            tuple_of,
        }
    }

    /// The node of `t`, creating it with `capacity` on first use.
    fn node(&mut self, t: TupleId, network: &mut VertexCutNetwork, capacity: u64) -> usize {
        let slot = &mut self.node_of[t.index()];
        if *slot != u32::MAX {
            return *slot as usize;
        }
        let n = network.add_vertex(capacity);
        *slot = n as u32;
        self.touched.push(t);
        if self.tuple_of.len() <= n {
            self.tuple_of.resize(n + 1, None);
        }
        self.tuple_of[n] = Some(t);
        n
    }

    /// Records that `node` (created outside [`NodeMap::node`], e.g. a pair
    /// node) stands for tuple `t`.
    fn register(&mut self, node: usize, t: TupleId) {
        if self.tuple_of.len() <= node {
            self.tuple_of.resize(node + 1, None);
        }
        self.tuple_of[node] = Some(t);
    }

    fn tuple(&self, node: usize) -> Option<TupleId> {
        self.tuple_of.get(node).copied().flatten()
    }
}

/// Deduplicates a directed edge list in place (sort + dedup; no hashing).
fn dedup_edges(edges: &mut Vec<(u32, u32)>) {
    edges.sort_unstable();
    edges.dedup();
}

/// Result of a flow-based resilience computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowResult {
    /// The computed resilience.
    pub resilience: usize,
    /// A contingency set achieving it (one tuple per cut vertex; for
    /// pair-node constructions one representative tuple per pair).
    pub contingency: Vec<TupleId>,
}

/// A flow-based solve interrupted by its [`CancelToken`] mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCancelled {
    /// Flow routed before cancellation — a valid (not necessarily maximum)
    /// flow, hence a certified lower bound on the resilience.
    pub partial_flow: u64,
}

/// Builds the stop callback Dinic polls out of an optional token: a counter
/// increment per call, with the token (and its clock read) consulted only
/// every 64th call, so cancellation support costs the happy path nothing
/// measurable.
fn stop_from_token(cancel: Option<&CancelToken>) -> impl FnMut() -> bool + '_ {
    let mut tick = 0u32;
    move || match cancel {
        Some(token) => {
            tick = tick.wrapping_add(1);
            tick & 63 == 0 && token.is_cancelled()
        }
        None => false,
    }
}

/// The generic witness-path vertex-cut construction.
///
/// Tuples become nodes (capacity 1 if endogenous and not listed in
/// `uncuttable`, infinite otherwise); every witness contributes the s–t path
/// that visits its tuples in the order the atoms appear in `atom_order`.
/// For *linear* atom orders every hybrid s–t path of the resulting graph is
/// itself a witness, so the minimum vertex cut equals the resilience.
///
/// Returns `None` if some witness has no cuttable tuple at all.
pub fn witness_path_flow<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    uncuttable: &HashSet<TupleId>,
) -> Option<FlowResult> {
    witness_path_flow_opts(q, db, ws, atom_order, uncuttable, true)
}

/// [`witness_path_flow`] with contingency extraction made optional: with
/// `want_contingency = false` only the cut *value* is computed (the
/// residual-reachability sweep and cut translation are skipped) and the
/// returned contingency is empty.
pub fn witness_path_flow_opts<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    uncuttable: &HashSet<TupleId>,
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    // Dense cuttability mask: endogenous and not frozen by the caller.
    scratch.cuttable = db.endogenous_mask(q);
    for t in uncuttable {
        scratch.cuttable[t.index()] = false;
    }
    uncancelled(witness_path_flow_core(
        db,
        ws.view(),
        atom_order,
        want_contingency,
        &mut scratch,
        None,
    ))
}

/// Unwraps a cancellable flow result produced without a token (which can
/// therefore never be the cancelled variant).
fn uncancelled(result: Result<Option<FlowResult>, FlowCancelled>) -> Option<FlowResult> {
    match result {
        Ok(flow) => flow,
        Err(_) => unreachable!("no token was supplied, so the flow cannot be cancelled"),
    }
}

/// [`witness_path_flow_opts`] over a (possibly live-restricted)
/// [`WitnessView`] with caller-owned scratch. `scratch.cuttable` must hold
/// the cuttability mask (endogenous tuples minus any caller-frozen ones)
/// before the call — session callers cache it across steps.
pub fn witness_path_flow_live<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(witness_path_flow_core(
        db,
        view,
        atom_order,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`witness_path_flow_live`] with an optional [`CancelToken`], polled at
/// bounded intervals inside the max-flow run. `Err` reports the partial flow
/// routed before cancellation; the `Ok` results are identical to the
/// token-free function.
pub fn witness_path_flow_live_cancellable<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    witness_path_flow_core(db, view, atom_order, want_contingency, scratch, cancel)
}

/// Seeds `scratch.cuttable` with the endogenous mask of `q` over `db`
/// (reusing the buffer). Callers may then freeze further tuples before
/// running [`witness_path_flow_live`].
pub fn seed_cuttable_mask<S: TupleStore + ?Sized>(q: &Query, db: &S, scratch: &mut FlowScratch) {
    db.endogenous_mask_into(q, &mut scratch.cuttable);
}

/// Marks `t` uncuttable in `scratch.cuttable`.
pub fn freeze_tuple(t: TupleId, scratch: &mut FlowScratch) {
    if t.index() < scratch.cuttable.len() {
        scratch.cuttable[t.index()] = false;
    }
}

fn witness_path_flow_core<S: TupleStore + ?Sized>(
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    if view.is_empty() {
        return Ok(Some(FlowResult {
            resilience: 0,
            contingency: Vec::new(),
        }));
    }
    let FlowScratch {
        node_of,
        touched,
        tuple_of,
        edges,
        cuttable,
        network,
        ..
    } = scratch;
    network.clear();
    let source = network.add_vertex(INF);
    let target = network.add_vertex(INF);
    let mut nodes = NodeMap::prepare(node_of, touched, tuple_of, db.num_tuples());

    edges.clear();
    for w in view.witnesses() {
        // Check the witness can be destroyed at all.
        if !w.atom_tuples.iter().any(|t| cuttable[t.index()]) {
            return Ok(None);
        }
        let mut prev = source;
        for &atom_idx in atom_order {
            let t = w.atom_tuples[atom_idx];
            let cap = if cuttable[t.index()] { 1 } else { INF };
            let n = nodes.node(t, network, cap);
            if n != prev {
                edges.push((prev as u32, n as u32));
            }
            prev = n;
        }
        edges.push((prev as u32, target as u32));
    }
    dedup_edges(edges);
    for &(from, to) in edges.iter() {
        network.add_edge(from as usize, to as usize);
    }
    let mut stop = stop_from_token(cancel);
    if !want_contingency {
        let value = network
            .min_vertex_cut_value_interruptible(source, target, &mut stop)
            .map_err(|e| FlowCancelled {
                partial_flow: e.partial_flow,
            })?;
        return Ok(Some(FlowResult {
            resilience: value as usize,
            contingency: Vec::new(),
        }));
    }
    let cut = network
        .min_vertex_cut_interruptible(source, target, &mut stop)
        .map_err(|e| FlowCancelled {
            partial_flow: e.partial_flow,
        })?;
    let contingency: Vec<TupleId> = cut
        .cut_vertices
        .iter()
        .filter_map(|&v| nodes.tuple(v))
        .collect();
    Ok(Some(FlowResult {
        resilience: cut.value as usize,
        contingency,
    }))
}

/// Witness-path flow using the query's own linear order of all atoms.
/// Returns `None` if the query is not linear or some witness is uncuttable.
pub fn linear_query_flow<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    let order = linear_order_all(q)?;
    let ws = WitnessSet::build(q, db);
    witness_path_flow(q, db, &ws, &order, &HashSet::new())
}

/// Minimum hitting set when every witness touches at most two endogenous
/// tuples: this is vertex cover over the "conflict graph" of tuples, solvable
/// by König's theorem whenever that graph is bipartite. Returns `None` when
/// some witness has more than two endogenous tuples, no endogenous tuple, or
/// the conflict graph is not bipartite.
pub fn pairwise_bipartite_resilience(ws: &WitnessSet) -> Option<usize> {
    pairwise_bipartite_resilience_view(ws.view())
}

/// [`pairwise_bipartite_resilience`] over a (possibly live-restricted)
/// [`WitnessView`] — the engine's deletion sessions pass the live rows
/// directly instead of materializing a filtered witness set.
pub fn pairwise_bipartite_resilience_view(view: WitnessView<'_>) -> Option<usize> {
    use satgad::UndirectedGraph;

    // The witness set's CSR index already renumbers the relevant tuples into
    // a dense `0..k` space; use it as the vertex numbering directly.
    let num_vertices = view.relevant_tuples().len();
    let dense = |t: TupleId| view.dense_id_of(t).expect("relevant tuple has a dense id") as usize;
    let mut graph = UndirectedGraph::new(num_vertices);
    let mut forced: HashSet<usize> = HashSet::new();
    for set in view.endogenous_sets() {
        match set.len() {
            0 => return None,
            1 => {
                forced.insert(dense(set[0]));
            }
            2 => {
                graph.add_edge(dense(set[0]), dense(set[1]));
            }
            _ => return None,
        }
    }
    // Forced vertices (singleton witnesses) must be deleted; remove their
    // incident edges by solving VC on the residual graph.
    let mut residual = UndirectedGraph::new(num_vertices);
    for (u, v) in graph.edges() {
        if !forced.contains(&u) && !forced.contains(&v) {
            residual.add_edge(u, v);
        }
    }
    let vc = satgad::bipartite_min_vertex_cover(&residual)?;
    Some(forced.len() + vc)
}

/// Resilience of an unbound 2-permutation query (Propositions 33 and 35,
/// "case 1"). The self-join relation `R` occurs as `R(x,y), R(y,x)`; every
/// witness either uses a symmetric pair `{R(a,b), R(b,a)}` (or a loop
/// `R(a,a)`), of which a minimum contingency set deletes exactly one, or is
/// destroyed further left. The construction collapses each symmetric pair to
/// a single unit-capacity "pair node" placed after the remaining endogenous
/// tuples of the witness (taken in the query's pseudo-linear order).
pub fn permutation_flow_resilience<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
) -> Option<FlowResult> {
    let ws = WitnessSet::build(q, db);
    permutation_flow_with(q, db, &ws, true)
}

/// [`permutation_flow_resilience`] over an already-built witness set, with
/// optional contingency extraction. Used by the engine so the per-instance
/// witness enumeration is shared with the dispatcher.
pub fn permutation_flow_with<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    seed_cuttable_mask(q, db, &mut scratch);
    permutation_flow_live(q, db, ws.view(), want_contingency, &mut scratch)
}

/// [`permutation_flow_with`] over a (possibly live-restricted)
/// [`WitnessView`] with caller-owned scratch. `scratch.cuttable` must hold
/// the endogenous mask of `q` (see [`seed_cuttable_mask`]).
pub fn permutation_flow_live<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(permutation_flow_live_cancellable(
        q,
        db,
        view,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`permutation_flow_live`] with an optional [`CancelToken`], polled at
/// bounded intervals inside the max-flow run (see
/// [`witness_path_flow_live_cancellable`]).
pub fn permutation_flow_live_cancellable<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    let Some((rel, r_atoms)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    if r_atoms.len() != 2 {
        return Ok(None);
    }
    if view.is_empty() {
        return Ok(Some(FlowResult {
            resilience: 0,
            contingency: Vec::new(),
        }));
    }
    let r_is_endogenous = r_atoms.iter().any(|&i| !q.atom(i).exogenous);

    // Order of the non-R atoms: keep query order restricted to endogenous
    // non-R atoms (pseudo-linear for the queries this is applied to).
    let left_atoms: Vec<usize> = (0..q.num_atoms())
        .filter(|i| !r_atoms.contains(i) && !q.atom(*i).exogenous)
        .collect();

    let FlowScratch {
        node_of,
        touched,
        tuple_of,
        edges,
        cuttable: endo,
        pair_node,
        network,
    } = scratch;
    network.clear();
    let source = network.add_vertex(INF);
    let target = network.add_vertex(INF);
    let mut nodes = NodeMap::prepare(node_of, touched, tuple_of, db.num_tuples());
    pair_node.clear();
    edges.clear();

    let _ = rel; // the relation id is implied by `r_atoms`

    for w in view.witnesses() {
        let mut prev = source;
        for &atom_idx in &left_atoms {
            let t = w.atom_tuples[atom_idx];
            let cap = if endo[t.index()] { 1 } else { INF };
            let n = nodes.node(t, network, cap);
            if n != prev {
                edges.push((prev as u32, n as u32));
            }
            prev = n;
        }
        // The symmetric pair used by this witness.
        let t1 = w.atom_tuples[r_atoms[0]];
        let t2 = w.atom_tuples[r_atoms[1]];
        let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let n = match pair_node.get(&key) {
            Some(&n) => n as usize,
            None => {
                let cap = if r_is_endogenous && endo[key.0.index()] {
                    1
                } else {
                    INF
                };
                let n = network.add_vertex(cap);
                pair_node.insert(key, n as u32);
                nodes.register(n, key.0);
                n
            }
        };
        if n != prev {
            edges.push((prev as u32, n as u32));
        }
        edges.push((n as u32, target as u32));

        // Guard against unfalsifiable witnesses.
        if !w.atom_tuples.iter().any(|t| endo[t.index()]) {
            return Ok(None);
        }
    }
    dedup_edges(edges);
    for &(from, to) in edges.iter() {
        network.add_edge(from as usize, to as usize);
    }
    let mut stop = stop_from_token(cancel);
    if !want_contingency {
        let value = network
            .min_vertex_cut_value_interruptible(source, target, &mut stop)
            .map_err(|e| FlowCancelled {
                partial_flow: e.partial_flow,
            })?;
        return Ok(Some(FlowResult {
            resilience: value as usize,
            contingency: Vec::new(),
        }));
    }
    let cut = network
        .min_vertex_cut_interruptible(source, target, &mut stop)
        .map_err(|e| FlowCancelled {
            partial_flow: e.partial_flow,
        })?;
    let contingency: Vec<TupleId> = cut
        .cut_vertices
        .iter()
        .filter_map(|&v| nodes.tuple(v))
        .collect();
    Ok(Some(FlowResult {
        resilience: cut.value as usize,
        contingency,
    }))
}

/// Resilience of a REP query containing `z3` (Proposition 36): tuples
/// `R(a,b)` with `a != b` are never needed in a minimum contingency set, so
/// they are treated as uncuttable and the witness-path flow applies over the
/// pseudo-linear order of the endogenous atoms.
pub fn rep_flow_resilience<S: TupleStore + ?Sized>(q: &Query, db: &S) -> Option<FlowResult> {
    let ws = WitnessSet::build(q, db);
    let order = rep_atom_order(q);
    rep_flow_with(q, db, &ws, &order, true)
}

/// The atom order the REP flow walks: linear, else pseudo-linear, else
/// query order. Depends only on the query, so batch callers (the engine)
/// compute it once per compilation.
pub fn rep_atom_order(q: &Query) -> Vec<usize> {
    cq::linear::linear_order_all(q)
        .or_else(|| cq::linear::pseudo_linear_order(q))
        .unwrap_or_else(|| (0..q.num_atoms()).collect())
}

/// [`rep_flow_resilience`] over an already-built witness set and a
/// precomputed [`rep_atom_order`], with optional contingency extraction
/// (engine entry point).
pub fn rep_flow_with<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    ws: &WitnessSet,
    atom_order: &[usize],
    want_contingency: bool,
) -> Option<FlowResult> {
    let mut scratch = FlowScratch::new();
    seed_cuttable_mask(q, db, &mut scratch);
    rep_flow_live(q, db, ws.view(), atom_order, want_contingency, &mut scratch)
}

/// [`rep_flow_with`] over a (possibly live-restricted) [`WitnessView`] with
/// caller-owned scratch. `scratch.cuttable` must hold the endogenous mask of
/// `q` on entry; the off-diagonal REP tuples are frozen in place here
/// (Proposition 36: they are never needed in a minimum contingency set).
pub fn rep_flow_live<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
) -> Option<FlowResult> {
    uncancelled(rep_flow_live_cancellable(
        q,
        db,
        view,
        atom_order,
        want_contingency,
        scratch,
        None,
    ))
}

/// [`rep_flow_live`] with an optional [`CancelToken`], polled at bounded
/// intervals inside the max-flow run (see
/// [`witness_path_flow_live_cancellable`]).
pub fn rep_flow_live_cancellable<S: TupleStore + ?Sized>(
    q: &Query,
    db: &S,
    view: WitnessView<'_>,
    atom_order: &[usize],
    want_contingency: bool,
    scratch: &mut FlowScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<FlowResult>, FlowCancelled> {
    let Some((rel, _)) = single_self_join_relation(q) else {
        return Ok(None);
    };
    let Some(db_rel) = db.schema().relation_id(q.schema().name(rel)) else {
        return Ok(None);
    };
    for &t in db.tuples_of(db_rel) {
        let vals = db.values_of(t);
        if vals.len() == 2 && vals[0] != vals[1] {
            freeze_tuple(t, scratch);
        }
    }
    witness_path_flow_core(db, view, atom_order, want_contingency, scratch, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use cq::parse_query;
    use database::Database;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn linear_sjfree_flow_matches_exact() {
        // q :- A(x), R(x,y), B(y) over a small bipartite-ish instance.
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[1, 11]),
                ("R", &[2, 10]),
                ("B", &[10]),
                ("B", &[11]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        // Contingency really works.
        let gamma: HashSet<TupleId> = flow.contingency.iter().copied().collect();
        let ws = WitnessSet::build(&q, &db);
        assert!(ws.is_contingency_set(&gamma));
    }

    #[test]
    fn exogenous_middle_relation_is_never_cut() {
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 10]),
                ("B", &[10]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        assert_eq!(flow.resilience, 1); // delete B(10)
        let b = db.schema().relation_id("B").unwrap();
        assert!(flow.contingency.iter().all(|&t| db.relation_of(t) == b));
    }

    #[test]
    fn acconf_flow_matches_exact_on_crafted_instance() {
        // The Proposition 12 case analysis instance.
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[4]),
                ("C", &[1]),
                ("C", &[5]),
                ("R", &[1, 2]),
                ("R", &[4, 2]),
                ("R", &[5, 2]),
                ("R", &[1, 3]),
                ("R", &[5, 3]),
            ],
        );
        let flow = linear_query_flow(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn unfalsifiable_instance_returns_none() {
        let q = parse_query("R^x(x,y), S^x(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("S", &[2, 3])]);
        let ws = WitnessSet::build(&q, &db);
        let order: Vec<usize> = vec![0, 1];
        assert!(witness_path_flow(&q, &db, &ws, &order, &HashSet::new()).is_none());
    }

    #[test]
    fn empty_database_has_zero_resilience() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = Database::for_query(&q);
        let flow = linear_query_flow(&q, &db).unwrap();
        assert_eq!(flow.resilience, 0);
        assert!(flow.contingency.is_empty());
    }

    #[test]
    fn pairwise_bipartite_matches_exact_for_rats_normal_form() {
        // Normal form of q_rats: R^x(x,y), A(x), T^x(z,x), S(y,z).
        let q = parse_query("R^x(x,y), A(x), T^x(z,x), S(y,z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("T", &[20, 1]),
                ("T", &[21, 2]),
                ("S", &[10, 20]),
                ("S", &[11, 21]),
                ("S", &[10, 21]),
            ],
        );
        let ws = WitnessSet::build(&q, &db);
        let via_flow = pairwise_bipartite_resilience(&ws).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(via_flow, exact);
    }

    #[test]
    fn pairwise_bipartite_rejects_triple_witnesses() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 2]), ("B", &[2])]);
        let ws = WitnessSet::build(&q, &db);
        assert!(pairwise_bipartite_resilience(&ws).is_none());
    }

    #[test]
    fn permutation_flow_counts_disjoint_pairs() {
        // q_perm :- R(x,y), R(y,x): three disjoint symmetric pairs plus one
        // loop => resilience 4 (Proposition 33: one deletion per witness
        // pair).
        let q = parse_query("R(x,y), R(y,x)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[3, 4]),
                ("R", &[4, 3]),
                ("R", &[5, 6]),
                ("R", &[6, 5]),
                ("R", &[7, 7]),
                ("R", &[8, 9]), // no inverse: not a witness
            ],
        );
        let flow = permutation_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        assert_eq!(flow.resilience, 4);
    }

    #[test]
    fn aperm_flow_matches_exact() {
        // q_Aperm :- A(x), R(x,y), R(y,x): bipartite choice between A-tuples
        // and symmetric pairs.
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[1, 3]),
                ("R", &[3, 1]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[4, 4]),
            ],
        );
        let flow = permutation_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
    }

    #[test]
    fn rep_flow_matches_exact_for_z3() {
        // z3 :- R(x,x), R(x,y), A(y)
        let q = parse_query("R(x,x), R(x,y), A(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1, 1]),
                ("R", &[1, 2]),
                ("R", &[1, 3]),
                ("R", &[2, 2]),
                ("R", &[2, 3]),
                ("A", &[1]),
                ("A", &[2]),
                ("A", &[3]),
            ],
        );
        let flow = rep_flow_resilience(&q, &db).unwrap();
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(flow.resilience, exact);
        // Off-diagonal tuples never appear in the contingency set.
        for &t in &flow.contingency {
            let vals = db.values_of(t);
            if vals.len() == 2 {
                assert_eq!(vals[0], vals[1], "off-diagonal tuple chosen");
            }
        }
    }

    #[test]
    fn witness_path_flow_respects_uncuttable_set() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let db = build_db(&q, &[("A", &[1]), ("R", &[1, 2]), ("B", &[2])]);
        let ws = WitnessSet::build(&q, &db);
        let order = vec![0, 1, 2];
        // Making both A(1) and B(2) uncuttable leaves only R(1,2).
        let a = db
            .lookup(db.schema().relation_id("A").unwrap(), &[1u64])
            .unwrap();
        let b = db
            .lookup(db.schema().relation_id("B").unwrap(), &[2u64])
            .unwrap();
        let uncuttable: HashSet<TupleId> = [a, b].into_iter().collect();
        let flow = witness_path_flow(&q, &db, &ws, &order, &uncuttable).unwrap();
        assert_eq!(flow.resilience, 1);
        let r = db.schema().relation_id("R").unwrap();
        assert_eq!(db.relation_of(flow.contingency[0]), r);
    }
}
