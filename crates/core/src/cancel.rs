//! Cooperative cancellation for long-running solves.
//!
//! Resilience is NP-hard outside the tractable classes, so an exact search
//! can run essentially forever on hostile inputs. A [`CancelToken`] is a
//! cheap shared flag (atomic + optional wall-clock deadline) that the
//! solve paths poll at bounded intervals — the exact branch-and-bound loop,
//! Dinic's augmentation loop, witness enumeration and the batch dispatchers
//! all check it — and abort with
//! [`SolveError::Cancelled`](crate::engine::SolveError::Cancelled), carrying
//! whatever anytime bounds the search had established.
//!
//! ```
//! use resilience_core::cancel::CancelToken;
//! use std::time::Duration;
//!
//! let token = CancelToken::with_deadline(Duration::from_millis(250));
//! assert!(!token.is_cancelled());
//! token.cancel();
//! assert!(token.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional deadline.
///
/// Cloning shares the flag: cancelling any clone cancels them all. Polling
/// is one relaxed atomic load plus (when a deadline is set) one clock read,
/// so callers poll at bounded intervals — e.g. every 1024 branch-and-bound
/// nodes — to keep the happy-path overhead negligible.
///
/// Tokens compare by *identity* (two tokens are equal iff they share the
/// same flag), which keeps `SolveOptions` comparable: a session replays a
/// cached report only when the options — including the token — are the very
/// same, so a fresh per-request deadline never replays a stale result.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline: cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels once `timeout` has elapsed (measured from
    /// this call). [`CancelToken::cancel`] still works before the deadline.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The deadline, when one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }

    #[test]
    fn tokens_compare_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
