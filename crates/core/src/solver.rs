//! The legacy one-call solver facade, kept as a thin shim over the
//! [`engine`](crate::engine).
//!
//! [`ResilienceSolver`] predates the compiled API: it classified the query
//! at construction and re-planned everything else on every
//! [`solve`](ResilienceSolver::solve) call. It now simply forwards to a
//! [`CompiledQuery`] so existing callers keep working, but new code should
//! use the engine directly:
//!
//! * `ResilienceSolver::new(&q)` → [`Engine::compile(&q)`](crate::engine::Engine::compile)
//! * `solver.solve(&db)` → `compiled.solve(&db.freeze(), &SolveOptions::new())`
//! * `solver.resilience(&db)` → `report.resilience.as_finite()`
//!
//! The shim preserves the legacy panicking contract: an exhausted exact
//! node budget or a schema mismatch panics here, whereas the engine returns
//! a [`SolveError`](crate::engine::SolveError).

#![allow(deprecated)]

use crate::engine::{CompiledQuery, Engine, SolveOptions, SolveScratch};
use cq::{Classification, Query};
use database::{Database, TupleId};

pub use crate::engine::SolveMethod;

/// Result of solving one resilience instance through the legacy facade.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The resilience `ρ(q, D)`, or `None` when the query cannot be
    /// falsified by deleting endogenous tuples.
    pub resilience: Option<usize>,
    /// A contingency set achieving the value, when the algorithm produces
    /// one (exact and most flow methods do).
    pub contingency: Option<Vec<TupleId>>,
    /// The algorithm used.
    pub method: SolveMethod,
}

/// A resilience solver specialized to one query (legacy facade).
///
/// Construction runs the dichotomy classifier once; each call to
/// [`ResilienceSolver::solve`] then dispatches to the right algorithm for the
/// given database instance.
#[deprecated(
    since = "0.2.0",
    note = "use resilience_core::engine::Engine::compile and CompiledQuery::solve / solve_batch"
)]
#[derive(Clone, Debug)]
pub struct ResilienceSolver {
    compiled: CompiledQuery,
}

impl ResilienceSolver {
    /// Builds a solver for `q` (compiles the query through the engine).
    pub fn new(q: &Query) -> Self {
        ResilienceSolver {
            compiled: Engine::compile(q),
        }
    }

    /// The classification computed at construction time.
    pub fn classification(&self) -> &Classification {
        self.compiled.classification()
    }

    /// The query this solver answers resilience for.
    pub fn query(&self) -> &Query {
        self.compiled.query()
    }

    /// The underlying compiled query, for incremental migration.
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// Computes the resilience of the query over `db`.
    ///
    /// # Panics
    /// Panics if the exact search exceeds its node budget or `db` is missing
    /// a relation of the query (the engine returns these as errors instead).
    pub fn solve(&self, db: &Database) -> SolveOutcome {
        let mut scratch = SolveScratch::new();
        match self
            .compiled
            .solve_store(db, &SolveOptions::new(), &mut scratch)
        {
            Ok(report) => SolveOutcome {
                resilience: report.resilience.as_finite(),
                contingency: report.contingency,
                method: report.method,
            },
            Err(e) => panic!("{e}"),
        }
    }

    /// Convenience wrapper returning only the numeric resilience.
    pub fn resilience(&self, db: &Database) -> Option<usize> {
        self.solve(db).resilience
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use cq::catalogue;
    use cq::parse_query;
    use database::WitnessSet;
    use std::collections::HashSet;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn chain_instance_uses_exact_solver() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(2));
        assert_eq!(outcome.method, SolveMethod::ExactBranchAndBound);
        assert!(solver.classification().complexity.is_np_complete());
    }

    #[test]
    fn acconf_uses_linear_flow() {
        let nq = catalogue::q_acconf();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[4]),
                ("C", &[1]),
                ("C", &[5]),
                ("R", &[1, 2]),
                ("R", &[4, 2]),
                ("R", &[5, 2]),
                ("R", &[1, 3]),
                ("R", &[5, 3]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::LinearFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn rats_uses_polynomial_path() {
        let nq = catalogue::q_rats();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("T", &[20, 1]),
                ("T", &[21, 2]),
                ("S", &[10, 20]),
                ("S", &[11, 21]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_ne!(outcome.method, SolveMethod::ExactBranchAndBound);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
        assert_eq!(outcome.resilience, Some(2));
    }

    #[test]
    fn aperm_uses_permutation_flow() {
        let nq = catalogue::q_aperm();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("A", &[3]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::PermutationFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn z3_uses_rep_flow() {
        let nq = catalogue::z3();
        let db = build_db(
            &nq.query,
            &[
                ("R", &[1, 1]),
                ("R", &[1, 2]),
                ("R", &[2, 2]),
                ("A", &[1]),
                ("A", &[2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::RepFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn a3perm_r_uses_special_flow() {
        let nq = catalogue::q_a3perm_r();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[2, 2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::SpecialFlow("q_A3perm-R"));
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn ts3conf_uses_special_flow() {
        let nq = catalogue::q_ts3conf();
        let db = build_db(
            &nq.query,
            &[
                ("T", &[1, 2]),
                ("S", &[1, 2]),
                ("R", &[1, 2]),
                ("T", &[3, 4]),
                ("R", &[3, 4]),
                ("R", &[5, 4]),
                ("R", &[5, 6]),
                ("S", &[5, 6]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::SpecialFlow("q_TS3conf"));
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn unsatisfied_database_is_already_false() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(0));
        assert_eq!(outcome.method, SolveMethod::AlreadyFalse);
    }

    #[test]
    fn fully_exogenous_query_is_unfalsifiable() {
        let q = parse_query("R^x(x,y)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, None);
        assert_eq!(outcome.method, SolveMethod::Unfalsifiable);
    }

    #[test]
    fn disconnected_query_takes_component_minimum() {
        // Components: A(x),R(x,y) and B(u),S(u,v). First component needs 2
        // deletions, second needs 1; the minimum is 1.
        let q = parse_query("A(x), R(x,y), B(u), S(u,v)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("B", &[5]),
                ("S", &[5, 50]),
            ],
        );
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::ComponentMinimum);
        assert_eq!(outcome.resilience, Some(1));
        let exact = ExactSolver::new().resilience_value(&q, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn contingency_sets_returned_by_flow_methods_are_valid() {
        let nq = catalogue::q_acconf();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("C", &[3]),
                ("R", &[1, 2]),
                ("R", &[3, 2]),
                ("A", &[4]),
                ("R", &[4, 2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        let gamma: HashSet<TupleId> = outcome.contingency.unwrap().into_iter().collect();
        assert_eq!(gamma.len(), outcome.resilience.unwrap());
        let ws = WitnessSet::build(&nq.query, &db);
        assert!(ws.is_contingency_set(&gamma));
    }

    #[test]
    fn dominated_relation_is_not_deleted_by_the_solver() {
        // q_rats: the normal form makes R and T exogenous, so the solver's
        // contingency set may only contain A- or S-tuples.
        let nq = catalogue::q_rats();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("R", &[1, 10]),
                ("T", &[20, 1]),
                ("S", &[10, 20]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(1));
        if let Some(gamma) = &outcome.contingency {
            for &t in gamma {
                let name = db.schema().name(db.relation_of(t));
                assert!(
                    name == "A" || name == "S",
                    "unexpected deletion from {name}"
                );
            }
        }
    }

    #[test]
    fn shim_agrees_with_the_engine() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        let report = solver
            .compiled()
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap();
        assert_eq!(outcome.resilience, report.resilience.as_finite());
        assert_eq!(outcome.contingency, report.contingency);
        assert_eq!(outcome.method, report.method);
    }
}
