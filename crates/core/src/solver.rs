//! The unified resilience solver: classify the query, then dispatch to the
//! matching polynomial algorithm or to the exact branch-and-bound solver.

use crate::exact::ExactSolver;
use crate::flow_algorithms::{
    pairwise_bipartite_resilience, permutation_flow_resilience, rep_flow_resilience,
    witness_path_flow, FlowResult,
};
use crate::special::{a3perm_r_resilience, swx3perm_r_resilience, ts3conf_resilience};
use cq::linear::linear_order_all;
use cq::{classify, Classification, Complexity, PtimeAlgorithm, Query};
use database::{Database, TupleId, WitnessSet};
use std::collections::HashSet;

/// Which algorithm produced a [`SolveOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveMethod {
    /// The database does not satisfy the query; resilience is 0.
    AlreadyFalse,
    /// Some witness uses only exogenous tuples; no contingency set exists.
    Unfalsifiable,
    /// Witness-path network flow over a linear atom order.
    LinearFlow,
    /// König bipartite vertex cover over two-tuple witnesses.
    BipartiteCover,
    /// Pair-node flow for unbound permutations.
    PermutationFlow,
    /// Proposition 36 flow with off-diagonal tuples frozen.
    RepFlow,
    /// One of the dedicated Section 8 constructions (`q_A3perm-R`,
    /// `q_Swx3perm-R`, `q_TS3conf`).
    SpecialFlow(&'static str),
    /// Component-wise minimum (Lemma 14).
    ComponentMinimum,
    /// Exact branch-and-bound over the witness hypergraph (used for
    /// NP-complete and open queries, and as a fallback when a polynomial
    /// construction does not apply to the instance).
    ExactBranchAndBound,
}

/// Result of solving one resilience instance.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The resilience `ρ(q, D)`, or `None` when the query cannot be
    /// falsified by deleting endogenous tuples.
    pub resilience: Option<usize>,
    /// A contingency set achieving the value, when the algorithm produces
    /// one (exact and most flow methods do).
    pub contingency: Option<Vec<TupleId>>,
    /// The algorithm used.
    pub method: SolveMethod,
}

/// A resilience solver specialized to one query.
///
/// Construction runs the dichotomy classifier once; each call to
/// [`ResilienceSolver::solve`] then dispatches to the right algorithm for the
/// given database instance.
#[derive(Clone, Debug)]
pub struct ResilienceSolver {
    query: Query,
    classification: Classification,
    exact: ExactSolver,
}

impl ResilienceSolver {
    /// Builds a solver for `q`.
    pub fn new(q: &Query) -> Self {
        ResilienceSolver {
            query: q.clone(),
            classification: classify(q),
            exact: ExactSolver::new(),
        }
    }

    /// The classification computed at construction time.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The query this solver answers resilience for.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Computes the resilience of the query over `db`.
    pub fn solve(&self, db: &Database) -> SolveOutcome {
        // All algorithms work on the domination normal form: it has the same
        // resilience (Proposition 18) and its exogenous labelling is what the
        // polynomial constructions rely on.
        let q = &self.classification.evidence.normalized;
        let ws = WitnessSet::build(q, db);
        if ws.is_empty() {
            return SolveOutcome {
                resilience: Some(0),
                contingency: Some(Vec::new()),
                method: SolveMethod::AlreadyFalse,
            };
        }
        if ws.has_undeletable_witness() {
            return SolveOutcome {
                resilience: None,
                contingency: None,
                method: SolveMethod::Unfalsifiable,
            };
        }

        match &self.classification.complexity {
            Complexity::PTime(alg) => self.solve_ptime(alg, q, db, &ws),
            Complexity::NpComplete(_) | Complexity::Open => self.solve_exact(&ws),
        }
    }

    /// Convenience wrapper returning only the numeric resilience.
    pub fn resilience(&self, db: &Database) -> Option<usize> {
        self.solve(db).resilience
    }

    fn solve_exact(&self, ws: &WitnessSet) -> SolveOutcome {
        let result = self.exact.resilience_of_witnesses(ws);
        SolveOutcome {
            resilience: result.resilience,
            contingency: Some(result.contingency),
            method: SolveMethod::ExactBranchAndBound,
        }
    }

    fn finish_flow(&self, flow: FlowResult, method: SolveMethod) -> SolveOutcome {
        SolveOutcome {
            resilience: Some(flow.resilience),
            contingency: Some(flow.contingency),
            method,
        }
    }

    fn solve_ptime(
        &self,
        alg: &PtimeAlgorithm,
        q: &Query,
        db: &Database,
        ws: &WitnessSet,
    ) -> SolveOutcome {
        match alg {
            PtimeAlgorithm::Unfalsifiable => SolveOutcome {
                resilience: None,
                contingency: None,
                method: SolveMethod::Unfalsifiable,
            },
            PtimeAlgorithm::ComponentWise => self.solve_componentwise(db),
            PtimeAlgorithm::SjFreeLinearFlow | PtimeAlgorithm::ConfluenceFlow => {
                if let Some(order) = linear_order_all(q) {
                    if let Some(flow) = witness_path_flow(q, db, ws, &order, &HashSet::new()) {
                        return self.finish_flow(flow, SolveMethod::LinearFlow);
                    }
                }
                if let Some(value) = pairwise_bipartite_resilience(ws) {
                    return SolveOutcome {
                        resilience: Some(value),
                        contingency: None,
                        method: SolveMethod::BipartiteCover,
                    };
                }
                self.solve_exact(ws)
            }
            PtimeAlgorithm::UnboundPermutation => match permutation_flow_resilience(q, db) {
                Some(flow) => self.finish_flow(flow, SolveMethod::PermutationFlow),
                None => self.solve_exact(ws),
            },
            PtimeAlgorithm::RepeatedVariableFlow => match rep_flow_resilience(q, db) {
                Some(flow) => self.finish_flow(flow, SolveMethod::RepFlow),
                None => self.solve_exact(ws),
            },
            PtimeAlgorithm::CatalogueMatch(name) => self.solve_catalogue(name, q, db, ws),
        }
    }

    fn solve_catalogue(
        &self,
        name: &str,
        q: &Query,
        db: &Database,
        ws: &WitnessSet,
    ) -> SolveOutcome {
        let special = match name {
            "q_A3perm-R" => a3perm_r_resilience(q, db).map(|f| (f, "q_A3perm-R")),
            "q_Swx3perm-R" => swx3perm_r_resilience(q, db).map(|f| (f, "q_Swx3perm-R")),
            "q_TS3conf" => ts3conf_resilience(q, db).map(|f| (f, "q_TS3conf")),
            "q_perm" | "q_Aperm" => {
                return match permutation_flow_resilience(q, db) {
                    Some(flow) => self.finish_flow(flow, SolveMethod::PermutationFlow),
                    None => self.solve_exact(ws),
                }
            }
            _ => None,
        };
        match special {
            Some((flow, tag)) => self.finish_flow(flow, SolveMethod::SpecialFlow(tag)),
            None => {
                // The query matched a catalogue entry structurally but uses
                // different relation names than the dedicated construction
                // expects; fall back to the exact solver (still correct, just
                // not polynomial-by-construction).
                self.solve_exact(ws)
            }
        }
    }

    fn solve_componentwise(&self, db: &Database) -> SolveOutcome {
        let minimized = &self.classification.evidence.minimized;
        let components = minimized.components();
        // Components are independent subproblems (Lemma 14): solve them on
        // scoped threads. (The build environment has no rayon; see
        // vendor/README.md. std::thread::scope gives the same fork-join
        // shape without a dependency.)
        let outcomes: Vec<SolveOutcome> = if components.len() <= 1 {
            components
                .iter()
                .map(|comp| ResilienceSolver::new(&minimized.subquery(comp)).solve(db))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = components
                    .iter()
                    .map(|comp| {
                        let sub = minimized.subquery(comp);
                        scope.spawn(move || ResilienceSolver::new(&sub).solve(db))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("component solver panicked"))
                    .collect()
            })
        };
        let mut best: Option<(usize, Vec<TupleId>)> = None;
        for outcome in outcomes {
            match outcome.resilience {
                None => continue,
                Some(r) => {
                    let better = best.as_ref().is_none_or(|(b, _)| r < *b);
                    if better {
                        best = Some((r, outcome.contingency.unwrap_or_default()));
                    }
                }
            }
        }
        match best {
            Some((r, gamma)) => SolveOutcome {
                resilience: Some(r),
                contingency: Some(gamma),
                method: SolveMethod::ComponentMinimum,
            },
            None => SolveOutcome {
                resilience: None,
                contingency: None,
                method: SolveMethod::Unfalsifiable,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::catalogue;
    use cq::parse_query;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn chain_instance_uses_exact_solver() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(2));
        assert_eq!(outcome.method, SolveMethod::ExactBranchAndBound);
        assert!(solver.classification().complexity.is_np_complete());
    }

    #[test]
    fn acconf_uses_linear_flow() {
        let nq = catalogue::q_acconf();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[4]),
                ("C", &[1]),
                ("C", &[5]),
                ("R", &[1, 2]),
                ("R", &[4, 2]),
                ("R", &[5, 2]),
                ("R", &[1, 3]),
                ("R", &[5, 3]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::LinearFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn rats_uses_polynomial_path() {
        let nq = catalogue::q_rats();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("T", &[20, 1]),
                ("T", &[21, 2]),
                ("S", &[10, 20]),
                ("S", &[11, 21]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_ne!(outcome.method, SolveMethod::ExactBranchAndBound);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
        assert_eq!(outcome.resilience, Some(2));
    }

    #[test]
    fn aperm_uses_permutation_flow() {
        let nq = catalogue::q_aperm();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 2]),
                ("R", &[2, 1]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("A", &[3]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::PermutationFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn z3_uses_rep_flow() {
        let nq = catalogue::z3();
        let db = build_db(
            &nq.query,
            &[
                ("R", &[1, 1]),
                ("R", &[1, 2]),
                ("R", &[2, 2]),
                ("A", &[1]),
                ("A", &[2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::RepFlow);
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn a3perm_r_uses_special_flow() {
        let nq = catalogue::q_a3perm_r();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 2]),
                ("R", &[2, 2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::SpecialFlow("q_A3perm-R"));
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn ts3conf_uses_special_flow() {
        let nq = catalogue::q_ts3conf();
        let db = build_db(
            &nq.query,
            &[
                ("T", &[1, 2]),
                ("S", &[1, 2]),
                ("R", &[1, 2]),
                ("T", &[3, 4]),
                ("R", &[3, 4]),
                ("R", &[5, 4]),
                ("R", &[5, 6]),
                ("S", &[5, 6]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::SpecialFlow("q_TS3conf"));
        let exact = ExactSolver::new().resilience_value(&nq.query, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn unsatisfied_database_is_already_false() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(0));
        assert_eq!(outcome.method, SolveMethod::AlreadyFalse);
    }

    #[test]
    fn fully_exogenous_query_is_unfalsifiable() {
        let q = parse_query("R^x(x,y)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2])]);
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, None);
        assert_eq!(outcome.method, SolveMethod::Unfalsifiable);
    }

    #[test]
    fn disconnected_query_takes_component_minimum() {
        // Components: A(x),R(x,y) and B(u),S(u,v). First component needs 2
        // deletions, second needs 1; the minimum is 1.
        let q = parse_query("A(x), R(x,y), B(u), S(u,v)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("B", &[5]),
                ("S", &[5, 50]),
            ],
        );
        let solver = ResilienceSolver::new(&q);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.method, SolveMethod::ComponentMinimum);
        assert_eq!(outcome.resilience, Some(1));
        let exact = ExactSolver::new().resilience_value(&q, &db);
        assert_eq!(outcome.resilience, exact);
    }

    #[test]
    fn contingency_sets_returned_by_flow_methods_are_valid() {
        let nq = catalogue::q_acconf();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("C", &[3]),
                ("R", &[1, 2]),
                ("R", &[3, 2]),
                ("A", &[4]),
                ("R", &[4, 2]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        let gamma: HashSet<TupleId> = outcome.contingency.unwrap().into_iter().collect();
        assert_eq!(gamma.len(), outcome.resilience.unwrap());
        let ws = WitnessSet::build(&nq.query, &db);
        assert!(ws.is_contingency_set(&gamma));
    }

    #[test]
    fn dominated_relation_is_not_deleted_by_the_solver() {
        // q_rats: the normal form makes R and T exogenous, so the solver's
        // contingency set may only contain A- or S-tuples.
        let nq = catalogue::q_rats();
        let db = build_db(
            &nq.query,
            &[
                ("A", &[1]),
                ("R", &[1, 10]),
                ("T", &[20, 1]),
                ("S", &[10, 20]),
            ],
        );
        let solver = ResilienceSolver::new(&nq.query);
        let outcome = solver.solve(&db);
        assert_eq!(outcome.resilience, Some(1));
        if let Some(gamma) = &outcome.contingency {
            for &t in gamma {
                let name = db.schema().name(db.relation_of(t));
                assert!(
                    name == "A" || name == "S",
                    "unexpected deletion from {name}"
                );
            }
        }
    }
}
