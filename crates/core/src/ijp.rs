//! Independent Join Paths (Section 9, Definition 48, Appendix C).
//!
//! An IJP is a small "canonical" database whose existence the paper
//! conjectures to be a *universal* sufficient criterion of hardness
//! (Conjecture 49): if a query admits an IJP, a generalized reduction from
//! Vertex Cover applies. This module provides
//!
//! * [`check_ijp`] / [`find_ijp_pair`] — verification of the five conditions
//!   of Definition 48 for a given database (used to replay Examples 58–61);
//! * [`search_ijp`] — the automated search procedure sketched in Appendix
//!   C.2 / Example 62: build `k` disjoint canonical witnesses of the query,
//!   enumerate partitions of their constants (restricted-growth strings),
//!   and test each merged database for the IJP conditions.

use crate::exact::ExactSolver;
use cq::Query;
use database::{witnesses, Constant, Database, TupleId, WitnessSet};
use std::collections::{BTreeSet, HashSet};

/// Why a candidate tuple pair fails to form an IJP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IjpViolation {
    /// Condition 1: the two tuples' value sets are comparable (one ⊆ other).
    TuplesComparable,
    /// Condition 2: one of the tuples does not participate in exactly one
    /// witness, or its witness does not use exactly `m` distinct tuples.
    WitnessShape,
    /// Condition 3: some endogenous tuple's values are a strict subset of
    /// one of the two tuples' values.
    EndogenousSubsetTuple,
    /// Condition 4: an exogenous relation contains a projection of one tuple
    /// but not the matching projection of the other.
    ExogenousProjectionMissing,
    /// Condition 5: removing either or both tuples does not reduce the
    /// resilience by exactly one.
    ResilienceDropWrong,
    /// The database does not even satisfy the query, or resilience is
    /// undefined.
    NotApplicable,
}

/// A verified Independent Join Path.
#[derive(Clone, Debug)]
pub struct IjpCertificate {
    /// The relation holding the two distinguished tuples.
    pub relation: String,
    /// The two distinguished tuples.
    pub tuple_a: TupleId,
    /// The two distinguished tuples.
    pub tuple_b: TupleId,
    /// Resilience of the full database (condition 5's `c`).
    pub resilience: usize,
}

fn value_set(db: &Database, t: TupleId) -> BTreeSet<Constant> {
    db.values_of(t).iter().copied().collect()
}

/// Checks whether the specific pair `(a, b)` (two tuples of the same
/// endogenous relation) satisfies Definition 48 on `db`.
pub fn check_pair(
    q: &Query,
    db: &Database,
    a: TupleId,
    b: TupleId,
) -> Result<IjpCertificate, IjpViolation> {
    let ws = WitnessSet::build(q, db);
    check_pair_with(q, db, &ws, a, b)
}

/// [`check_pair`] over a prebuilt witness set, so a caller scanning many
/// candidate pairs (e.g. [`find_ijp_pair`]) enumerates the witnesses once
/// instead of once per pair. The resilience drops of condition 5 are checked
/// by *filtering* the witness set ([`WitnessSet::without_tuples`]) rather
/// than copying the database and re-running the join.
///
/// Definition 48 requires the distinguished pair to come from an
/// *endogenous* relation; tuples of exogenous relations are rejected with
/// [`IjpViolation::NotApplicable`] up front.
pub fn check_pair_with(
    q: &Query,
    db: &Database,
    ws: &WitnessSet,
    a: TupleId,
    b: TupleId,
) -> Result<IjpCertificate, IjpViolation> {
    let rel = db.relation_of(a);
    if db.relation_of(b) != rel || a == b {
        return Err(IjpViolation::NotApplicable);
    }
    // The CSR-backed condition-2 check below reads the endogenous
    // projection, so an exogenous pair must be ruled out explicitly. This is
    // a relation-level property, checked in O(atoms) — callers like
    // `find_ijp_pair` hit this in an O(n²) pair loop.
    let rel_name = db.schema().name(rel);
    let rel_is_endogenous = q
        .endogenous_atoms()
        .into_iter()
        .any(|i| q.schema().name(q.atom(i).relation) == rel_name);
    if !rel_is_endogenous {
        return Err(IjpViolation::NotApplicable);
    }
    if ws.is_empty() || ws.has_undeletable_witness() {
        return Err(IjpViolation::NotApplicable);
    }

    // Condition 1: incomparable value sets.
    let va = value_set(db, a);
    let vb = value_set(db, b);
    if va.is_subset(&vb) || vb.is_subset(&va) {
        return Err(IjpViolation::TuplesComparable);
    }

    // Condition 2: each participates in exactly one witness, and that
    // witness uses exactly m distinct tuples. `a` and `b` belong to an
    // endogenous relation, so membership in a witness's full tuple set is
    // equivalent to membership in its endogenous projection — which the CSR
    // index answers as a borrowed row instead of a scan over all witnesses.
    let m = q.num_atoms();
    for &t in &[a, b] {
        let participating = ws.witnesses_of(t);
        if participating.len() != 1 {
            return Err(IjpViolation::WitnessShape);
        }
        let w = &ws.witnesses[participating[0] as usize];
        if w.tuple_set().len() != m {
            return Err(IjpViolation::WitnessShape);
        }
    }

    // Condition 3: no endogenous tuple with values strictly inside va or vb.
    let endo: HashSet<TupleId> = db.endogenous_tuples(q).into_iter().collect();
    for t in db.all_tuples() {
        if !endo.contains(&t) {
            continue;
        }
        let vt = value_set(db, t);
        let strictly_inside = |big: &BTreeSet<Constant>| vt.is_subset(big) && vt.len() < big.len();
        if strictly_inside(&va) || strictly_inside(&vb) {
            return Err(IjpViolation::EndogenousSubsetTuple);
        }
    }

    // Condition 4: exogenous projections of a must be mirrored for b.
    let exo_rels: HashSet<&str> = q
        .exogenous_atoms()
        .into_iter()
        .map(|i| q.schema().name(q.atom(i).relation))
        .collect();
    let a_vals = db.values_of(a).to_vec();
    let b_vals = db.values_of(b).to_vec();
    for t in db.all_tuples() {
        let rel_name = db.schema().name(db.relation_of(t));
        if !exo_rels.contains(rel_name) {
            continue;
        }
        let d = db.values_of(t);
        // Does d equal a projection a_j for some increasing index vector j?
        for j in index_vectors(a_vals.len(), d.len()) {
            let projected: Vec<Constant> = j.iter().map(|&i| a_vals[i]).collect();
            if projected == d {
                let mirrored: Vec<Constant> = j.iter().map(|&i| b_vals[i]).collect();
                let rel_id = db.relation_of(t);
                if db.lookup(rel_id, &mirrored).is_none() {
                    return Err(IjpViolation::ExogenousProjectionMissing);
                }
            }
        }
    }

    // Condition 5: resilience drops by exactly one under all three removals.
    // Each removal is answered by filtering the already-enumerated witness
    // set (deletion-aware view) instead of `Database::without` + a full
    // re-enumeration: the witnesses of `D \ Γ` are exactly the witnesses of
    // `D` using no tuple of `Γ`.
    let solver = ExactSolver::new();
    let full = solver
        .resilience_of_witnesses(ws)
        .resilience
        .ok_or(IjpViolation::NotApplicable)?;
    if full == 0 {
        return Err(IjpViolation::ResilienceDropWrong);
    }
    for removal in [vec![a], vec![b], vec![a, b]] {
        let deleted: HashSet<TupleId> = removal.into_iter().collect();
        let filtered = ws.without_tuples(&deleted);
        let r = solver
            .resilience_of_witnesses(&filtered)
            .resilience
            .ok_or(IjpViolation::NotApplicable)?;
        if r != full - 1 {
            return Err(IjpViolation::ResilienceDropWrong);
        }
    }

    Ok(IjpCertificate {
        relation: db.schema().name(rel).to_string(),
        tuple_a: a,
        tuple_b: b,
        resilience: full,
    })
}

/// All strictly-increasing index vectors of length `k` over `0..n`.
fn index_vectors(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut current: Vec<usize> = (0..k).collect();
    loop {
        out.push(current.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        current[i] += 1;
        for j in (i + 1)..k {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// Searches all pairs of tuples of endogenous relations for one satisfying
/// Definition 48; returns the first certificate found. The witness set is
/// enumerated once and shared across every candidate pair.
pub fn find_ijp_pair(q: &Query, db: &Database) -> Option<IjpCertificate> {
    let ws = WitnessSet::build(q, db);
    let endo: Vec<TupleId> = db.endogenous_tuples(q);
    for (i, &a) in endo.iter().enumerate() {
        for &b in endo.iter().skip(i + 1) {
            if db.relation_of(a) != db.relation_of(b) {
                continue;
            }
            if let Ok(cert) = check_pair_with(q, db, &ws, a, b) {
                return Some(cert);
            }
        }
    }
    None
}

/// Checks whether `db` forms an IJP for `q` (some pair of tuples satisfies
/// Definition 48).
pub fn check_ijp(q: &Query, db: &Database) -> bool {
    find_ijp_pair(q, db).is_some()
}

/// Outcome of the automated IJP search.
#[derive(Clone, Debug)]
pub struct IjpSearchResult {
    /// The merged canonical database that forms an IJP.
    pub database: Database,
    /// The verified certificate.
    pub certificate: IjpCertificate,
    /// How many joins (canonical witness copies) were merged.
    pub joins: usize,
    /// How many candidate partitions were examined before success.
    pub partitions_tried: usize,
}

/// The automated search of Appendix C.2 / Example 62.
///
/// For `k = 2..=max_joins`, builds `k` disjoint canonical witnesses of the
/// query (each variable gets a fresh constant per copy), then enumerates
/// partitions of the resulting constants via restricted-growth strings and
/// checks each merged database for the IJP conditions. The enumeration is
/// capped at `max_partitions` candidates per `k`.
pub fn search_ijp(q: &Query, max_joins: usize, max_partitions: usize) -> Option<IjpSearchResult> {
    for k in 2..=max_joins {
        let num_constants = k * q.num_vars();
        let mut rgs = vec![0usize; num_constants];
        let mut tried = 0usize;
        loop {
            tried += 1;
            if tried > max_partitions {
                break;
            }
            let db = merged_canonical_database(q, k, &rgs);
            // Quick necessary condition: the merged database must satisfy q
            // before the expensive per-pair checks run. (A single witness can
            // already carry an IJP — Example 58's q_vc database has one.)
            if !witnesses(q, &db).is_empty() {
                if let Some(certificate) = find_ijp_pair(q, &db) {
                    return Some(IjpSearchResult {
                        database: db,
                        certificate,
                        joins: k,
                        partitions_tried: tried,
                    });
                }
            }
            if !next_restricted_growth_string(&mut rgs) {
                break;
            }
        }
    }
    None
}

/// Builds the union of `k` canonical witnesses of `q`, merging constants
/// according to the restricted-growth string `rgs` (one entry per
/// (copy, variable) pair; equal entries collapse to the same constant).
fn merged_canonical_database(q: &Query, k: usize, rgs: &[usize]) -> Database {
    let mut db = Database::for_query(q);
    for copy in 0..k {
        for atom in q.atoms() {
            let rel = db
                .schema()
                .relation_id(q.schema().name(atom.relation))
                .expect("schema mismatch");
            let values: Vec<u64> = atom
                .args
                .iter()
                .map(|v| rgs[copy * q.num_vars() + v.index()] as u64)
                .collect();
            db.insert(rel, &values);
        }
    }
    db
}

/// Advances a restricted-growth string in place; returns `false` after the
/// last one. RGS enumerate set partitions without duplicates: entry `i` may
/// be at most `1 + max(entries before i)`.
fn next_restricted_growth_string(rgs: &mut [usize]) -> bool {
    let n = rgs.len();
    let mut i = n;
    while i > 1 {
        i -= 1;
        let max_prefix = rgs[..i].iter().copied().max().unwrap_or(0);
        if rgs[i] <= max_prefix {
            rgs[i] += 1;
            for item in rgs.iter_mut().skip(i + 1) {
                *item = 0;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    #[test]
    fn example_58_qvc_ijp() {
        // D = {R(1), S(1,2), R(2)} forms an IJP for q_vc.
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let db = build_db(&q, &[("R", &[1]), ("S", &[1, 2]), ("R", &[2])]);
        let cert = find_ijp_pair(&q, &db).expect("Example 58 is an IJP");
        assert_eq!(cert.relation, "R");
        assert_eq!(cert.resilience, 1);
        assert!(check_ijp(&q, &db));
    }

    #[test]
    fn example_59_triangle_ijp() {
        // D = {R(1,2),R(4,2),R(4,5),S(2,3),S(5,3),T(3,1),T(3,4)} forms an IJP
        // for the triangle query with distinguished tuples R(1,2), R(4,5).
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1, 2]),
                ("R", &[4, 2]),
                ("R", &[4, 5]),
                ("S", &[2, 3]),
                ("S", &[5, 3]),
                ("T", &[3, 1]),
                ("T", &[3, 4]),
            ],
        );
        let r = db.schema().relation_id("R").unwrap();
        let a = db.lookup(r, &[1u64, 2]).unwrap();
        let b = db.lookup(r, &[4u64, 5]).unwrap();
        let cert = check_pair(&q, &db, a, b).expect("Example 59 is an IJP");
        assert_eq!(cert.resilience, 2);
        assert!(check_ijp(&q, &db));
    }

    #[test]
    fn example_60_z5_paper_database_fails_condition_five() {
        // The paper's Example 60 claims the 21-tuple database below forms an
        // IJP for z5 with distinguished tuples A(9) and A(13). Conditions
        // (1)-(4) do hold, but our exact solver finds that removing A(13)
        // leaves resilience 4 (not 3): the witness
        // A(5), R(5,2), R(2,3), R(3,3) is disjoint from the three witnesses
        // through A(1)/R(1,10), A(4)/R(4,1) and A(9)/R(9,8), giving a packing
        // of four disjoint witnesses that survives the removal of A(13).
        // The witness appears to be missing from the paper's Figure 19, so we
        // record the discrepancy here (see EXPERIMENTS.md, experiment E9).
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[4]),
                ("A", &[5]),
                ("A", &[9]),
                ("A", &[13]),
                ("R", &[1, 2]),
                ("R", &[2, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 3]),
                ("R", &[4, 1]),
                ("R", &[5, 2]),
                ("R", &[5, 6]),
                ("R", &[6, 7]),
                ("R", &[7, 7]),
                ("R", &[8, 7]),
                ("R", &[9, 8]),
                ("R", &[1, 10]),
                ("R", &[10, 11]),
                ("R", &[11, 11]),
                ("R", &[12, 11]),
                ("R", &[13, 12]),
            ],
        );
        let a_rel = db.schema().relation_id("A").unwrap();
        let a9 = db.lookup(a_rel, &[9u64]).unwrap();
        let a13 = db.lookup(a_rel, &[13u64]).unwrap();
        let violation = check_pair(&q, &db, a9, a13).unwrap_err();
        assert_eq!(violation, IjpViolation::ResilienceDropWrong);
        // The overall resilience the paper reports (ρ = 4) is confirmed...
        let solver = ExactSolver::new();
        assert_eq!(solver.resilience_value(&q, &db), Some(4));
        // ...and so is the ρ = 3 claim for removing A(9)...
        let remove_a9: HashSet<TupleId> = [a9].into_iter().collect();
        assert_eq!(
            solver.resilience_value(&q, &db.without(&remove_a9)),
            Some(3)
        );
        // ...but removing A(13) leaves ρ = 4, contradicting condition (5).
        let remove_a13: HashSet<TupleId> = [a13].into_iter().collect();
        assert_eq!(
            solver.resilience_value(&q, &db.without(&remove_a13)),
            Some(4)
        );
    }

    #[test]
    fn example_61_fails_condition_four() {
        // q :- A^x(x), R(x), S(x,y), S(z,y), R(z), B^x(z): the candidate
        // database violates condition 4 because A(3) and B(1) are missing.
        let q = parse_query("A^x(x), R(x), S(x,y), S(z,y), R(z), B^x(z)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1]),
                ("A", &[1]),
                ("S", &[1, 2]),
                ("S", &[3, 2]),
                ("R", &[3]),
                ("B", &[3]),
            ],
        );
        let r = db.schema().relation_id("R").unwrap();
        let a = db.lookup(r, &[1u64]).unwrap();
        let b = db.lookup(r, &[3u64]).unwrap();
        let violation = check_pair(&q, &db, a, b).unwrap_err();
        assert_eq!(violation, IjpViolation::ExogenousProjectionMissing);
    }

    #[test]
    fn comparable_tuples_are_rejected() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 2])]);
        let r = db.schema().relation_id("R").unwrap();
        let a = db.lookup(r, &[1u64, 2]).unwrap();
        let b = db.lookup(r, &[2u64, 2]).unwrap();
        // {2} ⊆ {1,2}: condition 1 fails.
        assert_eq!(
            check_pair(&q, &db, a, b).unwrap_err(),
            IjpViolation::TuplesComparable
        );
    }

    #[test]
    fn multi_witness_tuples_are_rejected() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let db = build_db(
            &q,
            &[
                ("R", &[1]),
                ("R", &[2]),
                ("R", &[3]),
                ("S", &[1, 2]),
                ("S", &[1, 3]),
            ],
        );
        let r = db.schema().relation_id("R").unwrap();
        let a = db.lookup(r, &[1u64]).unwrap();
        let b = db.lookup(r, &[2u64]).unwrap();
        // R(1) participates in two witnesses: condition 2 fails.
        assert_eq!(
            check_pair(&q, &db, a, b).unwrap_err(),
            IjpViolation::WitnessShape
        );
    }

    #[test]
    fn search_rediscovers_qvc_ijp() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let found = search_ijp(&q, 2, 500).expect("q_vc admits an IJP");
        assert_eq!(found.certificate.relation, "R");
        assert!(check_ijp(&q, &found.database));
    }

    #[test]
    fn search_rediscovers_chain_ijp() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let found = search_ijp(&q, 3, 25_000).expect("q_chain admits an IJP");
        assert!(check_ijp(&q, &found.database));
        assert!(found.joins >= 2);
    }

    #[test]
    fn restricted_growth_strings_enumerate_bell_numbers() {
        // Bell(4) = 15 partitions of a 4-element set.
        let mut rgs = vec![0usize; 4];
        let mut count = 1;
        while next_restricted_growth_string(&mut rgs) {
            count += 1;
        }
        assert_eq!(count, 15);
    }

    #[test]
    fn index_vectors_enumerate_combinations() {
        assert_eq!(
            index_vectors(3, 2),
            vec![vec![0, 1], vec![0, 2], vec![1, 2]]
        );
        assert_eq!(index_vectors(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(index_vectors(3, 0), vec![Vec::<usize>::new()]);
    }
}
