//! The compiled, batched solve engine.
//!
//! The paper's dichotomy (Theorem 37) makes classification a *per-query*
//! cost while resilience is a *per-instance* cost. The engine mirrors that
//! split in the API:
//!
//! * [`Engine::compile`] runs the classifier and join-plan compilation once
//!   per query, producing a reusable [`CompiledQuery`];
//! * [`CompiledQuery::solve`] executes one instance — a [`FrozenDb`], i.e.
//!   an instance whose mutation phase is over — against the compiled
//!   artifacts;
//! * [`CompiledQuery::solve_batch`] fans a slice of instances out over
//!   scoped threads, sharing the compiled plan and classification while each
//!   thread reuses its own [`SolveScratch`];
//! * [`CompiledQuery::session`] opens a deletion-aware [`SolveSession`] on
//!   one instance: witnesses are enumerated once and what-if deletions /
//!   restores re-solve through live counters over the tuple → witness CSR
//!   instead of `Database::without` copies and re-enumeration.
//!
//! Results are structured: [`Resilience`] distinguishes `Finite(k)` from
//! `Unfalsifiable` (instead of an ambiguous `Option`), [`SolveOptions`]
//! carries the exact-search node budget and the `want_contingency` toggle
//! (flow methods skip min-cut extraction when it is off), and fallible paths
//! return [`SolveError`] instead of panicking.
//!
//! ```
//! use cq::parse_query;
//! use database::Database;
//! use resilience_core::engine::{Engine, Resilience, SolveOptions};
//!
//! let q = parse_query("R(x,y), R(y,z)").unwrap();
//! let compiled = Engine::compile(&q);
//! let mut db = Database::for_query(&q);
//! db.insert_named("R", &[1u64, 2]);
//! db.insert_named("R", &[2u64, 3]);
//! db.insert_named("R", &[3u64, 3]);
//! let frozen = db.freeze();
//! let report = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
//! assert_eq!(report.resilience, Resilience::Finite(2));
//! ```

use crate::cancel::CancelToken;
use crate::exact::{ExactInterrupt, ExactScratch, ExactSolver};
use crate::flow_algorithms::{
    pairwise_bipartite_resilience_view, permutation_flow_live_cancellable, permutation_flow_warm,
    rep_flow_live_cancellable, rep_flow_warm, witness_path_flow_live_cancellable,
    witness_path_flow_warm, FlowCancelled, FlowResult, FlowScratch, FlowWarmState, WarmSession,
};
use crate::special::{
    a3perm_r_resilience_opts, swx3perm_r_resilience_opts, ts3conf_resilience_opts,
};
use cq::linear::{linear_order_all, pseudo_linear_order};
use cq::{classify, Classification, Complexity, PtimeAlgorithm, Query};
use database::eval::Witness;
use database::{
    copy_without_mask, try_relation_translation, witnesses_with_plan_into,
    witnesses_with_plan_into_cancellable, witnesses_with_plan_parallel_into,
    witnesses_with_plan_parallel_into_cancellable, FrozenDb, QueryPlan, ReducedScratch,
    ReducedSets, ReducedSetsLive, TupleId, TupleStore, WitnessIndex, WitnessSet, WitnessView,
};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm produced a solve result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveMethod {
    /// The database does not satisfy the query; resilience is 0.
    AlreadyFalse,
    /// Some witness uses only exogenous tuples; no contingency set exists.
    Unfalsifiable,
    /// Witness-path network flow over a linear atom order.
    LinearFlow,
    /// König bipartite vertex cover over two-tuple witnesses.
    BipartiteCover,
    /// Pair-node flow for unbound permutations.
    PermutationFlow,
    /// Proposition 36 flow with off-diagonal tuples frozen.
    RepFlow,
    /// One of the dedicated Section 8 constructions (`q_A3perm-R`,
    /// `q_Swx3perm-R`, `q_TS3conf`).
    SpecialFlow(&'static str),
    /// Component-wise minimum (Lemma 14).
    ComponentMinimum,
    /// Deterministic gather of per-shard solves whose underlying methods
    /// differed across shards (see [`crate::shard`]); when every shard used
    /// the same method the merged report keeps that method instead.
    ShardGather,
    /// Exact branch-and-bound over the witness hypergraph (used for
    /// NP-complete and open queries, and as a fallback when a polynomial
    /// construction does not apply to the instance).
    ExactBranchAndBound,
}

/// The resilience of a query over one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resilience {
    /// `ρ(q, D) = k`: deleting `k` endogenous tuples falsifies the query.
    Finite(usize),
    /// The query cannot be falsified by deleting endogenous tuples (some
    /// witness uses only exogenous tuples).
    Unfalsifiable,
}

impl Resilience {
    /// The finite value, or `None` when unfalsifiable.
    pub fn as_finite(self) -> Option<usize> {
        match self {
            Resilience::Finite(k) => Some(k),
            Resilience::Unfalsifiable => None,
        }
    }

    /// Whether the resilience is a finite value.
    pub fn is_finite(self) -> bool {
        matches!(self, Resilience::Finite(_))
    }

    /// Whether the query cannot be falsified on this instance.
    pub fn is_unfalsifiable(self) -> bool {
        matches!(self, Resilience::Unfalsifiable)
    }
}

impl From<Option<usize>> for Resilience {
    fn from(value: Option<usize>) -> Self {
        match value {
            Some(k) => Resilience::Finite(k),
            None => Resilience::Unfalsifiable,
        }
    }
}

impl fmt::Display for Resilience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resilience::Finite(k) => write!(f, "{k}"),
            Resilience::Unfalsifiable => write!(f, "unfalsifiable"),
        }
    }
}

/// Per-solve options (builder style).
///
/// ```
/// use resilience_core::engine::SolveOptions;
/// let opts = SolveOptions::new()
///     .node_budget(1_000_000)
///     .want_contingency(false);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveOptions {
    node_budget: usize,
    want_contingency: bool,
    enumeration_threads: usize,
    warm_start: bool,
    adaptive_plan: bool,
    cancel: Option<CancelToken>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            node_budget: ExactSolver::default().node_limit,
            want_contingency: true,
            enumeration_threads: 1,
            warm_start: true,
            adaptive_plan: true,
            cancel: None,
        }
    }
}

impl SolveOptions {
    /// Default options: the exact solver's default node budget, contingency
    /// extraction enabled, sequential witness enumeration, warm starts and
    /// adaptive plan selection on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Upper limit on exact-search branch-and-bound nodes; exceeding it
    /// yields [`SolveError::BudgetExhausted`] instead of a silently wrong
    /// answer.
    pub fn node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes;
        self
    }

    /// Whether to extract a minimum contingency set. Turning this off lets
    /// the flow methods skip min-cut extraction (only the cut *value* is
    /// computed) and the report's `contingency` is `None`.
    pub fn want_contingency(mut self, want: bool) -> Self {
        self.want_contingency = want;
        self
    }

    /// Whether contingency extraction is requested
    /// (see [`Self::want_contingency`]).
    pub fn wants_contingency(&self) -> bool {
        self.want_contingency
    }

    /// Maximum threads for witness enumeration (default 1 = sequential).
    /// Parallel enumeration partitions the first join step's candidate scan
    /// across scoped threads and merges the results deterministically, so
    /// solve output is identical at any thread count. Use > 1 for large
    /// single instances; leave at 1 inside [`CompiledQuery::solve_batch`]
    /// workloads, which already parallelize across instances.
    pub fn enumeration_threads(mut self, threads: usize) -> Self {
        self.enumeration_threads = threads.max(1);
        self
    }

    /// Whether a [`SolveSession`] may warm-start solves from its previous
    /// step (default `true`): replaying an unchanged-state report and
    /// seeding the exact search with the restricted previous contingency
    /// set. Turning this off forces every session solve to run cold —
    /// useful for differential testing: successful warm and cold solves
    /// agree on resilience, witness count and method by construction. (The
    /// one asymmetry is a *tight* [`SolveOptions::node_budget`]: a warm
    /// seed can prune differently than the cold greedy seed, so the two
    /// paths may exhaust a near-limit budget at different points — both
    /// then fail loudly with [`SolveError::BudgetExhausted`], never with a
    /// wrong answer.)
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Whether solves may replace the instance-free compiled join plan with
    /// a per-instance [`QueryPlan::compile_scaled`] plan when the instance's
    /// relation cardinalities are heavily skewed (default `true`). The
    /// choice is a deterministic function of the instance, so batch, loop
    /// and session paths always agree.
    pub fn adaptive_plan(mut self, adaptive: bool) -> Self {
        self.adaptive_plan = adaptive;
        self
    }

    /// Attaches a [`CancelToken`]: the solve paths poll it at bounded
    /// intervals (branch-and-bound nodes, flow augmentations, witness
    /// enumeration chunks) and abort with [`SolveError::Cancelled`] once it
    /// fires. A completed solve is byte-identical to one without a token —
    /// the token adds polling, never a different search. Tokens compare by
    /// identity, so a fresh per-request deadline token never lets a session
    /// replay a stale cached report.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }
}

/// Per-solve statistics of a [`SolveSession`] step, for observability of the
/// warm-start machinery (`rescli whatif --json` reports them per step).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionSolveStats {
    /// The deletion state (and options) were unchanged since the previous
    /// solve: the cached report was returned verbatim, nothing ran.
    pub replayed: bool,
    /// A verified-feasible incumbent from the previous step seeded the
    /// exact search bound. P-time flow steps never set this: they re-run
    /// their (scratch-reusing) construction cold and only benefit from
    /// replay.
    pub warm_start_hit: bool,
    /// The returned contingency set is the previous step's (restricted)
    /// certificate, reused without re-extraction.
    pub incumbent_reused: bool,
    /// The incumbent matched the fresh packing lower bound, proving it
    /// optimal with zero search nodes.
    pub short_circuit: bool,
    /// Branch-and-bound nodes explored by this step (0 for p-time methods
    /// and short-circuited solves).
    pub nodes_explored: usize,
    /// A flow-dispatched step reused the session's resident residual
    /// network: deletions were applied as arc repairs and the max flow was
    /// re-augmented instead of recomputed from scratch.
    pub flow_warm_reused: bool,
    /// Augmenting paths rerouted or drained while repairing deleted arcs on
    /// the resident network this step.
    pub flow_paths_repaired: u64,
    /// Augmenting paths found by the post-repair re-augmentation this step.
    pub flow_paths_reaugmented: u64,
    /// The warm flow network was (re)built cold this step — first use,
    /// post-`reset` invalidation, or a deletion the resident construction
    /// cannot express.
    pub flow_cold_rebuild: bool,
    /// Live reduced-set compactions performed since the previous solve
    /// (tombstone garbage collection of the deletion-aware CSR).
    pub reduced_compactions: u64,
}

/// Borrowed warm-solve context a session threads through `dispatch`: the
/// resident flow state plus the session's deletion mask and touched-tuple
/// log (for incremental arc repair), the full witness view (for cold
/// rebuilds), and the deletion-aware reduced sets for exact dispatches.
struct SessionWarm<'a> {
    flow: &'a mut FlowWarmState,
    deleted: &'a [bool],
    touched: &'a mut Vec<TupleId>,
    full: WitnessView<'a>,
    reduced_live: Option<&'a ReducedSetsLive>,
}

/// Anytime bounds salvaged from a cancelled solve: what the search had
/// proven about the resilience before the token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnytimeBounds {
    /// Certified lower bound: the disjoint-set packing bound at the search
    /// root on the exact path, or the partial max-flow value on the flow
    /// paths.
    pub lower: usize,
    /// Best feasible contingency-set size found so far (the incumbent of
    /// the branch-and-bound search). `None` on paths that had not yet
    /// established a feasible solution.
    pub upper: Option<usize>,
    /// Branch-and-bound nodes explored before cancellation (0 on non-exact
    /// paths).
    pub nodes_explored: usize,
}

/// A failed solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The exact branch-and-bound search hit the node budget
    /// ([`SolveOptions::node_budget`]) before proving optimality.
    BudgetExhausted {
        /// Nodes explored before the search was cut off.
        nodes_explored: usize,
    },
    /// The instance's schema is missing a relation the query refers to.
    SchemaMismatch {
        /// Name of the missing relation.
        relation: String,
    },
    /// The solve was cancelled through its [`CancelToken`] (explicitly or
    /// by deadline expiry) before completing.
    Cancelled {
        /// Anytime bounds established before cancellation; `None` when the
        /// token fired before any solving work ran (e.g. during witness
        /// enumeration or before dispatch).
        partial: Option<AnytimeBounds>,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::BudgetExhausted { nodes_explored } => {
                write!(f, "exact resilience search exceeded {nodes_explored} nodes")
            }
            SolveError::SchemaMismatch { relation } => {
                write!(f, "database schema is missing relation {relation}")
            }
            SolveError::Cancelled { partial } => match partial {
                Some(bounds) => {
                    write!(f, "solve cancelled: resilience >= {}", bounds.lower)?;
                    if let Some(upper) = bounds.upper {
                        write!(f, ", <= {upper}")?;
                    }
                    write!(f, " ({} nodes explored)", bounds.nodes_explored)
                }
                None => write!(f, "solve cancelled before any bounds were established"),
            },
        }
    }
}

impl std::error::Error for SolveError {}

/// Result of solving one instance through a [`CompiledQuery`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveReport {
    /// The resilience `ρ(q, D)`.
    pub resilience: Resilience,
    /// A minimum contingency set achieving the value. `None` when the
    /// algorithm does not produce one, when the resilience is unfalsifiable,
    /// or when [`SolveOptions::want_contingency`] is off.
    pub contingency: Option<Vec<TupleId>>,
    /// The algorithm used.
    pub method: SolveMethod,
    /// Number of witnesses of `D |= q` (after domination normalization).
    pub witnesses: usize,
    /// Branch-and-bound nodes explored (0 for the polynomial methods).
    pub nodes_explored: usize,
}

/// Reusable per-thread buffers for [`CompiledQuery::solve_with_scratch`] and
/// the deletion sessions: the witness vector, the reduced-set CSR arena, the
/// exact solver's bitsets and the flow construction buffers all survive
/// across instances/steps, so repeated solves perform no per-witness heap
/// allocation.
#[derive(Clone, Debug, Default)]
pub struct SolveScratch {
    witness_buf: Vec<Witness>,
    /// Reduced witness sets of the current solve (flat CSR arena).
    reduced: ReducedSets,
    /// Builder buffers for `reduced`.
    reduced_scratch: ReducedScratch,
    /// Exact branch-and-bound buffers (bitset arena, greedy, branch stack).
    exact: ExactScratch,
    /// Flow construction buffers (node map, edges, network, masks).
    flow: FlowScratch,
}

impl SolveScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The engine's compile entry point; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Engine;

impl Engine {
    /// Compiles `q` once: classification (Theorem 37 + Sections 5–8),
    /// domination normalization, the instance-free join plan for witness
    /// enumeration and, for disconnected queries, the compiled subqueries of
    /// every connected component.
    pub fn compile(q: &Query) -> CompiledQuery {
        let classification = classify(q);
        let normalized = &classification.evidence.normalized;
        let plan = QueryPlan::compile(normalized);
        // Per-query atom orders used by the flow dispatches, derived once
        // here instead of on every solve.
        let linear_order = linear_order_all(normalized);
        let rep_order = linear_order
            .clone()
            .or_else(|| pseudo_linear_order(normalized))
            .unwrap_or_else(|| (0..normalized.num_atoms()).collect());
        let components = match &classification.complexity {
            Complexity::PTime(PtimeAlgorithm::ComponentWise) => {
                let minimized = &classification.evidence.minimized;
                minimized
                    .components()
                    .iter()
                    .map(|comp| Engine::compile(&minimized.subquery(comp)))
                    .collect()
            }
            _ => Vec::new(),
        };
        CompiledQuery {
            query: q.clone(),
            classification,
            plan,
            linear_order,
            rep_order,
            components,
        }
    }
}

/// A query compiled for repeated solving: classification, domination normal
/// form and join plan are computed once and shared by every
/// [`solve`](CompiledQuery::solve) / [`solve_batch`](CompiledQuery::solve_batch)
/// call.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    query: Query,
    classification: Classification,
    plan: QueryPlan,
    /// Linear order of all atoms of the normalized query, when one exists
    /// (drives the witness-path flow).
    linear_order: Option<Vec<usize>>,
    /// Atom order for the Proposition 36 REP flow: linear, else
    /// pseudo-linear, else query order.
    rep_order: Vec<usize>,
    /// Compiled subqueries, one per connected component (non-empty only for
    /// the Lemma 14 component-wise dispatch).
    components: Vec<CompiledQuery>,
}

impl CompiledQuery {
    /// The query this compilation answers resilience for.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The classification computed at compile time.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// Solves one frozen instance.
    pub fn solve(&self, db: &FrozenDb, opts: &SolveOptions) -> Result<SolveReport, SolveError> {
        let mut scratch = SolveScratch::new();
        self.solve_store(db, opts, &mut scratch)
    }

    /// Opens a deletion-aware [`SolveSession`] on one frozen instance: the
    /// witnesses are enumerated once, and subsequent what-if deletions /
    /// restores re-solve without copying the database or re-running the
    /// join. See the [`SolveSession`] docs for the live-view semantics.
    pub fn session<'a>(&'a self, db: &'a FrozenDb) -> Result<SolveSession<'a>, SolveError> {
        self.session_opts(db, &SolveOptions::new())
    }

    /// [`CompiledQuery::session`] with explicit options; in particular
    /// [`SolveOptions::enumeration_threads`] parallelizes the one-time
    /// witness enumeration for large instances.
    pub fn session_opts<'a>(
        &'a self,
        db: &'a FrozenDb,
        opts: &SolveOptions,
    ) -> Result<SolveSession<'a>, SolveError> {
        Session::open(self, db, opts)
    }

    /// Opens an owned, `'static` session over `Arc` handles — the registry
    /// storage shape a long-lived service needs: the session can be moved
    /// across threads and stored in maps without borrowing the compiled
    /// query or the instance. Identical semantics to
    /// [`CompiledQuery::session_opts`].
    pub fn session_shared(
        self: &Arc<Self>,
        db: &Arc<FrozenDb>,
        opts: &SolveOptions,
    ) -> Result<SharedSolveSession, SolveError> {
        Session::open(Arc::clone(self), Arc::clone(db), opts)
    }

    /// Solves one frozen instance, reusing the caller's scratch buffers
    /// (the batch fast path; equivalent to [`CompiledQuery::solve`]).
    pub fn solve_with_scratch(
        &self,
        db: &FrozenDb,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
    ) -> Result<SolveReport, SolveError> {
        self.solve_store(db, opts, scratch)
    }

    /// Solves many frozen instances through the shared compiled plan.
    ///
    /// Instances are distributed over scoped threads (at most one hardware
    /// thread each); every worker keeps its own [`SolveScratch`]. The result
    /// vector is index-aligned with `dbs` and each entry equals what a
    /// sequential [`solve`](CompiledQuery::solve) of that instance returns.
    ///
    /// Generic over how the instances are held: a plain `&[FrozenDb]` works
    /// as before, and a registry can pass its `&[Arc<FrozenDb>]` handles
    /// without copying any instance (the shape `resd`'s `batch` verb uses).
    pub fn solve_batch<D: Borrow<FrozenDb> + Sync>(
        &self,
        dbs: &[D],
        opts: &SolveOptions,
    ) -> Vec<Result<SolveReport, SolveError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(dbs.len())
            .max(1);
        if threads <= 1 {
            let mut scratch = SolveScratch::new();
            return dbs
                .iter()
                .map(|db| self.solve_store(db.borrow(), opts, &mut scratch))
                .collect();
        }
        let chunk = dbs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = dbs
                .chunks(chunk)
                .map(|chunk_dbs| {
                    scope.spawn(move || {
                        let mut scratch = SolveScratch::new();
                        chunk_dbs
                            .iter()
                            .map(|db| self.solve_store(db.borrow(), opts, &mut scratch))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch solver thread panicked"))
                .collect()
        })
    }

    /// The store-generic solve core: solves over any [`TupleStore`]
    /// (including the mutable [`Database`](database::Database)) without
    /// freezing, reusing caller-owned scratch. The `FrozenDb` entry points
    /// forward here.
    pub fn solve_store<S: TupleStore + Sync + ?Sized>(
        &self,
        db: &S,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
    ) -> Result<SolveReport, SolveError> {
        // All algorithms work on the domination normal form: it has the same
        // resilience (Proposition 18) and its exogenous labelling is what the
        // polynomial constructions rely on.
        let q = &self.classification.evidence.normalized;
        // Cancellation can strike before any real work; bail before paying
        // for witness enumeration. (No bounds exist yet at this point.)
        if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Err(SolveError::Cancelled { partial: None });
        }
        let translation = try_relation_translation(q, db)
            .map_err(|relation| SolveError::SchemaMismatch { relation })?;
        let mut buf = std::mem::take(&mut scratch.witness_buf);
        if !self.enumerate_witnesses(&translation, db, opts, &mut buf) {
            buf.clear();
            scratch.witness_buf = buf;
            return Err(SolveError::Cancelled { partial: None });
        }
        let ws = WitnessSet::from_witnesses(q, db, buf);
        let mut stats = SessionSolveStats::default();
        let result = self.dispatch(q, db, ws.view(), opts, scratch, None, &mut stats, None);
        scratch.witness_buf = ws.into_witnesses();
        scratch.witness_buf.clear();
        result
    }

    /// Picks the join plan for one instance: the instance-free compiled plan
    /// by default, or a per-instance [`QueryPlan::compile_scaled`] plan when
    /// the instance's relation cardinalities are heavily skewed (sampled in
    /// `O(#atoms)` from the relation sizes). Skewed batches — a few huge
    /// relations joined against small ones — enumerate much faster when the
    /// join order anchors on the small relations, which only the scaled plan
    /// sees. The decision is a deterministic function of `(query, instance,
    /// opts)`, so `solve`, `solve_batch` and sessions always agree.
    fn instance_plan<S: TupleStore + ?Sized>(
        &self,
        q: &Query,
        db: &S,
        opts: &SolveOptions,
    ) -> Option<QueryPlan> {
        if !opts.adaptive_plan || q.num_atoms() < 2 {
            return None;
        }
        let schema = db.schema();
        let mut min = usize::MAX;
        let mut max = 0usize;
        for i in 0..q.num_atoms() {
            let name = q.schema().name(q.atom(i).relation);
            let size = schema
                .relation_id(name)
                .map(|r| db.tuples_of(r).len())
                .unwrap_or(0);
            min = min.min(size);
            max = max.max(size);
        }
        // Thresholds: re-planning pays off only when the skew is large
        // enough that scan order dominates (>= 8x) and the big relation is
        // big enough to matter (>= 64 tuples).
        if max >= 64 && max >= 8 * min.max(1) {
            Some(QueryPlan::compile_scaled(q, db))
        } else {
            None
        }
    }

    /// Runs the compiled (or adaptively re-scaled) plan into `buf`,
    /// sequentially or across [`SolveOptions::enumeration_threads`] scoped
    /// threads (identical output either way). Single dispatch point shared
    /// by the solve and session entry paths.
    /// Returns `false` when a [`CancelToken`] stopped the enumeration early
    /// (`buf` then holds a partial, unusable witness list). Token-free
    /// solves take the uninstrumented enumerators and always return `true`.
    fn enumerate_witnesses<S: TupleStore + Sync + ?Sized>(
        &self,
        translation: &[cq::RelId],
        db: &S,
        opts: &SolveOptions,
        buf: &mut Vec<Witness>,
    ) -> bool {
        let q = &self.classification.evidence.normalized;
        let scaled = self.instance_plan(q, db, opts);
        let plan = scaled.as_ref().unwrap_or(&self.plan);
        if let Some(token) = opts.cancel.as_ref() {
            let is_cancelled = || token.is_cancelled();
            return if opts.enumeration_threads > 1 {
                witnesses_with_plan_parallel_into_cancellable(
                    plan,
                    translation,
                    db,
                    opts.enumeration_threads,
                    buf,
                    &is_cancelled,
                )
            } else {
                witnesses_with_plan_into_cancellable(plan, translation, db, buf, &is_cancelled)
            };
        }
        if opts.enumeration_threads > 1 {
            witnesses_with_plan_parallel_into(plan, translation, db, opts.enumeration_threads, buf);
        } else {
            witnesses_with_plan_into(plan, translation, db, buf);
        }
        true
    }

    /// Whether this query's dispatch target reads raw relations of the
    /// store (rather than working purely off the witness set). Deletion
    /// sessions must materialize a reduced copy for such targets; witness-
    /// driven targets solve correctly over the original store with a
    /// filtered witness set, because deleted tuples appear in no live
    /// witness.
    ///
    /// Keep this in sync with [`CompiledQuery::dispatch`] /
    /// [`CompiledQuery::solve_catalogue`]: the component-wise path
    /// re-enumerates witnesses per component against the store, and the
    /// dedicated Section 8 constructions scan relations directly (2-way
    /// pair detection, forced-tuple scans) — only `q_perm`/`q_Aperm` route
    /// to the witness-driven permutation flow. Everything else (exact
    /// branch-and-bound, witness-path/permutation flows, bipartite cover,
    /// and the REP flow, whose relation scan only *adds* uncuttable tuples
    /// that no live witness references) is witness-driven.
    pub(crate) fn dispatch_scans_raw_store(&self) -> bool {
        match &self.classification.complexity {
            Complexity::PTime(PtimeAlgorithm::ComponentWise) => true,
            Complexity::PTime(PtimeAlgorithm::CatalogueMatch(name)) => {
                !matches!(*name, "q_perm" | "q_Aperm")
            }
            _ => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch<S: TupleStore + Sync + ?Sized>(
        &self,
        q: &Query,
        db: &S,
        view: WitnessView<'_>,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
        incumbent: Option<&[u32]>,
        stats: &mut SessionSolveStats,
        warm: Option<SessionWarm<'_>>,
    ) -> Result<SolveReport, SolveError> {
        // Session and what-if paths enter here directly (without passing
        // through `solve_store`), so the pre-work cancellation check is
        // repeated at dispatch.
        if opts.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Err(SolveError::Cancelled { partial: None });
        }
        if view.is_empty() {
            return Ok(SolveReport {
                resilience: Resilience::Finite(0),
                contingency: opts.want_contingency.then(Vec::new),
                method: SolveMethod::AlreadyFalse,
                witnesses: 0,
                nodes_explored: 0,
            });
        }
        if view.has_undeletable_witness() {
            return Ok(self.unfalsifiable_report(view.len()));
        }
        match &self.classification.complexity {
            Complexity::PTime(alg) => {
                self.solve_ptime(alg, q, db, view, opts, scratch, incumbent, stats, warm)
            }
            Complexity::NpComplete(_) | Complexity::Open => {
                let reduced_live = warm.as_ref().and_then(|w| w.reduced_live);
                self.solve_exact(view, opts, scratch, incumbent, stats, reduced_live)
            }
        }
    }

    fn unfalsifiable_report(&self, witnesses: usize) -> SolveReport {
        SolveReport {
            resilience: Resilience::Unfalsifiable,
            contingency: None,
            method: SolveMethod::Unfalsifiable,
            witnesses,
            nodes_explored: 0,
        }
    }

    /// Exact branch-and-bound over the view's reduced sets, served straight
    /// from the scratch-owned CSR arena. An `incumbent` (dense ids of a
    /// candidate hitting set, sorted) warm-starts the search; see
    /// [`ExactSolver::solve_with_incumbent`] for the feasibility guard.
    /// When the session maintains deletion-aware reduced sets, they fill the
    /// arena from live counters instead of rebuilding the CSR from rows —
    /// the output is byte-identical either way.
    #[allow(clippy::too_many_arguments)]
    fn solve_exact(
        &self,
        view: WitnessView<'_>,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
        incumbent: Option<&[u32]>,
        stats: &mut SessionSolveStats,
        reduced_live: Option<&ReducedSetsLive>,
    ) -> Result<SolveReport, SolveError> {
        match reduced_live {
            Some(live) => {
                live.live_reduced_into(&mut scratch.reduced, &mut scratch.reduced_scratch)
            }
            None => view.reduced_into(&mut scratch.reduced, &mut scratch.reduced_scratch),
        }
        let solver = ExactSolver::with_node_limit(opts.node_budget);
        let outcome = solver
            .solve_with_incumbent_cancellable(
                &scratch.reduced,
                incumbent,
                &mut scratch.exact,
                opts.cancel.as_ref(),
            )
            .map_err(|interrupt| match interrupt {
                ExactInterrupt::Budget(e) => SolveError::BudgetExhausted {
                    nodes_explored: e.nodes_explored,
                },
                ExactInterrupt::Cancelled(c) => SolveError::Cancelled {
                    partial: Some(AnytimeBounds {
                        lower: c.lower_bound,
                        upper: Some(c.upper_bound),
                        nodes_explored: c.nodes_explored,
                    }),
                },
            })?;
        stats.warm_start_hit |= outcome.incumbent_seeded;
        stats.short_circuit |= outcome.short_circuit;
        if let Some(inc) = incumbent {
            stats.incumbent_reused |= outcome.contingency == inc;
        }
        let universe = view.relevant_tuples();
        Ok(SolveReport {
            resilience: outcome.resilience.into(),
            contingency: (opts.want_contingency && outcome.resilience.is_some()).then(|| {
                outcome
                    .contingency
                    .iter()
                    .map(|&d| universe[d as usize])
                    .collect()
            }),
            method: SolveMethod::ExactBranchAndBound,
            witnesses: view.len(),
            nodes_explored: outcome.nodes_explored,
        })
    }

    /// Maps a cancelled flow run to the structured solve error: the partial
    /// flow is a certified lower bound on the resilience (it is a valid
    /// s–t flow), and no feasible contingency set exists yet (flow methods
    /// only produce one at the end), so the upper bound is absent.
    fn flow_cancelled(c: FlowCancelled) -> SolveError {
        SolveError::Cancelled {
            partial: Some(AnytimeBounds {
                lower: c.partial_flow as usize,
                upper: None,
                nodes_explored: 0,
            }),
        }
    }

    fn finish_flow(
        &self,
        flow: FlowResult,
        method: SolveMethod,
        witnesses: usize,
        opts: &SolveOptions,
    ) -> SolveReport {
        SolveReport {
            resilience: Resilience::Finite(flow.resilience),
            contingency: opts.want_contingency.then_some(flow.contingency),
            method,
            witnesses,
            nodes_explored: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_ptime<S: TupleStore + Sync + ?Sized>(
        &self,
        alg: &PtimeAlgorithm,
        q: &Query,
        db: &S,
        view: WitnessView<'_>,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
        incumbent: Option<&[u32]>,
        stats: &mut SessionSolveStats,
        warm: Option<SessionWarm<'_>>,
    ) -> Result<SolveReport, SolveError> {
        match alg {
            PtimeAlgorithm::Unfalsifiable => Ok(self.unfalsifiable_report(view.len())),
            PtimeAlgorithm::ComponentWise => self.solve_componentwise(db, view, opts),
            PtimeAlgorithm::SjFreeLinearFlow | PtimeAlgorithm::ConfluenceFlow => {
                if let Some(order) = &self.linear_order {
                    crate::flow_algorithms::seed_cuttable_mask(q, db, &mut scratch.flow);
                    let flow = match warm {
                        Some(w) => {
                            let attempt = witness_path_flow_warm(
                                db,
                                w.full,
                                order,
                                opts.want_contingency,
                                &mut scratch.flow,
                                WarmSession {
                                    state: &mut *w.flow,
                                    deleted: w.deleted,
                                    touched: &mut *w.touched,
                                },
                            );
                            Self::merge_flow_stats(stats, w.flow);
                            match attempt {
                                Ok(flow) => flow,
                                Err(_) => witness_path_flow_live_cancellable(
                                    db,
                                    view,
                                    order,
                                    opts.want_contingency,
                                    &mut scratch.flow,
                                    opts.cancel.as_ref(),
                                )
                                .map_err(Self::flow_cancelled)?,
                            }
                        }
                        None => witness_path_flow_live_cancellable(
                            db,
                            view,
                            order,
                            opts.want_contingency,
                            &mut scratch.flow,
                            opts.cancel.as_ref(),
                        )
                        .map_err(Self::flow_cancelled)?,
                    };
                    if let Some(flow) = flow {
                        return Ok(self.finish_flow(
                            flow,
                            SolveMethod::LinearFlow,
                            view.len(),
                            opts,
                        ));
                    }
                }
                if let Some(value) = pairwise_bipartite_resilience_view(view) {
                    return Ok(SolveReport {
                        resilience: Resilience::Finite(value),
                        contingency: None,
                        method: SolveMethod::BipartiteCover,
                        witnesses: view.len(),
                        nodes_explored: 0,
                    });
                }
                self.solve_exact(view, opts, scratch, incumbent, stats, None)
            }
            PtimeAlgorithm::UnboundPermutation => {
                crate::flow_algorithms::seed_cuttable_mask(q, db, &mut scratch.flow);
                let flow = match warm {
                    Some(w) => {
                        let attempt = permutation_flow_warm(
                            q,
                            db,
                            w.full,
                            opts.want_contingency,
                            &mut scratch.flow,
                            WarmSession {
                                state: &mut *w.flow,
                                deleted: w.deleted,
                                touched: &mut *w.touched,
                            },
                        );
                        Self::merge_flow_stats(stats, w.flow);
                        match attempt {
                            Ok(flow) => flow,
                            Err(_) => permutation_flow_live_cancellable(
                                q,
                                db,
                                view,
                                opts.want_contingency,
                                &mut scratch.flow,
                                opts.cancel.as_ref(),
                            )
                            .map_err(Self::flow_cancelled)?,
                        }
                    }
                    None => permutation_flow_live_cancellable(
                        q,
                        db,
                        view,
                        opts.want_contingency,
                        &mut scratch.flow,
                        opts.cancel.as_ref(),
                    )
                    .map_err(Self::flow_cancelled)?,
                };
                match flow {
                    Some(flow) => {
                        Ok(self.finish_flow(flow, SolveMethod::PermutationFlow, view.len(), opts))
                    }
                    None => self.solve_exact(view, opts, scratch, incumbent, stats, None),
                }
            }
            PtimeAlgorithm::RepeatedVariableFlow => {
                crate::flow_algorithms::seed_cuttable_mask(q, db, &mut scratch.flow);
                let flow = match warm {
                    Some(w) => {
                        let attempt = rep_flow_warm(
                            q,
                            db,
                            w.full,
                            &self.rep_order,
                            opts.want_contingency,
                            &mut scratch.flow,
                            WarmSession {
                                state: &mut *w.flow,
                                deleted: w.deleted,
                                touched: &mut *w.touched,
                            },
                        );
                        Self::merge_flow_stats(stats, w.flow);
                        match attempt {
                            Ok(flow) => flow,
                            Err(_) => rep_flow_live_cancellable(
                                q,
                                db,
                                view,
                                &self.rep_order,
                                opts.want_contingency,
                                &mut scratch.flow,
                                opts.cancel.as_ref(),
                            )
                            .map_err(Self::flow_cancelled)?,
                        }
                    }
                    None => rep_flow_live_cancellable(
                        q,
                        db,
                        view,
                        &self.rep_order,
                        opts.want_contingency,
                        &mut scratch.flow,
                        opts.cancel.as_ref(),
                    )
                    .map_err(Self::flow_cancelled)?,
                };
                match flow {
                    Some(flow) => {
                        Ok(self.finish_flow(flow, SolveMethod::RepFlow, view.len(), opts))
                    }
                    None => self.solve_exact(view, opts, scratch, incumbent, stats, None),
                }
            }
            PtimeAlgorithm::CatalogueMatch(name) => {
                self.solve_catalogue(name, q, db, view, opts, scratch, incumbent, stats, warm)
            }
        }
    }

    /// Copies the warm flow state's per-step counters into the session
    /// solve statistics after a warm attempt (successful or fallen back).
    fn merge_flow_stats(stats: &mut SessionSolveStats, flow: &FlowWarmState) {
        stats.flow_warm_reused |= flow.step_reused;
        stats.flow_paths_repaired += flow.step_repaired;
        stats.flow_paths_reaugmented += flow.step_reaugmented;
        stats.flow_cold_rebuild |= flow.step_rebuilt;
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_catalogue<S: TupleStore + Sync + ?Sized>(
        &self,
        name: &str,
        q: &Query,
        db: &S,
        view: WitnessView<'_>,
        opts: &SolveOptions,
        scratch: &mut SolveScratch,
        incumbent: Option<&[u32]>,
        stats: &mut SessionSolveStats,
        warm: Option<SessionWarm<'_>>,
    ) -> Result<SolveReport, SolveError> {
        let want = opts.want_contingency;
        let special = match name {
            "q_A3perm-R" => a3perm_r_resilience_opts(q, db, want).map(|f| (f, "q_A3perm-R")),
            "q_Swx3perm-R" => swx3perm_r_resilience_opts(q, db, want).map(|f| (f, "q_Swx3perm-R")),
            "q_TS3conf" => ts3conf_resilience_opts(q, db, want).map(|f| (f, "q_TS3conf")),
            "q_perm" | "q_Aperm" => {
                crate::flow_algorithms::seed_cuttable_mask(q, db, &mut scratch.flow);
                let flow = match warm {
                    Some(w) => {
                        let attempt = permutation_flow_warm(
                            q,
                            db,
                            w.full,
                            want,
                            &mut scratch.flow,
                            WarmSession {
                                state: &mut *w.flow,
                                deleted: w.deleted,
                                touched: &mut *w.touched,
                            },
                        );
                        Self::merge_flow_stats(stats, w.flow);
                        match attempt {
                            Ok(flow) => flow,
                            Err(_) => permutation_flow_live_cancellable(
                                q,
                                db,
                                view,
                                want,
                                &mut scratch.flow,
                                opts.cancel.as_ref(),
                            )
                            .map_err(Self::flow_cancelled)?,
                        }
                    }
                    None => permutation_flow_live_cancellable(
                        q,
                        db,
                        view,
                        want,
                        &mut scratch.flow,
                        opts.cancel.as_ref(),
                    )
                    .map_err(Self::flow_cancelled)?,
                };
                return match flow {
                    Some(flow) => {
                        Ok(self.finish_flow(flow, SolveMethod::PermutationFlow, view.len(), opts))
                    }
                    None => self.solve_exact(view, opts, scratch, incumbent, stats, None),
                };
            }
            _ => None,
        };
        match special {
            Some((flow, tag)) => {
                Ok(self.finish_flow(flow, SolveMethod::SpecialFlow(tag), view.len(), opts))
            }
            None => {
                // The query matched a catalogue entry structurally but uses
                // different relation names than the dedicated construction
                // expects; fall back to the exact solver (still correct, just
                // not polynomial-by-construction).
                self.solve_exact(view, opts, scratch, incumbent, stats, None)
            }
        }
    }

    fn solve_componentwise<S: TupleStore + Sync + ?Sized>(
        &self,
        db: &S,
        view: WitnessView<'_>,
        opts: &SolveOptions,
    ) -> Result<SolveReport, SolveError> {
        // Components are independent subproblems (Lemma 14), each with its
        // own precompiled subquery: solve them on scoped threads. (The build
        // environment has no rayon; see vendor/README.md. std::thread::scope
        // gives the same fork-join shape without a dependency.)
        let reports: Vec<Result<SolveReport, SolveError>> = if self.components.len() <= 1 {
            self.components
                .iter()
                .map(|sub| sub.solve_store(db, opts, &mut SolveScratch::new()))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .components
                    .iter()
                    .map(|sub| {
                        scope.spawn(move || sub.solve_store(db, opts, &mut SolveScratch::new()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("component solver panicked"))
                    .collect()
            })
        };
        let mut nodes_explored = 0usize;
        let mut best: Option<(usize, Option<Vec<TupleId>>)> = None;
        for report in reports {
            let report = report?;
            nodes_explored += report.nodes_explored;
            if let Resilience::Finite(r) = report.resilience {
                let better = best.as_ref().is_none_or(|(b, _)| r < *b);
                if better {
                    best = Some((r, report.contingency));
                }
            }
        }
        Ok(match best {
            Some((r, gamma)) => SolveReport {
                resilience: Resilience::Finite(r),
                // Propagate the winning component's certificate as-is: if its
                // method produced no contingency set (e.g. BipartiteCover),
                // the report must say `None`, not claim an empty set.
                contingency: if opts.want_contingency { gamma } else { None },
                method: SolveMethod::ComponentMinimum,
                witnesses: view.len(),
                nodes_explored,
            },
            None => self.unfalsifiable_report(view.len()),
        })
    }
}

/// A deletion-aware solve session over one compiled query and one frozen
/// instance.
///
/// Creating a session enumerates the witnesses **once** and builds a full
/// tuple → witness CSR incidence. [`SolveSession::delete`] and
/// [`SolveSession::restore`] then maintain, per witness, a *live counter*
/// (how many of the tuples it uses are currently deleted) in time
/// proportional to the touched tuples' witness degrees — no database copy,
/// no re-enumeration. [`SolveSession::solve`] answers resilience for the
/// current deletion state, equal to solving `Database::without(deleted)`
/// from scratch.
///
/// # Live-counter semantics
///
/// * The deletion state is a **set**: deleting an already-deleted tuple and
///   restoring a never-deleted tuple are no-ops, so any interleaving of
///   `delete`/`restore` calls that leaves the same set deleted yields the
///   same live view — restore order does not matter.
/// * A witness is *live* iff its counter is zero, i.e. none of the tuples it
///   uses (endogenous **or** exogenous) is deleted. This matches
///   `Database::without`: deleting a tuple referenced only by exogenous
///   atoms also destroys the witnesses through it.
/// * Deleting a tuple used by no witness only affects the materialized
///   fallback below (the tuple is still absent from the reduced copy).
///
/// # Solve semantics
///
/// For witness-driven methods (exact branch-and-bound, witness-path /
/// permutation / REP flows, bipartite cover) the solver runs directly over
/// the original store with the filtered witness set — deleted tuples appear
/// in no live witness, so they cannot appear in any flow network or hitting
/// set. The component-wise dispatch and the dedicated Section 8 catalogue
/// constructions scan raw relations, so for those the session materializes
/// the reduced instance once per solve and translates the resulting
/// contingency back to the session's original tuple ids.
///
/// ```
/// use cq::parse_query;
/// use database::Database;
/// use resilience_core::engine::{Engine, Resilience, SolveOptions};
///
/// let q = parse_query("R(x,y), R(y,z)").unwrap();
/// let compiled = Engine::compile(&q);
/// let mut db = Database::for_query(&q);
/// db.insert_named("R", &[1u64, 2]);
/// db.insert_named("R", &[2u64, 3]);
/// let t33 = db.insert_named("R", &[3u64, 3]);
/// let frozen = db.freeze();
/// let mut session = compiled.session(&frozen).unwrap();
/// let opts = SolveOptions::new();
/// assert_eq!(session.solve(&opts).unwrap().resilience, Resilience::Finite(2));
/// session.delete(&[t33]);
/// assert_eq!(session.live_witnesses(), 1);
/// assert_eq!(session.solve(&opts).unwrap().resilience, Resilience::Finite(1));
/// session.restore(&[t33]);
/// assert_eq!(session.solve(&opts).unwrap().resilience, Resilience::Finite(2));
/// ```
///
/// # Ownership shapes
///
/// `Session` is generic over *how* it holds the compiled query and the
/// instance. The two useful shapes have aliases:
///
/// * [`SolveSession<'a>`] — borrows both (`&'a CompiledQuery`,
///   `&'a FrozenDb`); the ergonomic shape for stack-scoped what-if scripts.
/// * [`SharedSolveSession`] — owns `Arc` handles to both, so the session is
///   `'static`: it can live in a registry, move across threads, and outlive
///   the scope that created it (the shape `resd`, the resilience service
///   daemon, stores per-connection named sessions in).
#[derive(Clone, Debug)]
pub struct Session<C, D> {
    compiled: C,
    db: D,
    /// The witness set of the *full* instance (endogenous projection).
    ws: WitnessSet,
    /// Full incidence: witness → every distinct tuple it uses.
    full: WitnessIndex,
    /// Per witness: number of its used tuples currently deleted.
    dead_hits: Vec<u32>,
    /// Per store tuple: currently deleted?
    deleted: Vec<bool>,
    deleted_count: usize,
    /// Number of witnesses with `dead_hits == 0`.
    live: usize,
    /// Bumped whenever a delete/restore/reset actually changes the deleted
    /// set; keys the solve cache.
    version: u64,
    /// Reusable buffer of live witness rows (ascending).
    survivors: Vec<u32>,
    /// Reusable buffer for the dense warm-start incumbent.
    incumbent_buf: Vec<u32>,
    /// Per-session solver scratch (reduced-set arena, bitsets, flow
    /// buffers): session steps allocate nothing per witness.
    scratch: SolveScratch,
    /// The last solve, for replay and warm starts.
    cache: Option<SessionCache>,
    /// Statistics of the most recent [`SolveSession::solve`].
    stats: SessionSolveStats,
    /// Resident warm flow state for flow dispatches: the split network of
    /// the full witness set survives across steps, deletions are applied as
    /// arc repairs and solves re-augment from the repaired residual.
    flow_warm: FlowWarmState,
    /// Tuples whose deletion state changed since the warm flow last applied
    /// deltas (drained by the next warm solve).
    flow_touched: Vec<TupleId>,
    /// Whether this query's dispatch benefits from deletion-aware reduced
    /// sets (exact branch-and-bound complexities only).
    reduced_live_wanted: bool,
    /// Deletion-aware reduced sets (exact dispatches only): tombstones and
    /// live counters maintained by `delete`/`restore` instead of rebuilding
    /// the CSR arena from live rows on every solve. Built lazily at the
    /// first warm solve (from `dead_hits`, so deletes before that first
    /// solve are reflected); `None` until then keeps maintenance-only
    /// sessions free of the arena-build cost.
    reduced_live: Option<ReducedSetsLive>,
    /// Compactions already reported through per-step solve stats.
    reduced_compactions_seen: u64,
    /// When the session last did work (open, mutate, or solve). Registries
    /// holding long-lived sessions use this to reap idle ones; see
    /// [`Session::idle_for`].
    last_touch: Instant,
}

/// A [`Session`] borrowing its compiled query and instance — the
/// stack-scoped shape (see the `Session` docs).
pub type SolveSession<'a> = Session<&'a CompiledQuery, &'a FrozenDb>;

/// A [`Session`] owning `Arc` handles to its compiled query and instance —
/// the `'static`, registry-storable shape (see the `Session` docs). Opened
/// via [`CompiledQuery::session_shared`].
pub type SharedSolveSession = Session<Arc<CompiledQuery>, Arc<FrozenDb>>;

/// Cached result of the previous [`SolveSession::solve`].
#[derive(Clone, Debug)]
struct SessionCache {
    /// Session version the report was computed at.
    version: u64,
    /// Options the report was computed with (replay requires equality).
    opts: SolveOptions,
    report: SolveReport,
}

impl<C: Borrow<CompiledQuery>, D: Borrow<FrozenDb>> Session<C, D> {
    /// Opens a session: enumerates the witnesses once and builds the full
    /// tuple → witness incidence. Both [`CompiledQuery::session_opts`]
    /// (borrowed shape) and [`CompiledQuery::session_shared`] (`Arc` shape)
    /// delegate here.
    pub fn open(compiled: C, db: D, opts: &SolveOptions) -> Result<Self, SolveError> {
        let (ws, full, num_tuples) = {
            let compiled_ref: &CompiledQuery = compiled.borrow();
            let db_ref: &FrozenDb = db.borrow();
            let q = &compiled_ref.classification.evidence.normalized;
            let translation = try_relation_translation(q, db_ref)
                .map_err(|relation| SolveError::SchemaMismatch { relation })?;
            let mut buf = Vec::new();
            if !compiled_ref.enumerate_witnesses(&translation, db_ref, opts, &mut buf) {
                return Err(SolveError::Cancelled { partial: None });
            }
            let ws = WitnessSet::from_witnesses(q, db_ref, buf);
            // Full incidence over *all* tuples a witness touches (exogenous
            // included): a deletion of any tuple must kill exactly the
            // witnesses using it.
            let keep_all = vec![true; db_ref.num_tuples()];
            let full = WitnessIndex::from_witnesses(&ws.witnesses, &keep_all);
            let n = db_ref.num_tuples();
            (ws, full, n)
        };
        let live = ws.len();
        // Deletion-aware reduced sets pay off exactly where the reduced CSR
        // is rebuilt per step: the exact branch-and-bound dispatches. The
        // arena itself is built lazily at the first warm solve (not here) so
        // pure-maintenance sessions — open, delete, count live witnesses —
        // never pay for it.
        let reduced_live_wanted = {
            let compiled_ref: &CompiledQuery = compiled.borrow();
            matches!(
                compiled_ref.classification.complexity,
                Complexity::NpComplete(_) | Complexity::Open
            )
        };
        Ok(Session {
            compiled,
            db,
            ws,
            full,
            dead_hits: vec![0; live],
            deleted: vec![false; num_tuples],
            deleted_count: 0,
            live,
            version: 0,
            survivors: Vec::new(),
            incumbent_buf: Vec::new(),
            scratch: SolveScratch::new(),
            cache: None,
            stats: SessionSolveStats::default(),
            flow_warm: FlowWarmState::new(),
            flow_touched: Vec::new(),
            reduced_live_wanted,
            reduced_live: None,
            reduced_compactions_seen: 0,
            last_touch: Instant::now(),
        })
    }

    /// Marks the session as freshly used, restarting its idle clock. Called
    /// automatically by every mutating or solving method; registries may
    /// also call it directly (e.g. when a read-only inspection should count
    /// as activity).
    pub fn touch(&mut self) {
        self.last_touch = Instant::now();
    }

    /// How long since the session last did work — the input to TTL reaping
    /// of abandoned sessions in long-lived registries.
    pub fn idle_for(&self) -> std::time::Duration {
        self.last_touch.elapsed()
    }
    /// Marks the given tuples deleted; returns how many witnesses died as a
    /// result. Already-deleted tuples and ids outside the store are ignored.
    pub fn delete(&mut self, tuples: &[TupleId]) -> usize {
        self.touch();
        let mut newly_dead = 0usize;
        for &t in tuples {
            if t.index() >= self.deleted.len() || self.deleted[t.index()] {
                continue;
            }
            self.deleted[t.index()] = true;
            self.deleted_count += 1;
            self.version += 1;
            self.flow_touched.push(t);
            for &w in self.full.witnesses_of(t) {
                self.dead_hits[w as usize] += 1;
                if self.dead_hits[w as usize] == 1 {
                    self.live -= 1;
                    newly_dead += 1;
                    if let Some(live_sets) = &mut self.reduced_live {
                        live_sets.note_dead(w);
                    }
                }
            }
        }
        newly_dead
    }

    /// Un-deletes the given tuples; returns how many witnesses came back to
    /// life. Tuples that are not currently deleted are ignored, so restores
    /// may arrive in any order relative to the deletes that preceded them.
    pub fn restore(&mut self, tuples: &[TupleId]) -> usize {
        self.touch();
        let mut revived = 0usize;
        for &t in tuples {
            if t.index() >= self.deleted.len() || !self.deleted[t.index()] {
                continue;
            }
            self.deleted[t.index()] = false;
            self.deleted_count -= 1;
            self.version += 1;
            self.flow_touched.push(t);
            for &w in self.full.witnesses_of(t) {
                self.dead_hits[w as usize] -= 1;
                if self.dead_hits[w as usize] == 0 {
                    self.live += 1;
                    revived += 1;
                    if let Some(live_sets) = &mut self.reduced_live {
                        live_sets.note_live(w);
                    }
                }
            }
        }
        revived
    }

    /// Restores every deleted tuple (back to the full instance).
    pub fn reset(&mut self) {
        self.touch();
        if self.deleted_count > 0 {
            self.version += 1;
        }
        self.deleted.iter_mut().for_each(|d| *d = false);
        self.dead_hits.iter_mut().for_each(|c| *c = 0);
        self.deleted_count = 0;
        self.live = self.ws.len();
        // Bulk restore: cheaper (and always correct) to drop the resident
        // warm state and revive every reduced set than to replay deltas.
        self.flow_warm.invalidate();
        self.flow_touched.clear();
        if let Some(live_sets) = &mut self.reduced_live {
            live_sets.reset_all_live();
        }
    }

    /// Number of witnesses alive under the current deletion state (`O(1)`).
    pub fn live_witnesses(&self) -> usize {
        self.live
    }

    /// Number of witnesses of the full (undeleted) instance.
    pub fn total_witnesses(&self) -> usize {
        self.ws.len()
    }

    /// Whether tuple `t` is currently deleted.
    pub fn is_deleted(&self, t: TupleId) -> bool {
        self.deleted.get(t.index()).copied().unwrap_or(false)
    }

    /// The currently deleted tuples, **sorted ascending by tuple id**.
    ///
    /// The ordering is guaranteed (the deletion state is kept as a dense
    /// mask and scanned in id order), so any state echo built from this —
    /// `rescli whatif --json`, the `resd` protocol's `deleted` arrays — is
    /// deterministic across runs and independent of the order in which the
    /// tuples were deleted.
    pub fn deleted_tuples(&self) -> Vec<TupleId> {
        let out: Vec<TupleId> = self
            .deleted
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(TupleId(i as u32)))
            .collect();
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        out
    }

    /// Number of currently deleted tuples (`O(1)`).
    pub fn deleted_count(&self) -> usize {
        self.deleted_count
    }

    /// The instance this session solves over.
    pub fn store(&self) -> &FrozenDb {
        self.db.borrow()
    }

    /// The compiled query this session was opened from.
    pub fn compiled(&self) -> &CompiledQuery {
        self.compiled.borrow()
    }

    /// Statistics of the most recent [`SolveSession::solve`] (warm-start
    /// hit, incumbent reuse, replay, nodes explored).
    pub fn last_solve_stats(&self) -> SessionSolveStats {
        self.stats
    }

    /// Solves the live view: the result equals compiling-and-solving
    /// `db.without(deleted_tuples())` from scratch (same resilience, same
    /// witness count), with contingency tuples referencing the session's
    /// original tuple ids.
    ///
    /// # Warm starts
    ///
    /// Unless [`SolveOptions::warm_start`] is off, consecutive solves feed
    /// each other:
    ///
    /// * **Replay** — if the deleted set (and the options) are unchanged
    ///   since the previous solve, the cached report is returned verbatim.
    /// * **Exact incumbent** — *resilience is monotone under deletions*:
    ///   deleting tuples only removes witnesses, and a live witness `w`
    ///   cannot use a deleted tuple `t` (it would be dead), so if the
    ///   previous contingency set `Γ` hit `w` through some tuple, that tuple
    ///   is in `Γ \ {deleted}`. Hence `Γ` restricted to non-deleted tuples
    ///   still hits every live witness — a *feasible* hitting set, i.e. an
    ///   upper bound on the new resilience. The exact solver re-verifies
    ///   feasibility before trusting it (restores can revive witnesses `Γ`
    ///   never hit), seeds its search bound with it, and skips the search
    ///   entirely when the bound matches the fresh packing lower bound.
    /// * **P-time paths** — flow methods re-run over the live view with
    ///   every construction buffer (node map, edge list, network, masks)
    ///   reused from the session scratch, and run *value-only* (no cut
    ///   extraction) whenever [`SolveOptions::want_contingency`] is off.
    ///   (A certificate-reuse pre-run — value-only solve, then keep the
    ///   still-live previous cut on a value match — was measured a net
    ///   loss: extraction is a small share of a flow solve, so the extra
    ///   max-flow run on a miss outweighs the extraction saved on a hit.)
    ///
    /// Successful warm and cold solves always agree on the resilience,
    /// witness count and method; certificates may differ between equally
    /// minimum sets, and a *tight* node budget may be exhausted at
    /// different points (see [`SolveOptions::warm_start`]).
    pub fn solve(&mut self, opts: &SolveOptions) -> Result<SolveReport, SolveError> {
        self.touch();
        self.stats = SessionSolveStats::default();
        if opts.warm_start {
            if let Some(cache) = &self.cache {
                if cache.version == self.version && cache.opts == *opts {
                    // The report is the cached one verbatim (its own
                    // `nodes_explored` records the original search); the
                    // per-step stats say 0 — nothing ran on this step.
                    self.stats.replayed = true;
                    return Ok(cache.report.clone());
                }
            }
        }
        let report = self.solve_uncached(opts)?;
        self.stats.nodes_explored = report.nodes_explored;
        self.cache = Some(SessionCache {
            version: self.version,
            opts: opts.clone(),
            report: report.clone(),
        });
        Ok(report)
    }

    fn solve_uncached(&mut self, opts: &SolveOptions) -> Result<SolveReport, SolveError> {
        let compiled: &CompiledQuery = self.compiled.borrow();
        let db: &FrozenDb = self.db.borrow();
        let q = &compiled.classification.evidence.normalized;
        let mut stats = SessionSolveStats::default();
        if self.deleted_count == 0 {
            // Nothing deleted: dispatch on the session's own witness set —
            // no clone, no index rebuild, no store copy. Runs cold so the
            // report is bit-identical to `CompiledQuery::solve`.
            let report = compiled.dispatch(
                q,
                db,
                self.ws.view(),
                opts,
                &mut self.scratch,
                None,
                &mut stats,
                None,
            );
            self.stats = stats;
            return report;
        }
        if compiled.dispatch_scans_raw_store() {
            // The dispatch target needs the deletions to be physically
            // absent. Materialize the reduced instance and translate the
            // certificate back (surviving tuples are renumbered densely in
            // scan order).
            let reduced = copy_without_mask(db, &self.deleted).freeze();
            let mut report = compiled.solve(&reduced, opts)?;
            if let Some(gamma) = &mut report.contingency {
                let survivors: Vec<TupleId> = (0..db.num_tuples() as u32)
                    .map(TupleId)
                    .filter(|t| !self.deleted[t.index()])
                    .collect();
                for t in gamma.iter_mut() {
                    *t = survivors[t.index()];
                }
            }
            return Ok(report);
        }
        // The live counters already know which witnesses survive — iterate
        // them in place (no witness cloning, no index rebuild).
        self.survivors.clear();
        self.survivors.extend(
            self.dead_hits
                .iter()
                .enumerate()
                .filter_map(|(w, &hits)| (hits == 0).then_some(w as u32)),
        );
        debug_assert_eq!(self.survivors.len(), self.live);
        let view = WitnessView::live(&self.ws, &self.survivors);

        // Warm-start candidates from the previous solve.
        let mut incumbent: Option<&[u32]> = None;
        if opts.warm_start {
            if let Some(cache) = &self.cache {
                if let (Resilience::Finite(_), Some(gamma)) =
                    (cache.report.resilience, &cache.report.contingency)
                {
                    if cache.report.method == SolveMethod::ExactBranchAndBound {
                        // Restrict the previous contingency set to live
                        // tuples (see the monotonicity argument in the
                        // `solve` docs) and hand it to the exact solver as a
                        // dense-space incumbent.
                        self.incumbent_buf.clear();
                        for &t in gamma {
                            if !self.deleted[t.index()] {
                                if let Some(d) = self.ws.dense_id_of(t) {
                                    self.incumbent_buf.push(d);
                                }
                            }
                        }
                        self.incumbent_buf.sort_unstable();
                        incumbent = Some(&self.incumbent_buf);
                    }
                    // P-time methods re-run their flow over the live view
                    // (value-only when the caller skips certificates), with
                    // every construction buffer — node map, edge list,
                    // network, masks — reused from the session scratch. A
                    // certificate-reuse pre-run (value-only solve, then keep
                    // the still-live previous cut on a value match) was
                    // measured a net loss: cut extraction is a small share
                    // of a flow solve, so the extra max-flow run on a miss
                    // outweighs the extraction saved on a hit.
                }
            }
        }
        // Warm-solve context: flow dispatches repair the resident residual
        // network instead of rerunning Dinic from scratch; exact dispatches
        // fill the reduced-set arena from live counters. Off when the caller
        // disabled warm starts — the dispatch then runs fully cold.
        if opts.warm_start && self.reduced_live_wanted && self.reduced_live.is_none() {
            // First warm solve: build the live arena now and replay the
            // deletion state accumulated since open.
            let mut live_sets = ReducedSetsLive::build(&self.ws);
            for (w, &hits) in self.dead_hits.iter().enumerate() {
                if hits > 0 {
                    live_sets.note_dead(w as u32);
                }
            }
            self.reduced_compactions_seen = live_sets.compactions();
            self.reduced_live = Some(live_sets);
        }
        let warm = opts.warm_start.then(|| SessionWarm {
            flow: &mut self.flow_warm,
            deleted: &self.deleted,
            touched: &mut self.flow_touched,
            full: self.ws.view(),
            reduced_live: self.reduced_live.as_ref(),
        });
        let report = compiled.dispatch(
            q,
            db,
            view,
            opts,
            &mut self.scratch,
            incumbent,
            &mut stats,
            warm,
        );
        if let Some(live_sets) = &self.reduced_live {
            let total = live_sets.compactions();
            stats.reduced_compactions = total - self.reduced_compactions_seen;
            self.reduced_compactions_seen = total;
        }
        self.stats = stats;
        report
    }

    /// Solves several hypothetical deletion sets of this instance in one
    /// call, **sharing the session's witness index** across scoped threads —
    /// the batched what-if entry point (the `resd` protocol's `batch_whatif`
    /// verb; ROADMAP "batched what-if scripts").
    ///
    /// Each `sets[i]` is applied *on top of* the session's current deletion
    /// state (tuples already deleted and ids outside the store are ignored,
    /// exactly like [`Session::delete`]); the session itself is **not**
    /// mutated. Result `i` equals cloning this session, deleting `sets[i]`
    /// and solving cold:
    ///
    /// * witness liveness is answered from the session's one-time tuple →
    ///   witness incidence (no re-enumeration, no index rebuild, no witness
    ///   cloning — threads only keep a per-set hit-counter overlay);
    /// * raw-store-scanning dispatch targets (component-wise, the dedicated
    ///   Section 8 constructions) materialize their reduced copy per set,
    ///   exactly as a regular session solve does, and certificates reference
    ///   the session's original tuple ids;
    /// * every set is solved independently (no warm starts between sets), so
    ///   the results are deterministic and independent of the thread count
    ///   and of the order of `sets`.
    pub fn solve_whatif_batch(
        &self,
        sets: &[Vec<TupleId>],
        opts: &SolveOptions,
    ) -> Vec<Result<SolveReport, SolveError>>
    where
        C: Sync,
        D: Sync,
    {
        let compiled: &CompiledQuery = self.compiled.borrow();
        let db: &FrozenDb = self.db.borrow();
        let solve_chunk = |chunk: &[Vec<TupleId>]| -> Vec<Result<SolveReport, SolveError>> {
            let mut scratch = SolveScratch::new();
            // Per-thread overlay over the shared incidence: extra dead hits
            // per witness and the tuples they came from (for O(touched)
            // reset between sets).
            let mut extra = vec![0u32; self.ws.len()];
            let mut touched: Vec<u32> = Vec::new();
            let mut mask = self.deleted.clone();
            let mut newly: Vec<TupleId> = Vec::new();
            let mut survivors: Vec<u32> = Vec::new();
            let mut out = Vec::with_capacity(chunk.len());
            for set in chunk {
                newly.clear();
                for &t in set {
                    if t.index() < mask.len() && !mask[t.index()] {
                        mask[t.index()] = true;
                        newly.push(t);
                    }
                }
                out.push(self.solve_one_whatif(
                    compiled,
                    db,
                    opts,
                    &mask,
                    &newly,
                    &mut extra,
                    &mut touched,
                    &mut survivors,
                    &mut scratch,
                ));
                for &t in &newly {
                    mask[t.index()] = false;
                }
            }
            out
        };
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(sets.len())
            .max(1);
        if threads <= 1 {
            return solve_chunk(sets);
        }
        let chunk = sets.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let solve_chunk = &solve_chunk;
            let handles: Vec<_> = sets
                .chunks(chunk)
                .map(|c| scope.spawn(move || solve_chunk(c)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("what-if batch thread panicked"))
                .collect()
        })
    }

    /// One hypothetical set of [`Session::solve_whatif_batch`]: `mask` is
    /// the combined (session ∪ set) deletion mask, `newly` the set's tuples
    /// not already deleted by the session. `extra`/`touched` are the
    /// caller's per-thread witness hit overlay (zeroed on entry, zeroed
    /// again on exit).
    #[allow(clippy::too_many_arguments)]
    fn solve_one_whatif(
        &self,
        compiled: &CompiledQuery,
        db: &FrozenDb,
        opts: &SolveOptions,
        mask: &[bool],
        newly: &[TupleId],
        extra: &mut [u32],
        touched: &mut Vec<u32>,
        survivors: &mut Vec<u32>,
        scratch: &mut SolveScratch,
    ) -> Result<SolveReport, SolveError> {
        if compiled.dispatch_scans_raw_store() {
            // Same materialized-copy fallback as a session solve, with the
            // certificate translated back to original ids.
            let reduced = copy_without_mask(db, mask).freeze();
            let mut report = compiled.solve_with_scratch(&reduced, opts, scratch)?;
            if let Some(gamma) = &mut report.contingency {
                let original: Vec<TupleId> = (0..db.num_tuples() as u32)
                    .map(TupleId)
                    .filter(|t| !mask[t.index()])
                    .collect();
                for t in gamma.iter_mut() {
                    *t = original[t.index()];
                }
            }
            return Ok(report);
        }
        touched.clear();
        for &t in newly {
            for &w in self.full.witnesses_of(t) {
                if extra[w as usize] == 0 {
                    touched.push(w);
                }
                extra[w as usize] += 1;
            }
        }
        survivors.clear();
        survivors.extend(
            self.dead_hits
                .iter()
                .zip(extra.iter())
                .enumerate()
                .filter_map(|(w, (&base, &add))| (base == 0 && add == 0).then_some(w as u32)),
        );
        let view = WitnessView::live(&self.ws, survivors);
        let q = &compiled.classification.evidence.normalized;
        let mut stats = SessionSolveStats::default();
        let report = compiled.dispatch(q, db, view, opts, scratch, None, &mut stats, None);
        for &w in touched.iter() {
            extra[w as usize] = 0;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::catalogue;
    use cq::parse_query;
    use database::Database;
    use std::collections::HashSet;

    fn build_db(q: &Query, rows: &[(&str, &[u64])]) -> Database {
        let mut db = Database::for_query(q);
        for (rel, vals) in rows {
            db.insert_named(rel, vals);
        }
        db
    }

    fn chain_instances(n: usize) -> (Query, Vec<FrozenDb>) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let dbs = (0..n)
            .map(|i| {
                let mut db = Database::for_query(&q);
                for j in 0..5u64 {
                    db.insert_named("R", &[j, (j + 1 + i as u64) % 6]);
                }
                db.freeze()
            })
            .collect();
        (q, dbs)
    }

    #[test]
    fn compile_once_solve_many() {
        let (q, dbs) = chain_instances(8);
        let compiled = Engine::compile(&q);
        let opts = SolveOptions::new();
        let reports = compiled.solve_batch(&dbs, &opts);
        assert_eq!(reports.len(), dbs.len());
        for (db, report) in dbs.iter().zip(&reports) {
            let report = report.as_ref().unwrap();
            let sequential = compiled.solve(db, &opts).unwrap();
            assert_eq!(report, &sequential);
        }
    }

    #[test]
    fn report_matches_exact_on_the_paper_example() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let compiled = Engine::compile(&q);
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        assert_eq!(report.resilience, Resilience::Finite(2));
        assert_eq!(report.method, SolveMethod::ExactBranchAndBound);
        assert_eq!(report.witnesses, 3);
        assert!(report.nodes_explored > 0);
        assert_eq!(report.contingency.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn want_contingency_off_skips_extraction_but_keeps_values() {
        // Covers every flow family: linear, permutation, REP, and the three
        // dedicated Section 8 constructions (whose value-only paths compute
        // the resilience without translating the cut back to tuples).
        for nq in [
            catalogue::q_acconf(),
            catalogue::q_aperm(),
            catalogue::z3(),
            catalogue::q_a3perm_r(),
            catalogue::q_swx3perm_r(),
            catalogue::q_ts3conf(),
        ] {
            let compiled = Engine::compile(&nq.query);
            let mut db = Database::for_query(&nq.query);
            for rel in nq.query.schema().relation_ids() {
                let name = nq.query.schema().name(rel).to_string();
                match nq.query.schema().arity(rel) {
                    1 => {
                        for v in 0..4u64 {
                            db.insert_named(&name, &[v]);
                        }
                    }
                    _ => {
                        for (a, b) in [(0u64, 1u64), (1, 0), (1, 2), (2, 2), (3, 1)] {
                            db.insert_named(&name, &[a, b]);
                        }
                    }
                }
            }
            let frozen = db.freeze();
            let with = compiled
                .solve(&frozen, &SolveOptions::new().want_contingency(true))
                .unwrap();
            let without = compiled
                .solve(&frozen, &SolveOptions::new().want_contingency(false))
                .unwrap();
            assert_eq!(with.resilience, without.resilience, "{}", nq.name);
            assert_eq!(with.method, without.method, "{}", nq.name);
            assert!(without.contingency.is_none(), "{}", nq.name);
        }
    }

    #[test]
    fn node_budget_is_a_result_not_a_panic() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        let mut db = Database::for_query(&q);
        for v in 0..12u64 {
            db.insert_named("R", &[v]);
            for w in 0..12u64 {
                if v < w {
                    db.insert_named("S", &[v, w]);
                }
            }
        }
        let compiled = Engine::compile(&q);
        let err = compiled
            .solve(&db.freeze(), &SolveOptions::new().node_budget(3))
            .unwrap_err();
        assert_eq!(err, SolveError::BudgetExhausted { nodes_explored: 3 });
    }

    #[test]
    fn schema_mismatch_is_a_result_not_a_panic() {
        let q = parse_query("R(x,y), Z(y)").unwrap();
        let q_r_only = parse_query("R(x,y)").unwrap();
        let mut db = Database::for_query(&q_r_only);
        db.insert_named("R", &[1, 2]);
        let compiled = Engine::compile(&q);
        let err = compiled
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::SchemaMismatch {
                relation: "Z".to_string()
            }
        );
    }

    #[test]
    fn disconnected_query_uses_precompiled_components() {
        let q = parse_query("A(x), R(x,y), B(u), S(u,v)").unwrap();
        let compiled = Engine::compile(&q);
        assert_eq!(compiled.components.len(), 2);
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("B", &[5]),
                ("S", &[5, 50]),
            ],
        );
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        assert_eq!(report.method, SolveMethod::ComponentMinimum);
        assert_eq!(report.resilience, Resilience::Finite(1));
    }

    #[test]
    fn component_minimum_never_fabricates_an_empty_certificate() {
        // q_rats joined with an unrelated component: the winning component
        // may solve via a method with no certificate (BipartiteCover). The
        // report must then say `contingency: None` — an empty set would be a
        // wrong certificate for a positive resilience.
        let q = parse_query("R^x(x,y), A(x), T^x(z,x), S(y,z), B(u), V(u,v)").unwrap();
        let compiled = Engine::compile(&q);
        assert_eq!(compiled.components.len(), 2);
        let db = build_db(
            &q,
            &[
                // q_rats component: pairwise witnesses, König path.
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("T", &[20, 1]),
                ("T", &[21, 2]),
                ("S", &[10, 20]),
                ("S", &[11, 21]),
                ("S", &[10, 21]),
                // B/V component: resilience 3 (three disjoint witnesses), so
                // the rats component wins the minimum.
                ("B", &[5]),
                ("B", &[6]),
                ("B", &[7]),
                ("V", &[5, 50]),
                ("V", &[6, 60]),
                ("V", &[7, 70]),
            ],
        );
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        assert_eq!(report.method, SolveMethod::ComponentMinimum);
        let value = report.resilience.as_finite().unwrap();
        assert!(value > 0);
        if let Some(gamma) = &report.contingency {
            assert_eq!(gamma.len(), value, "certificate must match the value");
        }
    }

    #[test]
    fn unfalsifiable_and_already_false_reports() {
        let q = parse_query("R^x(x,y)").unwrap();
        let compiled = Engine::compile(&q);
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let report = compiled.solve(&db.freeze(), &SolveOptions::new()).unwrap();
        assert_eq!(report.resilience, Resilience::Unfalsifiable);
        assert!(report.resilience.is_unfalsifiable());
        assert_eq!(report.resilience.as_finite(), None);

        let empty = Database::for_query(&q).freeze();
        let report = compiled.solve(&empty, &SolveOptions::new()).unwrap();
        assert_eq!(report.resilience, Resilience::Finite(0));
        assert_eq!(report.method, SolveMethod::AlreadyFalse);
        assert_eq!(report.contingency, Some(Vec::new()));
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_solves() {
        let (q, dbs) = chain_instances(5);
        let compiled = Engine::compile(&q);
        let opts = SolveOptions::new();
        let mut scratch = SolveScratch::new();
        for db in &dbs {
            let reused = compiled
                .solve_with_scratch(db, &opts, &mut scratch)
                .unwrap();
            let fresh = compiled.solve(db, &opts).unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn session_matches_from_scratch_on_the_paper_example() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        assert_eq!(session.total_witnesses(), 3);
        assert_eq!(session.live_witnesses(), 3);

        let r = db.schema().relation_id("R").unwrap();
        let t33 = db.lookup(r, &[3u64, 3]).unwrap();
        let dead = session.delete(&[t33]);
        assert_eq!(dead, 2); // (2,3,3) and (3,3,3)
        assert!(session.is_deleted(t33));
        assert_eq!(session.deleted_tuples(), vec![t33]);

        let report = session.solve(&opts).unwrap();
        let gamma: std::collections::HashSet<TupleId> = [t33].into_iter().collect();
        let scratch_report = compiled.solve(&db.without(&gamma).freeze(), &opts).unwrap();
        assert_eq!(report.resilience, scratch_report.resilience);
        assert_eq!(report.witnesses, scratch_report.witnesses);
        assert_eq!(report.resilience, Resilience::Finite(1));

        // Deleting an already-deleted tuple is a no-op; restores revive.
        assert_eq!(session.delete(&[t33]), 0);
        assert_eq!(session.restore(&[t33]), 2);
        assert_eq!(session.live_witnesses(), 3);
        assert_eq!(
            session.solve(&opts).unwrap(),
            compiled.solve(&frozen, &opts).unwrap()
        );
    }

    #[test]
    fn session_reset_and_exogenous_deletions() {
        // Deleting a tuple referenced only through an exogenous atom still
        // destroys its witnesses (Database::without semantics), even though
        // it can never be in a contingency set.
        let q = parse_query("A(x), R^x(x,y), B(y)").unwrap();
        let compiled = Engine::compile(&q);
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("B", &[10]),
                ("B", &[11]),
            ],
        );
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        assert_eq!(session.live_witnesses(), 2);
        let r = db.schema().relation_id("R").unwrap();
        let r1 = db.lookup(r, &[1u64, 10]).unwrap();
        session.delete(&[r1]);
        assert_eq!(session.live_witnesses(), 1);
        let report = session.solve(&opts).unwrap();
        assert_eq!(report.resilience, Resilience::Finite(1));
        session.reset();
        assert_eq!(session.deleted_count(), 0);
        assert_eq!(session.live_witnesses(), 2);
        assert_eq!(
            session.solve(&opts).unwrap(),
            compiled.solve(&frozen, &opts).unwrap()
        );
    }

    #[test]
    fn session_rebuild_path_translates_contingency_ids() {
        // A disconnected query dispatches component-wise, which forces the
        // session's materialized-copy fallback; the certificate must still
        // reference the ORIGINAL tuple ids.
        let q = parse_query("A(x), R(x,y), B(u), S(u,v)").unwrap();
        let compiled = Engine::compile(&q);
        let db = build_db(
            &q,
            &[
                ("A", &[1]),
                ("A", &[2]),
                ("R", &[1, 10]),
                ("R", &[2, 11]),
                ("B", &[5]),
                ("B", &[6]),
                ("S", &[5, 50]),
                ("S", &[6, 60]),
            ],
        );
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        // Delete one B-side witness: the B/S component now needs 1 deletion,
        // the A/R component 2, so B/S still wins.
        let b = db.schema().relation_id("B").unwrap();
        let b5 = db.lookup(b, &[5u64]).unwrap();
        session.delete(&[b5]);
        let report = session.solve(&opts).unwrap();
        assert_eq!(report.method, SolveMethod::ComponentMinimum);
        assert_eq!(report.resilience, Resilience::Finite(1));
        if let Some(gamma) = &report.contingency {
            // Every certificate tuple must exist in the ORIGINAL store and
            // falsify the live view when removed.
            let mut deleted: HashSet<TupleId> = gamma.iter().copied().collect();
            assert!(
                !deleted.contains(&b5),
                "deleted tuple cannot be deleted again"
            );
            deleted.insert(b5);
            assert!(!database::evaluate(&q, &db.without(&deleted)));
        }
    }

    #[test]
    fn session_on_catalogue_special_query_matches_from_scratch() {
        // q_TS3conf dispatches to a raw-store-scanning construction: the
        // session must transparently fall back to the materialized copy.
        let nq = catalogue::q_ts3conf();
        let compiled = Engine::compile(&nq.query);
        let db = build_db(
            &nq.query,
            &[
                ("T", &[1, 2]),
                ("S", &[1, 2]),
                ("R", &[1, 2]),
                ("T", &[3, 4]),
                ("R", &[3, 4]),
                ("R", &[5, 4]),
                ("R", &[5, 6]),
                ("S", &[5, 6]),
            ],
        );
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        let forced = db.lookup(r, &[1u64, 2]).unwrap();
        session.delete(&[forced]);
        let report = session.solve(&opts).unwrap();
        let gamma: HashSet<TupleId> = [forced].into_iter().collect();
        let scratch_report = compiled.solve(&db.without(&gamma).freeze(), &opts).unwrap();
        assert_eq!(report.resilience, scratch_report.resilience);
        assert_eq!(report.witnesses, scratch_report.witnesses);
    }

    #[test]
    fn parallel_enumeration_solves_identically() {
        let (q, dbs) = chain_instances(3);
        let compiled = Engine::compile(&q);
        for db in &dbs {
            let sequential = compiled.solve(db, &SolveOptions::new()).unwrap();
            let parallel = compiled
                .solve(db, &SolveOptions::new().enumeration_threads(4))
                .unwrap();
            assert_eq!(sequential, parallel);
        }
    }

    #[test]
    fn shared_session_matches_borrowed_session() {
        // The Arc-owning session shape (registry storage) must behave
        // exactly like the borrowed shape, including across a thread move.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let compiled = Arc::new(Engine::compile(&q));
        let db = build_db(&q, &[("R", &[1, 2]), ("R", &[2, 3]), ("R", &[3, 3])]);
        let frozen = Arc::new(db.freeze());
        let opts = SolveOptions::new();
        let mut shared = compiled.session_shared(&frozen, &opts).unwrap();
        let mut borrowed = compiled.session(&frozen).unwrap();

        let r = db.schema().relation_id("R").unwrap();
        let t33 = db.lookup(r, &[3u64, 3]).unwrap();
        assert_eq!(shared.delete(&[t33]), borrowed.delete(&[t33]));
        assert_eq!(shared.deleted_tuples(), borrowed.deleted_tuples());
        assert_eq!(shared.solve(&opts).unwrap(), borrowed.solve(&opts).unwrap());
        // 'static: the session moves into a spawned thread and keeps
        // working there (this is what lets resd store it per connection).
        let report = std::thread::spawn(move || {
            shared.restore(&[t33]);
            shared.solve(&SolveOptions::new()).unwrap()
        })
        .join()
        .unwrap();
        borrowed.restore(&[t33]);
        assert_eq!(report, borrowed.solve(&opts).unwrap());
    }

    #[test]
    fn deleted_tuples_are_sorted_ascending() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let db = build_db(
            &q,
            &[
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 4]),
                ("R", &[4, 5]),
            ],
        );
        let frozen = db.freeze();
        let mut session = compiled.session(&frozen).unwrap();
        // Delete in descending/scrambled order; the echo must come back
        // ascending regardless.
        session.delete(&[TupleId(3), TupleId(0), TupleId(2)]);
        assert_eq!(
            session.deleted_tuples(),
            vec![TupleId(0), TupleId(2), TupleId(3)]
        );
    }

    #[test]
    fn whatif_batch_matches_sequential_session_solves() {
        // Every hypothetical set must answer exactly what a cloned session
        // with that set deleted answers — across a witness-driven
        // NP-complete query, a raw-store-scanning catalogue query, and a
        // component-wise (disconnected) query.
        for text in ["R(x,y), R(y,z)", "A(x), R(x,y), B(u), S(u,v)"] {
            let q = parse_query(text).unwrap();
            let compiled = Engine::compile(&q);
            let mut db = Database::for_query(&q);
            for rel in q.schema().relation_ids() {
                let name = q.schema().name(rel).to_string();
                match q.schema().arity(rel) {
                    1 => {
                        for v in 0..4u64 {
                            db.insert_named(&name, &[v]);
                        }
                    }
                    _ => {
                        for (a, b) in [(0u64, 1u64), (1, 2), (2, 2), (2, 3), (3, 1)] {
                            db.insert_named(&name, &[a, b]);
                        }
                    }
                }
            }
            let frozen = db.freeze();
            let opts = SolveOptions::new();
            let session = compiled.session(&frozen).unwrap();
            let n = frozen.num_tuples() as u32;
            let sets: Vec<Vec<TupleId>> = (0..n)
                .map(|i| vec![TupleId(i), TupleId((i + 3) % n)])
                .chain([Vec::new(), (0..n).map(TupleId).collect()])
                .collect();
            let batch = session.solve_whatif_batch(&sets, &opts);
            assert_eq!(batch.len(), sets.len());
            for (set, got) in sets.iter().zip(&batch) {
                let mut clone = session.clone();
                clone.delete(set);
                let expected = clone.solve(&SolveOptions::new().warm_start(false));
                match (got, &expected) {
                    (Ok(g), Ok(e)) => {
                        assert_eq!(g.resilience, e.resilience, "{text} {set:?}");
                        assert_eq!(g.witnesses, e.witnesses, "{text} {set:?}");
                        assert_eq!(g.method, e.method, "{text} {set:?}");
                        assert_eq!(
                            g.contingency.as_ref().map(Vec::len),
                            e.contingency.as_ref().map(Vec::len),
                            "{text} {set:?}"
                        );
                        // Certificates reference original, non-deleted ids.
                        if let Some(gamma) = &g.contingency {
                            for t in gamma {
                                assert!(!set.contains(t), "{text}: certificate re-deletes");
                                assert!(t.index() < frozen.num_tuples());
                            }
                        }
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("{text} {set:?}: {got:?} vs {expected:?}"),
                }
            }
        }
    }

    #[test]
    fn whatif_batch_applies_on_top_of_current_deletions() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let db = build_db(
            &q,
            &[
                ("R", &[1, 2]),
                ("R", &[2, 3]),
                ("R", &[3, 3]),
                ("R", &[3, 4]),
            ],
        );
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        let mut session = compiled.session(&frozen).unwrap();
        session.delete(&[TupleId(0)]);
        let before = session.deleted_tuples();
        let live_before = session.live_witnesses();
        let sets = vec![
            vec![TupleId(2)],
            vec![TupleId(0)],
            vec![TupleId(1), TupleId(3)],
        ];
        let batch = session.solve_whatif_batch(&sets, &opts);
        // The session itself is untouched.
        assert_eq!(session.deleted_tuples(), before);
        assert_eq!(session.live_witnesses(), live_before);
        for (set, got) in sets.iter().zip(&batch) {
            let mut clone = session.clone();
            clone.delete(set);
            let expected = clone.solve(&SolveOptions::new().warm_start(false)).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.resilience, expected.resilience, "{set:?}");
            assert_eq!(got.witnesses, expected.witnesses, "{set:?}");
        }
    }

    #[test]
    fn resilience_display_and_conversions() {
        assert_eq!(Resilience::Finite(3).to_string(), "3");
        assert_eq!(Resilience::Unfalsifiable.to_string(), "unfalsifiable");
        assert_eq!(Resilience::from(Some(2)), Resilience::Finite(2));
        assert_eq!(Resilience::from(None), Resilience::Unfalsifiable);
        assert!(Resilience::Finite(0).is_finite());
    }
}
