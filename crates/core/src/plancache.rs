//! A bounded, thread-safe cache of compiled query plans keyed on canonical
//! query shape (`cq::canon`).
//!
//! Classification (minimization, triad search, pattern analysis, the
//! Section 8 catalogue lookup) is per-query and expensive, but production
//! traffic collapses into a handful of query *shapes* — the same CQ up to
//! variable renaming and atom reordering. [`PlanCache::compile`] computes the
//! canonical form of the requested query and serves an already-compiled plan
//! for its shape when one exists; only the first query of each shape pays
//! for a full [`Engine::compile`].
//!
//! # Representative semantics
//!
//! A cache hit returns the plan compiled for the **first-seen representative**
//! of the shape, and that plan speaks the representative's schema (relation
//! *names* and arities are shape-invariant, so instances parse identically
//! against it; variable names are internal to the plan). Solve reports served
//! through the cache are therefore byte-identical to direct solves under the
//! representative — deterministic for the lifetime of the entry — and
//! semantically identical for every member of the shape class (resilience,
//! witness count, method are isomorphism-invariant; only tie-breaks among
//! equally minimal contingency sets can differ from what a direct compile of
//! a *different* member would have chosen). The first compile of a shape is
//! exactly `Engine::compile(q)`, so a cache in front of a fresh workload
//! changes nothing observable.
//!
//! # Collisions and inexact forms
//!
//! Entries whose canonical keys collide chain under one key and are
//! disambiguated by comparing canonical forms — an exact check, so the cache
//! can never conflate distinct shapes (a collision costs a chain scan, never
//! a wrong plan). Queries whose canonicalization exceeded its
//! individualization budget ([`cq::canon::CanonicalQuery::exact`] false) are
//! *bypassed*: compiled directly, never stored, counted in
//! [`PlanCacheStats::bypasses`].
//!
//! # Eviction
//!
//! The cache holds at most `capacity` plans. Inserting into a full cache
//! evicts the least-recently-used entry (hits refresh recency). All
//! operations are safe under concurrent use from many threads; compilation
//! on a miss runs outside the lock, so a slow compile never blocks hits on
//! other shapes.

use crate::engine::{CompiledQuery, Engine};
use cq::canon::{canonicalize_with_budget, CanonKey, DEFAULT_CANON_BUDGET};
use cq::Query;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default number of cached plans (`resd` and `rescli --plan-cache` use
/// this unless configured otherwise). Compiled plans for the paper-scale
/// queries are small (a classification, join plan and atom orders), so the
/// default leans generous.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Counters describing cache behaviour since construction, plus the current
/// occupancy. Returned by [`PlanCache::stats`] and rendered by `resd`'s
/// `stats` verb.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that compiled and inserted a new shape.
    pub misses: u64,
    /// Lookups whose key matched one or more entries of a *different* shape
    /// (the exact canonical-form comparison rejected them).
    pub collisions: u64,
    /// Entries discarded to make room (least recently used first).
    pub evictions: u64,
    /// Lookups bypassed because canonicalization exceeded its budget; the
    /// query was compiled directly and not cached.
    pub bypasses: u64,
    /// Plans currently held.
    pub entries: usize,
    /// Maximum number of plans held.
    pub capacity: usize,
}

/// Result of [`PlanCache::compile`].
#[derive(Clone, Debug)]
pub struct CachedCompile {
    /// The plan to solve with. On a hit this is the shape representative's
    /// plan; parse instances against [`CompiledQuery::query`]'s schema.
    pub compiled: Arc<CompiledQuery>,
    /// The canonical key of the requested query's shape.
    pub key: CanonKey,
    /// `true` when the plan came from the cache.
    pub hit: bool,
    /// `false` when the lookup was bypassed (inexact canonical form).
    pub cacheable: bool,
}

struct Entry {
    /// The shape's canonical form — the exact identity compared on lookup.
    canon: Query,
    /// The first-seen representative's compiled plan.
    compiled: Arc<CompiledQuery>,
    /// Logical clock of the last hit or insert, for LRU eviction.
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u128, Vec<Entry>>,
    entries: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    collisions: u64,
    evictions: u64,
    bypasses: u64,
}

/// See the module docs.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    canon_budget: usize,
    /// Bits of the canonical key actually used; `!0` in production. Tests
    /// shrink it to force collisions down one chain.
    key_mask: u128,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_canon_budget(capacity, DEFAULT_CANON_BUDGET)
    }

    /// [`PlanCache::new`] with an explicit canonicalization leaf budget —
    /// the knob bounding work on adversarially symmetric queries (see
    /// [`cq::canon::canonicalize_with_budget`]).
    pub fn with_canon_budget(capacity: usize, canon_budget: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            canon_budget,
            key_mask: !0,
        }
    }

    /// Test hook: keep only the low `bits` bits of every canonical key, so
    /// distinct shapes collide and exercise the exact-form fallback. Not
    /// part of the public API contract.
    #[doc(hidden)]
    pub fn with_key_bits(capacity: usize, bits: u32) -> Self {
        let mut cache = Self::new(capacity);
        cache.key_mask = if bits >= 128 { !0 } else { (1u128 << bits) - 1 };
        cache
    }

    /// Compiles `q` through the cache: a hash lookup plus a canonical-form
    /// comparison on a hit, a full [`Engine::compile`] (outside the lock) on
    /// a miss. See the module docs for what a hit returns.
    pub fn compile(&self, q: &Query) -> CachedCompile {
        let canon = canonicalize_with_budget(q, self.canon_budget);
        let key = canon.key;
        if !canon.exact {
            // Uncacheable shape: deterministic form is not guaranteed across
            // variants, so serve a direct compile and keep the cache sound.
            self.inner.lock().expect("plan cache poisoned").bypasses += 1;
            return CachedCompile {
                compiled: Arc::new(Engine::compile(q)),
                key,
                hit: false,
                cacheable: false,
            };
        }
        let masked = key.as_u128() & self.key_mask;

        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let mut found: Option<Arc<CompiledQuery>> = None;
            let mut chained = false;
            if let Some(chain) = inner.map.get_mut(&masked) {
                chained = !chain.is_empty();
                for e in chain.iter_mut() {
                    if e.canon == canon.query {
                        e.last_used = tick;
                        found = Some(Arc::clone(&e.compiled));
                        break;
                    }
                }
            }
            match found {
                Some(compiled) => {
                    inner.hits += 1;
                    return CachedCompile {
                        compiled,
                        key,
                        hit: true,
                        cacheable: true,
                    };
                }
                None if chained => inner.collisions += 1,
                None => {}
            }
        }

        // Miss: compile outside the lock, then re-check — another thread may
        // have inserted the shape meanwhile, and keeping its entry preserves
        // the one-plan-per-shape invariant.
        let compiled = Arc::new(Engine::compile(q));
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(chain) = inner.map.get_mut(&masked) {
            if let Some(e) = chain.iter_mut().find(|e| e.canon == canon.query) {
                e.last_used = tick;
                let existing = Arc::clone(&e.compiled);
                inner.misses += 1;
                return CachedCompile {
                    compiled: existing,
                    key,
                    hit: false,
                    cacheable: true,
                };
            }
        }
        inner.misses += 1;
        if inner.entries >= self.capacity {
            inner.evict_lru();
        }
        inner.map.entry(masked).or_default().push(Entry {
            canon: canon.query,
            compiled: Arc::clone(&compiled),
            last_used: tick,
        });
        inner.entries += 1;
        CachedCompile {
            compiled,
            key,
            hit: false,
            cacheable: true,
        }
    }

    /// A snapshot of the counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            collisions: inner.collisions,
            evictions: inner.evictions,
            bypasses: inner.bypasses,
            entries: inner.entries,
            capacity: self.capacity,
        }
    }

    /// Maximum number of plans held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Inner {
    /// Removes the least-recently-used entry. O(entries), only paid on an
    /// insert into a full cache.
    fn evict_lru(&mut self) {
        let mut victim: Option<(u128, usize, u64)> = None;
        for (&k, chain) in &self.map {
            for (i, e) in chain.iter().enumerate() {
                if victim.is_none_or(|(_, _, t)| e.last_used < t) {
                    victim = Some((k, i, e.last_used));
                }
            }
        }
        if let Some((k, i, _)) = victim {
            let chain = self.map.get_mut(&k).expect("victim key exists");
            chain.remove(i);
            if chain.is_empty() {
                self.map.remove(&k);
            }
            self.entries -= 1;
            self.evictions += 1;
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolveOptions;
    use cq::parse_query;
    use database::Database;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn second_variant_hits_and_shares_the_representative_plan() {
        let cache = PlanCache::new(8);
        let first = cache.compile(&q("R(x,y), R(y,z)"));
        assert!(!first.hit);
        let second = cache.compile(&q("R(b,c), R(a,b)")); // renamed + permuted
        assert!(second.hit);
        assert_eq!(first.key, second.key);
        assert!(Arc::ptr_eq(&first.compiled, &second.compiled));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_shapes_get_distinct_plans() {
        let cache = PlanCache::new(8);
        let a = cache.compile(&q("R(x,y), R(y,z)"));
        let b = cache.compile(&q("S(x,y), S(y,z)"));
        let c = cache.compile(&q("R(x,y), R(y,z), R(z,w)"));
        assert!(!a.hit && !b.hit && !c.hit);
        assert_eq!(cache.stats().entries, 3);
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn hit_serves_a_plan_that_solves_instances() {
        let cache = PlanCache::new(8);
        cache.compile(&q("A(x), R(x,y), R(z,y), C(z)"));
        let hit = cache.compile(&q("C(c), R(a,b), R(c,b), A(a)"));
        assert!(hit.hit);
        // The served plan parses and solves instances by relation name.
        let plan_q = hit.compiled.query();
        let mut db = Database::for_query(plan_q);
        db.insert_named("A", &[1u64]);
        db.insert_named("R", &[1u64, 2]);
        db.insert_named("R", &[3u64, 2]);
        db.insert_named("C", &[3u64]);
        let report = hit
            .compiled
            .solve(&db.freeze(), &SolveOptions::new())
            .unwrap();
        assert_eq!(report.resilience, crate::engine::Resilience::Finite(1));
    }

    #[test]
    fn lru_eviction_discards_the_coldest_shape() {
        let cache = PlanCache::new(2);
        cache.compile(&q("R(x,y)")); // shape A
        cache.compile(&q("S(x,y)")); // shape B
        cache.compile(&q("R(a,b)")); // refresh A
        cache.compile(&q("T(x,y)")); // shape C -> evicts B
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(cache.compile(&q("R(u,v)")).hit, "A stayed resident");
        assert!(!cache.compile(&q("S(u,v)")).hit, "B was evicted");
    }

    #[test]
    fn forced_key_collisions_never_conflate_shapes() {
        // Zero key bits: every shape lands in one chain, so every lookup
        // after the first exercises the exact canonical-form comparison.
        let cache = PlanCache::with_key_bits(8, 0);
        let a = cache.compile(&q("R(x,y), R(y,z)"));
        let b = cache.compile(&q("S(x,y), S(y,z)"));
        assert!(!a.hit && !b.hit);
        assert!(!Arc::ptr_eq(&a.compiled, &b.compiled));
        // Both shapes resolve to their own plan through the shared chain.
        let a2 = cache.compile(&q("R(p,q), R(q,r)"));
        let b2 = cache.compile(&q("S(p,q), S(q,r)"));
        assert!(a2.hit && b2.hit);
        assert!(Arc::ptr_eq(&a.compiled, &a2.compiled));
        assert!(Arc::ptr_eq(&b.compiled, &b2.compiled));
        assert_eq!(
            a2.compiled
                .query()
                .schema()
                .name(a2.compiled.query().atom(0).relation),
            "R"
        );
        assert_eq!(
            b2.compiled
                .query()
                .schema()
                .name(b2.compiled.query().atom(0).relation),
            "S"
        );
        let s = cache.stats();
        assert!(s.collisions >= 1, "chained lookups must count collisions");
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn inexact_canonical_forms_bypass_the_cache() {
        // Eight disjoint copies of one atom: 8! admissible orders, far over
        // a tiny budget, so the form is inexact and must not be cached.
        let text: Vec<String> = (0..8).map(|i| format!("R(a{i},b{i})")).collect();
        let sym = q(&text.join(", "));
        let cache = PlanCache::with_canon_budget(8, 2);
        let first = cache.compile(&sym);
        let second = cache.compile(&sym);
        assert!(!first.cacheable && !second.cacheable);
        assert!(!first.hit && !second.hit);
        let s = cache.stats();
        assert_eq!(s.bypasses, 2);
        assert_eq!(s.entries, 0);
        // Both direct compiles still answer.
        assert!(first.compiled.classification().complexity.is_ptime());
    }

    #[test]
    fn first_compile_of_a_shape_is_exactly_engine_compile() {
        // The cache must be invisible for fresh shapes: same classification,
        // same query object, same solve reports.
        let cache = PlanCache::new(8);
        let query = q("A(x), R(x,y), R(y,z)");
        let via_cache = cache.compile(&query);
        let direct = Engine::compile(&query);
        assert_eq!(via_cache.compiled.query(), direct.query());
        assert_eq!(
            via_cache.compiled.classification().complexity,
            direct.classification().complexity
        );
        let mut db = Database::for_query(&query);
        db.insert_named("A", &[1u64]);
        db.insert_named("R", &[1u64, 2]);
        db.insert_named("R", &[2u64, 3]);
        let frozen = db.freeze();
        let opts = SolveOptions::new();
        assert_eq!(
            via_cache.compiled.solve(&frozen, &opts).unwrap(),
            direct.solve(&frozen, &opts).unwrap()
        );
    }

    #[test]
    fn concurrent_compiles_converge_on_one_entry_per_shape() {
        let cache = std::sync::Arc::new(PlanCache::new(16));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..16 {
                        let k = (t + i) % 4;
                        let text = format!("R(x{k},y), R(y,z{t})");
                        // Four shapes overall (same shape for every t).
                        let _ = cache.compile(&parse_query(&text).unwrap());
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 1, "all texts share one shape");
        assert_eq!(s.hits + s.misses, 128);
    }
}
