//! Approximation and bounding for resilience on NP-complete queries.
//!
//! The paper's hard cases leave no polynomial exact algorithm (unless
//! P = NP), but practical use still wants fast answers with guarantees.
//! This module provides the standard toolbox around the witness hypergraph:
//!
//! * [`greedy_upper_bound`] — the greedy hitting-set heuristic
//!   (ln(m)-approximation for hitting sets; for queries with `m` atoms every
//!   witness has at most `m` tuples, so it is also an `m`-approximation);
//! * [`disjoint_packing_lower_bound`] — a maximal packing of pairwise
//!   disjoint witnesses, each of which forces one deletion;
//! * [`ResilienceBounds::compute`] — both bounds plus the exact value when
//!   they already coincide (which happens surprisingly often on sparse
//!   instances and is how the branch-and-bound solver prunes).

use crate::exact::{greedy_hitting_set_dense, ExactScratch};
use cq::Query;
use database::{Database, ReducedSets, TupleId, WitnessSet};

/// Greedy hitting-set upper bound with the witnessing contingency set.
///
/// Runs entirely in the witness set's dense tuple space (CSR index and
/// [`ReducedSets`] arena): no per-call renumbering map is built, and
/// membership checks are array lookups.
pub fn greedy_upper_bound(ws: &WitnessSet) -> Option<Vec<TupleId>> {
    if ws.has_undeletable_witness() {
        return None;
    }
    let universe = ws.relevant_tuples();
    let reduced = ws.reduced();
    let mut scratch = ExactScratch::new();
    Some(
        greedy_hitting_set_dense(&reduced, &mut scratch)
            .iter()
            .map(|&d| universe[d as usize])
            .collect(),
    )
}

/// Lower bound from a greedy maximal packing of pairwise-disjoint witnesses.
pub fn disjoint_packing_lower_bound(ws: &WitnessSet) -> usize {
    packing_lower_bound(&ws.reduced())
}

/// [`disjoint_packing_lower_bound`] over prebuilt [`ReducedSets`].
///
/// Dense-space packing over a flat bool mask; the reduced sets already come
/// smallest-first (they are the hardest to pack around). Delegates to the
/// exact solver's implementation — the same bound drives its warm-start
/// short-circuit, so the two can never drift apart.
pub fn packing_lower_bound(reduced: &ReducedSets) -> usize {
    crate::exact::csr_packing_bound(reduced, &mut Vec::new())
}

/// Upper and lower bounds on the resilience of one instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResilienceBounds {
    /// Lower bound (disjoint witness packing). 0 when the query is false.
    pub lower: usize,
    /// Upper bound (greedy hitting set), or `None` when the query cannot be
    /// made false at all.
    pub upper: Option<usize>,
    /// The greedy contingency set witnessing `upper`.
    pub greedy_contingency: Vec<TupleId>,
}

impl ResilienceBounds {
    /// Computes both bounds for `q` over `db`.
    pub fn compute(q: &Query, db: &Database) -> Self {
        let ws = WitnessSet::build(q, db);
        Self::from_witnesses(&ws)
    }

    /// Computes both bounds from a prebuilt witness set.
    pub fn from_witnesses(ws: &WitnessSet) -> Self {
        let lower = disjoint_packing_lower_bound(ws);
        match greedy_upper_bound(ws) {
            Some(greedy) => ResilienceBounds {
                lower,
                upper: Some(greedy.len()),
                greedy_contingency: greedy,
            },
            None => ResilienceBounds {
                lower,
                upper: None,
                greedy_contingency: Vec::new(),
            },
        }
    }

    /// When the bounds already meet, the exact resilience is known without
    /// any search.
    pub fn exact_if_tight(&self) -> Option<usize> {
        match self.upper {
            Some(u) if u == self.lower => Some(u),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use cq::parse_query;
    use database::Database;
    use std::collections::HashSet;
    use workloads::Workload;

    fn chain_instance(seed: u64, nodes: u64, density: f64) -> (Query, Database) {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Workload::new(seed).random_graph_relation(&q, "R", nodes, density);
        (q, db)
    }

    #[test]
    fn bounds_bracket_the_exact_value() {
        for seed in 0..8u64 {
            let (q, db) = chain_instance(seed, 8, 0.25);
            let bounds = ResilienceBounds::compute(&q, &db);
            let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
            assert!(bounds.lower <= exact, "seed {seed}");
            assert!(exact <= bounds.upper.unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn greedy_contingency_is_valid() {
        let (q, db) = chain_instance(3, 9, 0.3);
        let ws = WitnessSet::build(&q, &db);
        let bounds = ResilienceBounds::from_witnesses(&ws);
        let gamma: HashSet<TupleId> = bounds.greedy_contingency.iter().copied().collect();
        assert!(ws.is_contingency_set(&gamma));
        assert_eq!(gamma.len(), bounds.upper.unwrap());
    }

    #[test]
    fn tight_bounds_give_exact_answers() {
        // Disjoint witnesses: packing = greedy = exact.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 0..5u64 {
            db.insert_named("R", &[10 * i, 10 * i + 1]);
            db.insert_named("R", &[10 * i + 1, 10 * i + 2]);
        }
        let bounds = ResilienceBounds::compute(&q, &db);
        assert_eq!(bounds.exact_if_tight(), Some(5));
        let exact = ExactSolver::new().resilience_value(&q, &db).unwrap();
        assert_eq!(exact, 5);
    }

    #[test]
    fn unfalsifiable_instances_have_no_upper_bound() {
        let q = parse_query("R^x(x,y)").unwrap();
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        let bounds = ResilienceBounds::compute(&q, &db);
        assert_eq!(bounds.upper, None);
        assert!(bounds.exact_if_tight().is_none());
        // The single empty reduced set forces nothing deletable: the packing
        // lower bound must stay 0 (regression: an empty set once counted as
        // a packed set).
        assert_eq!(bounds.lower, 0);
    }

    #[test]
    fn false_query_has_zero_bounds() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let db = Database::for_query(&q);
        let bounds = ResilienceBounds::compute(&q, &db);
        assert_eq!(bounds.lower, 0);
        assert_eq!(bounds.upper, Some(0));
        assert_eq!(bounds.exact_if_tight(), Some(0));
    }

    #[test]
    fn lower_bound_counts_disjoint_witnesses() {
        // A 6-cycle of R-edges: witnesses are the 6 consecutive pairs; a
        // maximal disjoint packing has 3 of them, and the exact resilience is
        // also 3.
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let mut db = Database::for_query(&q);
        for i in 0..6u64 {
            db.insert_named("R", &[i, (i + 1) % 6]);
        }
        let ws = WitnessSet::build(&q, &db);
        assert_eq!(disjoint_packing_lower_bound(&ws), 3);
        assert_eq!(ExactSolver::new().resilience_value(&q, &db), Some(3));
    }
}
