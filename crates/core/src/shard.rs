//! Scatter/gather solving over join-connected shards.
//!
//! `database::shard` partitions an instance along its constant-connected
//! components; this module solves the shards — in parallel on scoped
//! threads, or streamed one at a time while the next shard is still being
//! parsed/frozen — and merges the per-shard [`SolveReport`]s into the
//! report the whole instance would have produced.
//!
//! # Why the merge is sound
//!
//! Every witness of a **connected** query lies entirely inside one shard
//! (its tuples are chained by shared constants), so the witness hypergraph
//! of the whole instance is the disjoint union of the shards' hypergraphs.
//! A minimum hitting set of a disjoint union is the union of per-part
//! minimum hitting sets, hence:
//!
//! * resilience adds up: `ρ(q, D) = Σ_s ρ(q, D_s)`;
//! * the query is unfalsifiable on `D` iff it is on some shard;
//! * witnesses add up, and a merged contingency set is the union of the
//!   per-shard sets translated through each shard's `source_ids`.
//!
//! For a **disconnected** query, witnesses combine one sub-witness per
//! query component — possibly from *different* shards — so per-shard solves
//! of the full query do not compose. Instead the merge scatters each
//! connected component of the normalized query separately (Lemma 14 makes
//! components independent): per component, resilience sums across shards;
//! the whole query's resilience is the minimum over components, exactly
//! like the engine's `ComponentMinimum` dispatch; witness counts multiply
//! across components. This covers both the polynomial component-wise
//! dispatch and NP-hard disconnected queries (Lemma 14 does not care how
//! each component is solved).

use crate::engine::{
    CompiledQuery, Engine, Resilience, SolveError, SolveMethod, SolveOptions, SolveReport,
    SolveScratch,
};
use database::{FrozenDb, TupleId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One shard ready to solve: the instance plus the translation back to the
/// original instance's tuple ids (`source_ids[local] = original`).
#[derive(Clone, Debug)]
pub struct ShardInstance {
    /// The shard instance.
    pub frozen: Arc<FrozenDb>,
    /// Original tuple id per shard-local id, ascending.
    pub source_ids: Vec<TupleId>,
}

impl From<database::shard::Shard> for ShardInstance {
    fn from(s: database::shard::Shard) -> ShardInstance {
        ShardInstance {
            frozen: Arc::new(s.frozen),
            source_ids: s.source_ids,
        }
    }
}

/// A merged sharded solve, plus scatter topology facts for reporting.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// The merged report, with contingency ids in the *original* instance's
    /// id space, sorted ascending.
    pub report: SolveReport,
    /// Number of shards solved.
    pub shards: usize,
    /// Connected components of the normalized query (1 = connected).
    pub query_components: usize,
    /// Total tuples across the shards.
    pub tuples: usize,
}

/// The subqueries to scatter: the compiled query itself when connected, one
/// compiled subquery per connected component of its normalized form
/// otherwise. Component order follows the normalized query's atom order, so
/// the min-tie-break below is deterministic.
fn scatter_queries(compiled: &CompiledQuery) -> Vec<CompiledQuery> {
    let normalized = &compiled.classification().evidence.normalized;
    let components = normalized.components();
    if components.len() <= 1 {
        return vec![compiled.clone()];
    }
    components
        .iter()
        .map(|comp| Engine::compile(&normalized.subquery(comp)))
        .collect()
}

/// Accumulates per-`(component, shard)` reports and produces the merged
/// whole-instance report. Deterministic: absorb order is fixed by the
/// caller (always component-major within one shard, shards in index order).
struct Gather {
    components: usize,
    want_contingency: bool,
    shards: usize,
    tuples: usize,
    /// Per component: summed finite resilience, any-shard unfalsifiable,
    /// summed witnesses, contingency parts (original ids), lost-certificate
    /// flag (a shard produced no contingency for a positive resilience).
    comp_res: Vec<usize>,
    comp_unfalsifiable: Vec<bool>,
    comp_witnesses: Vec<usize>,
    comp_contingency: Vec<Vec<TupleId>>,
    comp_certificateless: Vec<bool>,
    nodes_explored: usize,
    /// Methods observed on shards that had witnesses (connected path only).
    methods: Vec<SolveMethod>,
}

impl Gather {
    fn new(components: usize, opts: &SolveOptions) -> Gather {
        Gather {
            components,
            want_contingency: opts.wants_contingency(),
            shards: 0,
            tuples: 0,
            comp_res: vec![0; components],
            comp_unfalsifiable: vec![false; components],
            comp_witnesses: vec![0; components],
            comp_contingency: vec![Vec::new(); components],
            comp_certificateless: vec![false; components],
            nodes_explored: 0,
            methods: Vec::new(),
        }
    }

    /// Absorbs one shard's reports (one per scatter query, in component
    /// order).
    fn absorb(&mut self, shard: &ShardInstance, reports: Vec<SolveReport>) {
        debug_assert_eq!(reports.len(), self.components);
        self.shards += 1;
        self.tuples += shard.frozen.num_tuples();
        for (c, report) in reports.into_iter().enumerate() {
            self.nodes_explored += report.nodes_explored;
            self.comp_witnesses[c] = self.comp_witnesses[c].saturating_add(report.witnesses);
            match report.resilience {
                Resilience::Unfalsifiable => self.comp_unfalsifiable[c] = true,
                Resilience::Finite(r) => {
                    self.comp_res[c] += r;
                    if r > 0 {
                        match report.contingency {
                            Some(gamma) => self.comp_contingency[c]
                                .extend(gamma.iter().map(|t| shard.source_ids[t.index()])),
                            None => self.comp_certificateless[c] = true,
                        }
                    }
                }
            }
            if self.components == 1
                && report.witnesses > 0
                && !self.methods.contains(&report.method)
            {
                self.methods.push(report.method.clone());
            }
        }
    }

    fn finish(mut self) -> ShardedOutcome {
        // Any component with zero witnesses falsifies the whole query: its
        // cross product of sub-witnesses is empty. Mirrors the engine's
        // `view.is_empty()` early return.
        let already_false = self.comp_witnesses.contains(&0);
        // Total witnesses: product across components of per-component sums
        // (a full witness picks one sub-witness per component).
        let witnesses = if already_false {
            0
        } else {
            self.comp_witnesses
                .iter()
                .fold(1usize, |acc, &w| acc.saturating_mul(w))
        };
        let report = if already_false {
            SolveReport {
                resilience: Resilience::Finite(0),
                contingency: self.want_contingency.then(Vec::new),
                method: SolveMethod::AlreadyFalse,
                witnesses: 0,
                nodes_explored: self.nodes_explored,
            }
        } else if self.comp_unfalsifiable.iter().all(|&u| u) {
            // Every component has an undeletable witness, so a full witness
            // made of undeletable parts exists: unfalsifiable, like the
            // engine's `has_undeletable_witness` early return.
            SolveReport {
                resilience: Resilience::Unfalsifiable,
                contingency: None,
                method: SolveMethod::Unfalsifiable,
                witnesses,
                nodes_explored: self.nodes_explored,
            }
        } else if self.components == 1 {
            let mut contingency = std::mem::take(&mut self.comp_contingency[0]);
            contingency.sort_unstable();
            let method = match self.methods.as_slice() {
                [single] => single.clone(),
                _ => SolveMethod::ShardGather,
            };
            SolveReport {
                resilience: Resilience::Finite(self.comp_res[0]),
                contingency: (self.want_contingency && !self.comp_certificateless[0])
                    .then_some(contingency),
                method,
                witnesses,
                nodes_explored: self.nodes_explored,
            }
        } else {
            // Component-wise minimum (Lemma 14): first component with the
            // strictly smallest summed resilience wins, like the engine.
            let winner = (0..self.components)
                .filter(|&c| !self.comp_unfalsifiable[c])
                .min_by_key(|&c| (self.comp_res[c], c))
                .expect("some component is falsifiable");
            let mut contingency = std::mem::take(&mut self.comp_contingency[winner]);
            contingency.sort_unstable();
            SolveReport {
                resilience: Resilience::Finite(self.comp_res[winner]),
                contingency: (self.want_contingency && !self.comp_certificateless[winner])
                    .then_some(contingency),
                method: SolveMethod::ComponentMinimum,
                witnesses,
                nodes_explored: self.nodes_explored,
            }
        };
        ShardedOutcome {
            report,
            shards: self.shards,
            query_components: self.components,
            tuples: self.tuples,
        }
    }
}

/// Solves every scatter query against one shard, in component order.
fn solve_shard(
    queries: &[CompiledQuery],
    shard: &ShardInstance,
    opts: &SolveOptions,
    scratch: &mut SolveScratch,
) -> Result<Vec<SolveReport>, SolveError> {
    queries
        .iter()
        .map(|q| q.solve_store(shard.frozen.as_ref(), opts, scratch))
        .collect()
}

/// Solves `shards` with up to `threads` workers and merges the reports; see
/// the module docs for the merge semantics. Deterministic in
/// `(compiled, shards, opts)` — thread count never changes the output.
///
/// Per-shard solves see `opts` as-is, so the exact solver's node budget
/// applies *per shard per component*, not globally; any shard error
/// (budget, cancellation, schema mismatch) fails the whole solve with the
/// first error in shard order.
pub fn solve_sharded(
    compiled: &CompiledQuery,
    shards: &[ShardInstance],
    opts: &SolveOptions,
    threads: usize,
) -> Result<ShardedOutcome, SolveError> {
    let queries = scatter_queries(compiled);
    let workers = threads.clamp(1, shards.len().max(1));
    let results: Vec<Option<Result<Vec<SolveReport>, SolveError>>> = if workers <= 1 {
        let mut scratch = SolveScratch::new();
        shards
            .iter()
            .map(|s| Some(solve_shard(&queries, s, opts, &mut scratch)))
            .collect()
    } else {
        let mut slots: Vec<Option<Result<Vec<SolveReport>, SolveError>>> = Vec::new();
        slots.resize_with(shards.len(), || None);
        let next = AtomicUsize::new(0);
        let slot_ptr = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queries = &queries;
                    let next = &next;
                    let slot_ptr = &slot_ptr;
                    scope.spawn(move || {
                        let mut scratch = SolveScratch::new();
                        let mut local: Vec<(usize, Result<Vec<SolveReport>, SolveError>)> =
                            Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= shards.len() {
                                break;
                            }
                            local.push((i, solve_shard(queries, &shards[i], opts, &mut scratch)));
                        }
                        let mut slots = slot_ptr.lock().unwrap();
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("shard solver panicked");
            }
        });
        slots
    };

    let mut gather = Gather::new(queries.len(), opts);
    for (shard, result) in shards.iter().zip(results) {
        let reports = result.expect("every shard slot filled")?;
        gather.absorb(shard, reports);
    }
    Ok(gather.finish())
}

/// Streaming scatter/gather: shards arrive from an iterator (typically a
/// producer that is still parsing text / loading snapshots / freezing), and
/// each is solved as soon as it lands while the producer prepares the next
/// one on its own thread — parse/freeze overlaps witness enumeration, and
/// at most `buffered + 1` shards are ever resident.
///
/// `E` is the producer's error type (e.g. [`database::SnapshotError`]);
/// producer errors and solve errors both abort the gather.
pub fn solve_sharded_streaming<I, E>(
    compiled: &CompiledQuery,
    shards: I,
    opts: &SolveOptions,
    buffered: usize,
) -> Result<ShardedOutcome, ShardStreamError<E>>
where
    I: Iterator<Item = Result<ShardInstance, E>> + Send,
    E: Send,
{
    let queries = scatter_queries(compiled);
    let (tx, rx) = std::sync::mpsc::sync_channel::<Result<ShardInstance, E>>(buffered.max(1));
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            for item in shards {
                if tx.send(item).is_err() {
                    // Consumer aborted; stop producing.
                    return;
                }
            }
        });
        let mut scratch = SolveScratch::new();
        let mut gather = Gather::new(queries.len(), opts);
        let mut failure: Option<ShardStreamError<E>> = None;
        for item in &rx {
            match item {
                Ok(shard) => match solve_shard(&queries, &shard, opts, &mut scratch) {
                    Ok(reports) => gather.absorb(&shard, reports),
                    Err(e) => {
                        failure = Some(ShardStreamError::Solve(e));
                        break;
                    }
                },
                Err(e) => {
                    failure = Some(ShardStreamError::Source(e));
                    break;
                }
            }
        }
        // Dropping `rx` (by leaving the loop) unblocks the producer's send.
        drop(rx);
        producer.join().expect("shard producer panicked");
        match failure {
            Some(e) => Err(e),
            None => Ok(gather.finish()),
        }
    })
}

/// Failure of a streaming sharded solve: the shard source failed, or a
/// shard solve failed.
#[derive(Debug)]
pub enum ShardStreamError<E> {
    /// The producer failed to deliver a shard.
    Source(E),
    /// A shard solve failed.
    Solve(SolveError),
}

impl<E: std::fmt::Display> std::fmt::Display for ShardStreamError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStreamError::Source(e) => write!(f, "shard source failed: {e}"),
            ShardStreamError::Solve(e) => write!(f, "shard solve failed: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ShardStreamError<E> {}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse_query;
    use database::shard::partition_shards;
    use database::Database;

    fn shard_instances(db: &FrozenDb, k: usize) -> Vec<ShardInstance> {
        partition_shards(db, k)
            .into_iter()
            .map(Into::into)
            .collect()
    }

    /// Connected query, two data components: resilience must sum.
    #[test]
    fn connected_query_sums_across_shards() {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("R", &[10, 11]);
        db.insert_named("S", &[11, 12]);
        let frozen = db.freeze();
        let whole = compiled.solve(&frozen, &SolveOptions::new()).unwrap();

        let shards = shard_instances(&frozen, 2);
        assert_eq!(shards.len(), 2);
        for threads in [1, 2] {
            let merged = solve_sharded(&compiled, &shards, &SolveOptions::new(), threads).unwrap();
            assert_eq!(merged.report.resilience, whole.resilience);
            assert_eq!(merged.report.witnesses, whole.witnesses);
            assert_eq!(merged.report.method, whole.method);
            assert_eq!(merged.report.contingency, whole.contingency);
            assert_eq!(merged.shards, 2);
            assert_eq!(merged.query_components, 1);
        }
    }

    /// Disconnected query: merged result must take the min over query
    /// components of per-component sums, not a sum of per-shard minima.
    #[test]
    fn disconnected_query_merges_per_component() {
        let q = parse_query("R(x,y), S(z,w)").unwrap();
        let compiled = Engine::compile(&q);
        let mut db = Database::for_query(&q);
        // R-tuples in two data components; S in one. ρ = min(ρ_R, ρ_S).
        db.insert_named("R", &[1, 2]);
        db.insert_named("R", &[10, 11]);
        db.insert_named("S", &[20, 21]);
        let frozen = db.freeze();
        let whole = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
        assert_eq!(whole.method, SolveMethod::ComponentMinimum);

        let shards = shard_instances(&frozen, 2);
        let merged = solve_sharded(&compiled, &shards, &SolveOptions::new(), 2).unwrap();
        assert_eq!(merged.report.resilience, whole.resilience);
        assert_eq!(merged.report.witnesses, whole.witnesses);
        assert_eq!(merged.report.method, whole.method);
        assert_eq!(merged.query_components, 2);
        // A naive per-shard solve-and-sum would give 2 here (each shard's
        // own component minimum), not the true 1.
        assert_eq!(merged.report.resilience, Resilience::Finite(1));
    }

    #[test]
    fn empty_and_unfalsifiable_shards_merge_like_the_engine() {
        let q = parse_query("R(x,y), S(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        // No matching joins at all: already false.
        let mut db = Database::for_query(&q);
        db.insert_named("R", &[1, 2]);
        db.insert_named("S", &[7, 8]);
        let frozen = db.freeze();
        let whole = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
        let shards = shard_instances(&frozen, 2);
        let merged = solve_sharded(&compiled, &shards, &SolveOptions::new(), 1).unwrap();
        assert_eq!(merged.report, whole);

        // Exogenous-only witness in one shard: unfalsifiable overall.
        let q = parse_query("Rx(x,y), S(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let mut db = Database::for_query(&q);
        db.insert_named("Rx", &[1, 2]);
        db.insert_named("S", &[2, 3]);
        db.insert_named("Rx", &[10, 11]);
        db.insert_named("S", &[11, 12]);
        let frozen = db.freeze();
        let whole = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
        let shards = shard_instances(&frozen, 2);
        let merged = solve_sharded(&compiled, &shards, &SolveOptions::new(), 2).unwrap();
        assert_eq!(merged.report.resilience, whole.resilience);
        assert_eq!(merged.report.method, whole.method);
    }

    #[test]
    fn streaming_matches_eager() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        let compiled = Engine::compile(&q);
        let mut db = Database::for_query(&q);
        for base in [0u64, 100, 200] {
            db.insert_named("R", &[base + 1, base + 2]);
            db.insert_named("R", &[base + 2, base + 3]);
            db.insert_named("R", &[base + 2, base + 2]);
        }
        let frozen = db.freeze();
        let shards = shard_instances(&frozen, 3);
        let eager = solve_sharded(&compiled, &shards, &SolveOptions::new(), 2).unwrap();
        let streamed = solve_sharded_streaming(
            &compiled,
            shards.clone().into_iter().map(Ok::<_, std::io::Error>),
            &SolveOptions::new(),
            1,
        )
        .unwrap();
        assert_eq!(streamed.report, eager.report);
        let whole = compiled.solve(&frozen, &SolveOptions::new()).unwrap();
        assert_eq!(eager.report.resilience, whole.resilience);
        assert_eq!(eager.report.witnesses, whole.witnesses);
    }
}
