//! Linearity (Section 2.4) and pseudo-linearity (Theorem 25).
//!
//! A query is **linear** if its atoms can be arranged in a linear order such
//! that each variable occurs in a contiguous block of atoms. Linear sj-free
//! queries are solvable by network flow.
//!
//! A query is **pseudo-linear** when its *endogenous* atoms are connected
//! linearly (Theorem 25 shows that every query without a triad is
//! pseudo-linear). We formalize this as: there is an ordering of the
//! endogenous atoms in which, for every variable, the endogenous atoms
//! containing it are contiguous.

use crate::ids::Var;
use crate::query::Query;
use std::collections::HashSet;

/// Returns a witness ordering of the given atoms (indices into `q`) such that
/// every variable of `q` occurs in a contiguous block of the ordering, or
/// `None` if no such ordering exists.
///
/// The search is a backtracking construction: an ordering is extended one
/// atom at a time, and a placement is only legal if every variable that is
/// "open" (already seen but with more occurrences pending among the remaining
/// atoms) occurs in the newly placed atom. Queries have at most a handful of
/// atoms, so the search space is tiny.
pub fn linear_order(q: &Query, atoms: &[usize]) -> Option<Vec<usize>> {
    if atoms.len() <= 1 {
        return Some(atoms.to_vec());
    }
    // occurrences[v] = how many of the selected atoms contain variable v.
    let mut occurrences = vec![0usize; q.num_vars()];
    for &a in atoms {
        for v in q.atom_var_set(a) {
            occurrences[v.index()] += 1;
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
    let mut used = vec![false; atoms.len()];
    // seen[v] = number of already-placed atoms containing v.
    let mut seen = vec![0usize; q.num_vars()];
    if place(q, atoms, &occurrences, &mut used, &mut seen, &mut order) {
        Some(order)
    } else {
        None
    }
}

fn place(
    q: &Query,
    atoms: &[usize],
    occurrences: &[usize],
    used: &mut Vec<bool>,
    seen: &mut Vec<usize>,
    order: &mut Vec<usize>,
) -> bool {
    if order.len() == atoms.len() {
        return true;
    }
    // Open variables: seen at least once, but not all occurrences placed yet.
    let open: Vec<Var> = (0..q.num_vars() as u32)
        .map(Var)
        .filter(|v| seen[v.index()] > 0 && seen[v.index()] < occurrences[v.index()])
        .collect();
    'candidates: for pos in 0..atoms.len() {
        if used[pos] {
            continue;
        }
        let a = atoms[pos];
        let a_vars: HashSet<Var> = q.atom_var_set(a).into_iter().collect();
        for v in &open {
            if !a_vars.contains(v) {
                continue 'candidates;
            }
        }
        used[pos] = true;
        order.push(a);
        for v in &a_vars {
            seen[v.index()] += 1;
        }
        if place(q, atoms, occurrences, used, seen, order) {
            return true;
        }
        for v in &a_vars {
            seen[v.index()] -= 1;
        }
        order.pop();
        used[pos] = false;
    }
    false
}

/// Whether `q` is a linear query: all atoms can be arranged on a line with
/// contiguous variable intervals.
pub fn is_linear(q: &Query) -> bool {
    let all: Vec<usize> = (0..q.num_atoms()).collect();
    linear_order(q, &all).is_some()
}

/// Returns a linear ordering of all atoms, if one exists.
pub fn linear_order_all(q: &Query) -> Option<Vec<usize>> {
    let all: Vec<usize> = (0..q.num_atoms()).collect();
    linear_order(q, &all)
}

/// Whether `q` is pseudo-linear: its endogenous atoms can be arranged on a
/// line with contiguous variable intervals (Theorem 25's conclusion for
/// triad-free queries).
pub fn is_pseudo_linear(q: &Query) -> bool {
    let endo = q.endogenous_atoms();
    linear_order(q, &endo).is_some()
}

/// Returns a linear ordering of the endogenous atoms, if one exists.
pub fn pseudo_linear_order(q: &Query) -> Option<Vec<usize>> {
    let endo = q.endogenous_atoms();
    linear_order(q, &endo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::normalize;
    use crate::parse_query;

    #[test]
    fn example_linear_query_is_linear() {
        // q_lin :- A(x), R(x,y,z), S(y,z)  (Figure 1d)
        let q = parse_query("A(x), R(x,y,z), S(y,z)").unwrap();
        assert!(is_linear(&q));
        let order = linear_order_all(&q).unwrap();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn chain_query_is_linear() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(is_linear(&q));
        assert!(is_pseudo_linear(&q));
    }

    #[test]
    fn triangle_is_not_linear() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        assert!(!is_linear(&q));
        assert!(!is_pseudo_linear(&q));
    }

    #[test]
    fn tripod_is_not_linear_but_pseudo_linear_is_false_too() {
        let q = parse_query("A(x), B(y), C(z), W(x,y,z)").unwrap();
        assert!(!is_linear(&q));
        // Even after normalization (W exogenous), the three unary atoms A, B,
        // C have no shared variables, so any ordering is trivially interval:
        // pseudo-linearity looks only at variable contiguity.
        let n = normalize(&q);
        assert!(is_pseudo_linear(&n));
        // The triad is what reveals hardness here, not pseudo-linearity.
    }

    #[test]
    fn rats_normal_form_is_pseudo_linear() {
        let q = parse_query("R(x,y), A(x), T(z,x), S(y,z)").unwrap();
        let n = normalize(&q);
        assert!(is_pseudo_linear(&n));
        // The raw query (no exogenous marking) is not linear.
        assert!(!is_linear(&q));
    }

    #[test]
    fn vc_query_is_linear() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        assert!(is_linear(&q));
        let order = linear_order_all(&q).unwrap();
        // The S atom must be in the middle.
        assert_eq!(order[1], 1);
    }

    #[test]
    fn cfp_is_pseudo_linear_but_not_linear() {
        // cfp :- R(x,y), H^x(x,z), R(z,y)   (Section 7.2)
        let q = parse_query("R(x,y), H^x(x,z), R(z,y)").unwrap();
        assert!(is_pseudo_linear(&q));
        assert!(!is_linear(&q));
    }

    #[test]
    fn acconf_is_linear() {
        // q_ACconf :- A(x), R(x,y), R(z,y), C(z)
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        assert!(is_linear(&q));
        assert!(is_pseudo_linear(&q));
    }

    #[test]
    fn ordering_witness_has_contiguous_intervals() {
        let q = parse_query("A(x), R(x,y), B(y), S(y,z), C(z)").unwrap();
        let order = linear_order_all(&q).unwrap();
        // Verify the interval property explicitly.
        for v in q.vars() {
            let positions: Vec<usize> = order
                .iter()
                .enumerate()
                .filter_map(|(pos, &a)| q.atom(a).contains_var(v).then_some(pos))
                .collect();
            if positions.len() > 1 {
                let min = *positions.first().unwrap();
                let max = *positions.last().unwrap();
                assert_eq!(
                    max - min + 1,
                    positions.len(),
                    "variable {v:?} not contiguous"
                );
            }
        }
    }

    #[test]
    fn single_atom_and_empty_sets_are_linear() {
        let q = parse_query("R(x,y)").unwrap();
        assert!(is_linear(&q));
        assert_eq!(linear_order(&q, &[]), Some(vec![]));
    }

    #[test]
    fn a3perm_r_is_linear() {
        // q_A3perm-R :- A(x), R(x,y), R(y,z), R(z,y) can be laid out linearly.
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,y)").unwrap();
        assert!(is_linear(&q));
    }

    #[test]
    fn star_with_three_leaves_is_not_linear() {
        // Central variable x appears in three atoms that each add a private
        // variable: R(x,a), S(x,b), T(x,c), plus leaves on a, b, c. The
        // leaves force a, b, c to be intervals, which is fine, but adding
        // a second level makes x non-contiguous only if x's atoms are split.
        // A plain star is actually linear (any order keeps x contiguous), so
        // use the triangle with a pendant to get a genuinely non-linear case.
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        assert!(!is_linear(&q));
    }
}
