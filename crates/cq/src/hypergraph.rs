//! The dual hypergraph `H(q)` of a conjunctive query (Section 2.1).
//!
//! The dual hypergraph has one *vertex per atom* and one *hyperedge per
//! variable*: variable `x` induces the hyperedge consisting of all atoms in
//! which `x` occurs. A path is an alternating sequence of atoms and variables
//! such that each variable joins the two adjacent atoms.
//!
//! The structural notions the paper builds on top of the dual hypergraph —
//! triads (Definition 5), pseudo-linearity (Theorem 25) and exogenous paths
//! for confluences (Proposition 32) — all reduce to reachability queries of
//! the form "is there a path from atom `a` to atom `b` that avoids a given
//! set of variables / only uses a given set of atoms?". This module exposes
//! exactly that primitive.

use crate::ids::Var;
use crate::query::Query;
use std::collections::{HashSet, VecDeque};

/// The dual hypergraph of a query.
///
/// Borrowing is avoided: the hypergraph copies the tiny amount of structure
/// it needs (atom count, per-atom variable sets) so it can outlive the query
/// borrow if convenient.
#[derive(Clone, Debug)]
pub struct DualHypergraph {
    /// `vars_of[a]` = sorted set of variables of atom `a`.
    vars_of: Vec<Vec<Var>>,
    /// `atoms_of[v]` = sorted set of atoms containing variable `v`.
    atoms_of: Vec<Vec<usize>>,
}

impl DualHypergraph {
    /// Builds the dual hypergraph of `q`.
    pub fn new(q: &Query) -> Self {
        let vars_of: Vec<Vec<Var>> = (0..q.num_atoms()).map(|i| q.atom_var_set(i)).collect();
        let mut atoms_of: Vec<Vec<usize>> = vec![Vec::new(); q.num_vars()];
        for (a, vs) in vars_of.iter().enumerate() {
            for &v in vs {
                atoms_of[v.index()].push(a);
            }
        }
        DualHypergraph { vars_of, atoms_of }
    }

    /// Number of vertices (atoms).
    pub fn num_atoms(&self) -> usize {
        self.vars_of.len()
    }

    /// Number of hyperedges (variables).
    pub fn num_vars(&self) -> usize {
        self.atoms_of.len()
    }

    /// Variables of atom `a`.
    pub fn vars_of(&self, a: usize) -> &[Var] {
        &self.vars_of[a]
    }

    /// Atoms containing variable `v`.
    pub fn atoms_of(&self, v: Var) -> &[usize] {
        &self.atoms_of[v.index()]
    }

    /// Variables shared by atoms `a` and `b`.
    pub fn shared_vars(&self, a: usize, b: usize) -> Vec<Var> {
        self.vars_of[a]
            .iter()
            .copied()
            .filter(|v| self.vars_of[b].contains(v))
            .collect()
    }

    /// Whether atoms `a` and `b` are adjacent (share at least one variable).
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        !self.shared_vars(a, b).is_empty()
    }

    /// Is there a path from atom `from` to atom `to` such that
    ///
    /// * every *variable* used along the path is outside `forbidden_vars`, and
    /// * every *intermediate atom* is outside `forbidden_atoms`
    ///   (the endpoints themselves are always allowed)?
    ///
    /// With empty restriction sets this is plain connectivity.
    pub fn has_path_avoiding(
        &self,
        from: usize,
        to: usize,
        forbidden_vars: &HashSet<Var>,
        forbidden_atoms: &HashSet<usize>,
    ) -> bool {
        if from == to {
            return true;
        }
        let n = self.num_atoms();
        let mut visited = vec![false; n];
        visited[from] = true;
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(a) = queue.pop_front() {
            for &v in &self.vars_of[a] {
                if forbidden_vars.contains(&v) {
                    continue;
                }
                for &b in &self.atoms_of[v.index()] {
                    if visited[b] {
                        continue;
                    }
                    if b == to {
                        return true;
                    }
                    if forbidden_atoms.contains(&b) {
                        continue;
                    }
                    visited[b] = true;
                    queue.push_back(b);
                }
            }
        }
        false
    }

    /// Plain reachability between two atoms.
    pub fn connected(&self, from: usize, to: usize) -> bool {
        self.has_path_avoiding(from, to, &HashSet::new(), &HashSet::new())
    }

    /// Returns one shortest path (as a list of atom indices, including both
    /// endpoints) from `from` to `to` avoiding `forbidden_vars`, or `None` if
    /// no such path exists.
    pub fn shortest_path_avoiding(
        &self,
        from: usize,
        to: usize,
        forbidden_vars: &HashSet<Var>,
    ) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.num_atoms();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[from] = true;
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(a) = queue.pop_front() {
            for &v in &self.vars_of[a] {
                if forbidden_vars.contains(&v) {
                    continue;
                }
                for &b in &self.atoms_of[v.index()] {
                    if visited[b] {
                        continue;
                    }
                    visited[b] = true;
                    prev[b] = Some(a);
                    if b == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(b);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn triangle_adjacency() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let h = DualHypergraph::new(&q);
        assert_eq!(h.num_atoms(), 3);
        assert_eq!(h.num_vars(), 3);
        assert!(h.adjacent(0, 1));
        assert!(h.adjacent(1, 2));
        assert!(h.adjacent(0, 2));
        let y = q.var_by_name("y").unwrap();
        assert_eq!(h.shared_vars(0, 1), vec![y]);
    }

    #[test]
    fn path_avoiding_third_atom_variables() {
        // In the triangle, R -> S via y avoids var(T) = {z, x}? No: the only
        // shared var of R and S is y, which is not in var(T) = {z,x}, so the
        // direct hop works.
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let h = DualHypergraph::new(&q);
        let forbidden: HashSet<_> = q.atom_var_set(2).into_iter().collect();
        assert!(h.has_path_avoiding(0, 1, &forbidden, &HashSet::new()));
    }

    #[test]
    fn path_blocked_when_all_shared_vars_forbidden() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let h = DualHypergraph::new(&q);
        let y = q.var_by_name("y").unwrap();
        let x = q.var_by_name("x").unwrap();
        let z = q.var_by_name("z").unwrap();
        // Forbidding all three variables disconnects everything.
        let all: HashSet<_> = [x, y, z].into_iter().collect();
        assert!(!h.has_path_avoiding(0, 1, &all, &HashSet::new()));
        // Forbidding only y forces the path R -x- T -z- S.
        let just_y: HashSet<_> = [y].into_iter().collect();
        assert!(h.has_path_avoiding(0, 1, &just_y, &HashSet::new()));
        let path = h.shortest_path_avoiding(0, 1, &just_y).unwrap();
        assert_eq!(path, vec![0, 2, 1]);
    }

    #[test]
    fn forbidden_intermediate_atom_blocks_path() {
        let q = parse_query("A(x), R(x,y), B(y)").unwrap();
        let h = DualHypergraph::new(&q);
        // A and B are only connected through the atom R(x,y).
        let mid: HashSet<usize> = [1].into_iter().collect();
        assert!(!h.has_path_avoiding(0, 2, &HashSet::new(), &mid));
        assert!(h.has_path_avoiding(0, 2, &HashSet::new(), &HashSet::new()));
    }

    #[test]
    fn disconnected_query_not_connected() {
        let q = parse_query("A(x), R(x,y), R(z,w), B(w)").unwrap();
        let h = DualHypergraph::new(&q);
        assert!(h.connected(0, 1));
        assert!(!h.connected(0, 2));
        assert!(h.shortest_path_avoiding(0, 3, &HashSet::new()).is_none());
    }

    #[test]
    fn linear_query_shortest_path_is_the_line() {
        let q = parse_query("A(x), R(x,y), S(y,z), C(z)").unwrap();
        let h = DualHypergraph::new(&q);
        let path = h.shortest_path_avoiding(0, 3, &HashSet::new()).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trivial_path_same_atom() {
        let q = parse_query("R(x,y)").unwrap();
        let h = DualHypergraph::new(&q);
        assert!(h.connected(0, 0));
        assert_eq!(
            h.shortest_path_avoiding(0, 0, &HashSet::new()),
            Some(vec![0])
        );
    }
}
