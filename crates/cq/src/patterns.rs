//! Self-join pattern analysis (Sections 6–8).
//!
//! For a single-self-join (ssj) binary query with repeated relation `R`, the
//! paper classifies how two `R`-atoms can interact:
//!
//! * **Path** — disjoint variable sets (Theorems 27 and 28): always hard;
//! * **Chain** — one shared variable joining at *different* attribute
//!   positions, e.g. `R(x,y), R(y,z)` (Section 7.1): always hard;
//! * **Confluence** — one shared variable joining at the *same* position,
//!   e.g. `R(x,y), R(z,y)` (Section 7.2): hard iff an exogenous path connects
//!   the outer variables while avoiding the shared one (Proposition 32);
//! * **Permutation** — both variables shared at swapped positions,
//!   `R(x,y), R(y,x)` (Section 7.3): hard iff the permutation is *bound*
//!   (Proposition 35);
//! * **REP** — a repeated variable inside an `R`-atom, e.g. `R(x,x)`
//!   (Section 7.4): in `P` when the atoms share a variable (Proposition 36),
//!   otherwise it is a path and therefore hard.
//!
//! This module provides the pairwise analysis plus the query-level predicates
//! the dichotomy classifier needs (paths, k-chains, boundedness, exogenous
//! paths, and the Section 8 three-atom shapes).

use crate::hypergraph::DualHypergraph;
use crate::ids::{RelId, Var};
use crate::query::Query;
use std::collections::{HashSet, VecDeque};

/// How two atoms over the same (binary) relation relate to each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairKind {
    /// Identical argument lists — removed by minimization.
    Duplicate,
    /// At least one of the two atoms repeats a variable (`R(x,x)`).
    Rep,
    /// Disjoint variable sets (a binary path, Theorem 28).
    Path,
    /// One shared variable at different positions (`R(x,y), R(y,z)`).
    Chain,
    /// One shared variable at the same position (`R(x,y), R(z,y)` or
    /// `R(x,y), R(x,z)`).
    Confluence,
    /// Both variables shared at swapped positions (`R(x,y), R(y,x)`).
    Permutation,
}

/// Result of analysing one pair of self-join atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairAnalysis {
    /// Indices of the two atoms in the query.
    pub atoms: (usize, usize),
    /// The kind of interaction.
    pub kind: PairKind,
    /// Variables shared by the two atoms.
    pub shared: Vec<Var>,
}

/// Relations occurring in more than one atom, with their atom indices.
pub fn repeated_relations(q: &Query) -> Vec<(RelId, Vec<usize>)> {
    q.self_join_relations()
        .into_iter()
        .map(|r| (r, q.atoms_of(r)))
        .collect()
}

/// The single repeated relation of an ssj query (with its atoms), if the
/// query has a self-join at all.
pub fn single_self_join_relation(q: &Query) -> Option<(RelId, Vec<usize>)> {
    let rep = repeated_relations(q);
    match rep.len() {
        0 => None,
        1 => Some(rep.into_iter().next().unwrap()),
        _ => None,
    }
}

/// Analyses how the two atoms `i` and `j` (assumed to be over the same
/// relation) interact.
pub fn analyze_pair(q: &Query, i: usize, j: usize) -> PairAnalysis {
    let a = q.atom(i);
    let b = q.atom(j);
    let shared: Vec<Var> = a
        .var_set()
        .into_iter()
        .filter(|v| b.contains_var(*v))
        .collect();
    let kind = if a.args == b.args {
        PairKind::Duplicate
    } else if a.has_repeated_var() || b.has_repeated_var() {
        if shared.is_empty() {
            PairKind::Path
        } else {
            PairKind::Rep
        }
    } else if shared.is_empty() {
        PairKind::Path
    } else if shared.len() == 2 {
        PairKind::Permutation
    } else {
        // Exactly one shared variable in two binary atoms without repeats.
        let v = shared[0];
        let pos_a = a.positions_of(v)[0];
        let pos_b = b.positions_of(v)[0];
        if pos_a == pos_b {
            PairKind::Confluence
        } else {
            PairKind::Chain
        }
    };
    PairAnalysis {
        atoms: (i, j),
        kind,
        shared,
    }
}

/// Theorem 27: the query contains a *unary path* — the self-join relation is
/// unary and occurs in two distinct *endogenous* atoms.
pub fn has_unary_path(q: &Query) -> bool {
    repeated_relations(q).iter().any(|(r, atoms)| {
        let atoms: Vec<usize> = atoms
            .iter()
            .copied()
            .filter(|&i| !q.atom(i).exogenous)
            .collect();
        q.schema().arity(*r) == 1
            && atoms.len() >= 2
            && atoms.iter().any(|&i| {
                atoms
                    .iter()
                    .any(|&j| j != i && q.atom(i).args != q.atom(j).args)
            })
    })
}

/// Theorem 28: the query contains a *binary path* — two consecutive atoms of
/// a binary self-join relation with disjoint variable sets. "Consecutive"
/// means connected in the dual hypergraph by a path with no intervening atom
/// of the same relation. Returns the witnessing pair if found.
pub fn find_binary_path(q: &Query) -> Option<(usize, usize)> {
    let h = DualHypergraph::new(q);
    for (r, atoms) in repeated_relations(q) {
        if q.schema().arity(r) != 2 {
            continue;
        }
        let atoms: Vec<usize> = atoms
            .iter()
            .copied()
            .filter(|&i| !q.atom(i).exogenous)
            .collect();
        for ai in 0..atoms.len() {
            for aj in (ai + 1)..atoms.len() {
                let (i, j) = (atoms[ai], atoms[aj]);
                let analysis = analyze_pair(q, i, j);
                if analysis.kind != PairKind::Path {
                    continue;
                }
                // Consecutive: a connecting path that avoids the *other*
                // atoms of the same relation as intermediate vertices.
                let forbidden_atoms: HashSet<usize> = atoms
                    .iter()
                    .copied()
                    .filter(|&k| k != i && k != j)
                    .collect();
                if h.has_path_avoiding(i, j, &HashSet::new(), &forbidden_atoms) {
                    return Some((i, j));
                }
            }
        }
    }
    None
}

/// Whether the query contains a path (unary or binary) between self-join
/// atoms; either kind forces NP-completeness.
pub fn has_path(q: &Query) -> bool {
    has_unary_path(q) || find_binary_path(q).is_some()
}

/// Detects whether the atoms of the self-join relation form a *k-chain*
/// `R(x_0,x_1), R(x_1,x_2), ..., R(x_{k-1},x_k)` with all `x_i` distinct
/// (Sections 7.1 and 8.1). Returns `k` (the number of R-atoms) if so.
pub fn k_chain_length(q: &Query) -> Option<usize> {
    let (r, atoms) = single_self_join_relation(q)?;
    if q.schema().arity(r) != 2 || atoms.len() < 2 {
        return None;
    }
    // No repeated variables allowed inside the chain atoms.
    if atoms.iter().any(|&i| q.atom(i).has_repeated_var()) {
        return None;
    }
    // Try every ordering of the (few) R-atoms and check the chain shape.
    let mut order: Vec<usize> = atoms.clone();
    permute_check(q, &mut order, 0)
}

fn permute_check(q: &Query, order: &mut Vec<usize>, from: usize) -> Option<usize> {
    if from == order.len() {
        return chain_shape_ok(q, order).then_some(order.len());
    }
    for i in from..order.len() {
        order.swap(from, i);
        if let Some(k) = permute_check(q, order, from + 1) {
            order.swap(from, i);
            return Some(k);
        }
        order.swap(from, i);
    }
    None
}

fn chain_shape_ok(q: &Query, order: &[usize]) -> bool {
    let mut seen_vars: HashSet<Var> = HashSet::new();
    let first = q.atom(order[0]);
    seen_vars.insert(first.args[0]);
    seen_vars.insert(first.args[1]);
    if first.args[0] == first.args[1] {
        return false;
    }
    let mut prev_target = first.args[1];
    for &idx in &order[1..] {
        let a = q.atom(idx);
        if a.args[0] != prev_target {
            return false;
        }
        let fresh = a.args[1];
        if seen_vars.contains(&fresh) {
            return false;
        }
        seen_vars.insert(fresh);
        prev_target = fresh;
    }
    true
}

/// Proposition 35's criterion for a 2-permutation `R(x,y), R(y,x)`: the
/// permutation is *bound* when the query has an endogenous atom containing
/// `x` but not `y` and an endogenous atom containing `y` but not `x`
/// (other than the permutation atoms themselves).
pub fn permutation_is_bound(q: &Query, i: usize, j: usize) -> bool {
    let a = q.atom(i);
    let x = a.args[0];
    let y = a.args[1];
    let side = |keep: Var, avoid: Var| {
        q.atoms().iter().enumerate().any(|(k, atom)| {
            k != i
                && k != j
                && !atom.exogenous
                && atom.contains_var(keep)
                && !atom.contains_var(avoid)
        })
    };
    side(x, y) && side(y, x)
}

/// Proposition 32's criterion for a 2-confluence `R(x,y), R(z,y)` (shared
/// variable `y`, outer variables `x` and `z`): is there an *exogenous path*
/// from `x` to `z` that does not involve `y`?
///
/// The path walks from variable to variable through exogenous atoms only and
/// never touches `y`.
pub fn confluence_has_exogenous_path(q: &Query, x: Var, z: Var, y: Var) -> bool {
    if x == z {
        return false;
    }
    let mut visited: HashSet<Var> = HashSet::new();
    visited.insert(x);
    let mut queue = VecDeque::new();
    queue.push_back(x);
    while let Some(v) = queue.pop_front() {
        for atom in q.atoms() {
            if !atom.exogenous || !atom.contains_var(v) || atom.contains_var(y) {
                continue;
            }
            for &w in &atom.args {
                if w == y || visited.contains(&w) {
                    continue;
                }
                if w == z {
                    return true;
                }
                visited.insert(w);
                queue.push_back(w);
            }
        }
    }
    false
}

/// The outer/shared variables of a 2-confluence pair: returns `(x, z, y)`
/// where `y` is the shared variable and `x`, `z` the outer ones.
pub fn confluence_variables(q: &Query, i: usize, j: usize) -> Option<(Var, Var, Var)> {
    let analysis = analyze_pair(q, i, j);
    if analysis.kind != PairKind::Confluence {
        return None;
    }
    let y = analysis.shared[0];
    let a = q.atom(i);
    let b = q.atom(j);
    let x = *a.args.iter().find(|&&v| v != y)?;
    let z = *b.args.iter().find(|&&v| v != y)?;
    Some((x, z, y))
}

/// Shapes a set of exactly three binary self-join atoms can take (Section 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreeAtomShape {
    /// `R(x,y), R(y,z), R(z,w)` — a 3-chain (Section 8.1).
    Chain3,
    /// `R(x,y), R(z,y), R(z,w)` — a 3-confluence (Section 8.2).
    Confluence3,
    /// A 2-chain and a 2-confluence at once (Section 8.3).
    ChainConfluence,
    /// `R(x,y), R(y,z), R(z,y)` — a permutation plus one more atom
    /// (Section 8.4).
    PermutationPlusR,
    /// At least one atom with a repeated variable (Section 8.5).
    Rep3,
    /// Anything else (includes triads of R-atoms such as the triangle).
    Other,
}

/// Classifies the shape of exactly three self-join atoms.
pub fn three_atom_shape(q: &Query, atoms: &[usize]) -> ThreeAtomShape {
    assert_eq!(atoms.len(), 3, "three_atom_shape needs exactly 3 atoms");
    if atoms.iter().any(|&i| q.atom(i).has_repeated_var()) {
        return ThreeAtomShape::Rep3;
    }
    let mut kinds = Vec::new();
    for a in 0..3 {
        for b in (a + 1)..3 {
            kinds.push(analyze_pair(q, atoms[a], atoms[b]).kind);
        }
    }
    let count = |k: PairKind| kinds.iter().filter(|&&x| x == k).count();
    let chains = count(PairKind::Chain);
    let confs = count(PairKind::Confluence);
    let perms = count(PairKind::Permutation);
    let paths = count(PairKind::Path);

    if perms == 1 && (chains + confs) >= 1 && paths <= 1 {
        return ThreeAtomShape::PermutationPlusR;
    }
    if k_chain_length(q) == Some(3) {
        return ThreeAtomShape::Chain3;
    }
    if chains >= 1 && confs >= 1 && perms == 0 {
        return ThreeAtomShape::ChainConfluence;
    }
    if confs == 2 && chains == 0 && perms == 0 {
        return ThreeAtomShape::Confluence3;
    }
    if chains == 2 && confs == 0 && perms == 0 && paths == 1 {
        // R(x,y),R(y,z),R(z,w) when the fast k-chain check did not match due
        // to ordering is still a 3-chain.
        return ThreeAtomShape::Chain3;
    }
    ThreeAtomShape::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn pair_kind(text: &str) -> PairKind {
        let q = parse_query(text).unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        analyze_pair(&q, atoms[0], atoms[1]).kind
    }

    #[test]
    fn chain_pair_detected() {
        assert_eq!(pair_kind("R(x,y), R(y,z)"), PairKind::Chain);
    }

    #[test]
    fn confluence_pair_detected_in_and_out() {
        assert_eq!(
            pair_kind("A(x), R(x,y), R(z,y), C(z)"),
            PairKind::Confluence
        );
        assert_eq!(
            pair_kind("A(y), R(x,y), R(x,z), C(z)"),
            PairKind::Confluence
        );
    }

    #[test]
    fn permutation_pair_detected() {
        assert_eq!(pair_kind("R(x,y), R(y,x)"), PairKind::Permutation);
    }

    #[test]
    fn path_pair_detected() {
        assert_eq!(pair_kind("R(x,y), S(y,z), R(z2,w)"), PairKind::Path);
    }

    #[test]
    fn rep_pair_detected() {
        // z3 :- R(x,x), R(x,y), A(y)
        assert_eq!(pair_kind("R(x,x), R(x,y), A(y)"), PairKind::Rep);
        // z1 :- R(x,x), S(x,y), R(y,y): disjoint variable sets -> Path.
        assert_eq!(pair_kind("R(x,x), S(x,y), R(y,y)"), PairKind::Path);
    }

    #[test]
    fn duplicate_pair_detected() {
        assert_eq!(pair_kind("R(x,y), R(x,y), S(y,z)"), PairKind::Duplicate);
    }

    #[test]
    fn unary_path_detection() {
        let q = parse_query("R(x), S(x,y), R(y)").unwrap();
        assert!(has_unary_path(&q));
        assert!(has_path(&q));
        let q2 = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(!has_unary_path(&q2));
    }

    #[test]
    fn binary_path_detection() {
        // z2 :- R(x,x), S(x,y), R(y,z): the two R-atoms have disjoint vars and
        // are connected through S only.
        let q = parse_query("R(x,x), S(x,y), R(y,z)").unwrap();
        assert!(find_binary_path(&q).is_some());
        assert!(has_path(&q));
        // q_chain shares a variable, so it is not a path.
        let q2 = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(find_binary_path(&q2).is_none());
        assert!(!has_path(&q2));
    }

    #[test]
    fn binary_path_requires_consecutive_atoms() {
        // Three R-atoms in a row: R(x,y), R(y,z), R(z,w). The outer pair
        // (R(x,y), R(z,w)) has disjoint variables but every connecting path
        // goes through the middle R-atom, so it is not "consecutive" and the
        // query is a 3-chain rather than a path.
        let q = parse_query("R(x,y), R(y,z), R(z,w)").unwrap();
        assert!(find_binary_path(&q).is_none());
        assert_eq!(k_chain_length(&q), Some(3));
    }

    #[test]
    fn two_chain_length() {
        let q = parse_query("A(x), R(x,y), R(y,z), C(z)").unwrap();
        assert_eq!(k_chain_length(&q), Some(2));
    }

    #[test]
    fn k_chain_rejects_confluence_and_permutation() {
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        assert_eq!(k_chain_length(&q), None);
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        assert_eq!(k_chain_length(&q), None);
    }

    #[test]
    fn bound_and_unbound_permutations() {
        // q_ABperm :- A(x), R(x,y), R(y,x), B(y) is bound.
        let q = parse_query("A(x), R(x,y), R(y,x), B(y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert!(permutation_is_bound(&q, atoms[0], atoms[1]));
        // q_Aperm :- A(x), R(x,y), R(y,x) is not bound.
        let q = parse_query("A(x), R(x,y), R(y,x)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert!(!permutation_is_bound(&q, atoms[0], atoms[1]));
        // Exogenous bounding atoms do not count.
        let q = parse_query("A(x), R(x,y), R(y,x), B^x(y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert!(!permutation_is_bound(&q, atoms[0], atoms[1]));
    }

    #[test]
    fn confluence_exogenous_path() {
        // cfp :- R(x,y), H^x(x,z), R(z,y): exogenous path from x to z.
        let q = parse_query("R(x,y), H^x(x,z), R(z,y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        let (x, z, y) = confluence_variables(&q, atoms[0], atoms[1]).unwrap();
        assert!(confluence_has_exogenous_path(&q, x, z, y));
        // q_ACconf :- A(x), R(x,y), R(z,y), C(z): no exogenous atoms at all.
        let q = parse_query("A(x), R(x,y), R(z,y), C(z)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        let (x, z, y) = confluence_variables(&q, atoms[0], atoms[1]).unwrap();
        assert!(!confluence_has_exogenous_path(&q, x, z, y));
    }

    #[test]
    fn exogenous_path_may_use_multiple_hops() {
        let q = parse_query("R(x,y), H^x(x,w), G^x(w,z), R(z,y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        let (x, z, y) = confluence_variables(&q, atoms[0], atoms[1]).unwrap();
        assert!(confluence_has_exogenous_path(&q, x, z, y));
        // If an intermediate exogenous atom touches y it cannot be used.
        let q = parse_query("R(x,y), H^x(x,y), R(z,y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        let (x, z, y) = confluence_variables(&q, atoms[0], atoms[1]).unwrap();
        assert!(!confluence_has_exogenous_path(&q, x, z, y));
    }

    #[test]
    fn three_atom_shapes() {
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,w), C(w)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(three_atom_shape(&q, &atoms), ThreeAtomShape::Chain3);

        let q = parse_query("A(x), R(x,y), R(z,y), R(z,w), C(w)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(three_atom_shape(&q, &atoms), ThreeAtomShape::Confluence3);

        let q = parse_query("A(x), R(x,y), R(y,z), R(w,z), C(w)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(
            three_atom_shape(&q, &atoms),
            ThreeAtomShape::ChainConfluence
        );

        let q = parse_query("A(x), R(x,y), R(y,z), R(z,y)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(
            three_atom_shape(&q, &atoms),
            ThreeAtomShape::PermutationPlusR
        );

        let q = parse_query("A(x), R(x,y), R(y,z), R(z,z)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(three_atom_shape(&q, &atoms), ThreeAtomShape::Rep3);

        // The triangle of R-atoms is none of the named shapes.
        let q = parse_query("R(x,y), R(y,z), R(z,x)").unwrap();
        let (_, atoms) = single_self_join_relation(&q).unwrap();
        assert_eq!(three_atom_shape(&q, &atoms), ThreeAtomShape::Other);
    }

    #[test]
    fn repeated_relations_lists_all() {
        let q = parse_query("R(x,y), R(y,z), S(z,w), S(w,u)").unwrap();
        let rep = repeated_relations(&q);
        assert_eq!(rep.len(), 2);
        assert!(single_self_join_relation(&q).is_none());
    }
}
