//! Catalogue of every named query appearing in the paper, together with the
//! complexity the paper assigns to it.
//!
//! The catalogue backs experiment E10 (the end-to-end classification table),
//! the Section 8 lookup used by the classifier for three-R-atom queries, and
//! a large number of tests.

use crate::parse_query;
use crate::query::Query;

/// The complexity the *paper* states for a named query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperClass {
    /// The paper proves membership in PTIME.
    PTime,
    /// The paper proves NP-completeness.
    NpComplete,
    /// The paper lists the query as an open problem.
    Open,
}

/// A named query from the paper with its published classification.
#[derive(Clone, Debug)]
pub struct NamedQuery {
    /// Identifier used throughout the paper (and this codebase).
    pub name: &'static str,
    /// Where in the paper the query appears.
    pub reference: &'static str,
    /// The query itself.
    pub query: Query,
    /// The complexity claimed by the paper.
    pub paper_class: PaperClass,
}

fn named(
    name: &'static str,
    reference: &'static str,
    text: &str,
    paper_class: PaperClass,
) -> NamedQuery {
    let query = parse_query(text)
        .unwrap_or_else(|e| panic!("catalogue query {name} failed to parse: {e}"))
        .with_name(name);
    NamedQuery {
        name,
        reference,
        query,
        paper_class,
    }
}

macro_rules! catalogue_accessors {
    ($( $fn_name:ident => ($name:literal, $reference:literal, $text:literal, $class:expr) ),+ $(,)?) => {
        $(
            #[doc = concat!("The paper query `", $name, "` (", $reference, ").")]
            pub fn $fn_name() -> NamedQuery {
                named($name, $reference, $text, $class)
            }
        )+

        /// Every named query of the paper, in the order it appears.
        pub fn all_named_queries() -> Vec<NamedQuery> {
            vec![ $( $fn_name() ),+ ]
        }
    };
}

catalogue_accessors! {
    // ---- Section 2: self-join-free background queries (Figure 1) ----
    q_triangle => ("q_triangle", "Example 2, Figure 1a",
        "R(x,y), S(y,z), T(z,x)", PaperClass::NpComplete),
    q_tripod => ("q_tripod", "Example 2, Figure 1b",
        "A(x), B(y), C(z), W(x,y,z)", PaperClass::NpComplete),
    q_rats => ("q_rats", "Example 2, Figure 1c",
        "R(x,y), A(x), T(z,x), S(y,z)", PaperClass::PTime),
    q_brats => ("q_brats", "Section 5.1",
        "B(y), R(x,y), A(x), T(z,x), S(y,z)", PaperClass::PTime),
    q_lin => ("q_lin", "Example 2, Figure 1d",
        "A(x), R(x,y,z), S(y,z)", PaperClass::PTime),

    // ---- Section 3.1: basic hard self-join queries (Figure 2) ----
    q_vc => ("q_vc", "Proposition 9, Figure 2",
        "R(x), S(x,y), R(y)", PaperClass::NpComplete),
    q_chain => ("q_chain", "Proposition 10, Figure 2",
        "R(x,y), R(y,z)", PaperClass::NpComplete),

    // ---- Section 3.3: easy queries needing trickier flow (Figure 3) ----
    q_acconf => ("q_ACconf", "Proposition 12, Figure 3a",
        "A(x), R(x,y), R(z,y), C(z)", PaperClass::PTime),
    q_a3perm_r => ("q_A3perm-R", "Proposition 13, Figure 3b",
        "A(x), R(x,y), R(y,z), R(z,y)", PaperClass::PTime),

    // ---- Section 4.2: components example ----
    q_comp => ("q_comp", "Section 4.2",
        "A(x), R(x,y), R(z,w), B(w)", PaperClass::PTime),

    // ---- Section 5.1: self-join variations of rats / brats ----
    q_sj1_rats => ("q_sj1rats", "Example 11 / Section 5.1",
        "A(x), R(x,y), R(y,z), R(z,x)", PaperClass::NpComplete),
    q_sj2_rats => ("q_sj2rats", "Lemma 50",
        "A(x), R(x,y), R(y,z), R(x,z)", PaperClass::NpComplete),
    q_sj1_brats => ("q_sj1brats", "Section 5.1",
        "B(y), R(x,y), A(x), R(z,x), R(y,z)", PaperClass::NpComplete),
    q_sj1_triangle => ("q_sj1triangle", "Example 20",
        "R(x,y), R(y,z), R(z,x)", PaperClass::NpComplete),
    q_sj2_triangle => ("q_sj2triangle", "Example 20",
        "R(x,y), R(y,z), T(z,x)", PaperClass::NpComplete),
    q_sj3_triangle => ("q_sj3triangle", "Example 20",
        "R(x,y), S(y,z), R(z,x)", PaperClass::NpComplete),

    // ---- Section 7.1: the eight unary expansions of q_chain ----
    q_achain => ("q_achain", "Lemma 53",
        "A(x), R(x,y), R(y,z)", PaperClass::NpComplete),
    q_bchain => ("q_bchain", "Lemma 52",
        "R(x,y), B(y), R(y,z)", PaperClass::NpComplete),
    q_cchain => ("q_cchain", "Lemma 53",
        "R(x,y), R(y,z), C(z)", PaperClass::NpComplete),
    q_abchain => ("q_abchain", "Lemma 53",
        "A(x), R(x,y), B(y), R(y,z)", PaperClass::NpComplete),
    q_bcchain => ("q_bcchain", "Lemma 53",
        "R(x,y), B(y), R(y,z), C(z)", PaperClass::NpComplete),
    q_acchain => ("q_acchain", "Lemma 54",
        "A(x), R(x,y), R(y,z), C(z)", PaperClass::NpComplete),
    q_abcchain => ("q_abcchain", "Lemma 54",
        "A(x), R(x,y), B(y), R(y,z), C(z)", PaperClass::NpComplete),

    // ---- Section 7.2: confluences ----
    q_cfp => ("cfp", "Section 7.2",
        "R(x,y), H^x(x,z), R(z,y)", PaperClass::NpComplete),

    // ---- Section 7.3: permutations ----
    q_perm => ("q_perm", "Proposition 33",
        "R(x,y), R(y,x)", PaperClass::PTime),
    q_aperm => ("q_Aperm", "Proposition 33",
        "A(x), R(x,y), R(y,x)", PaperClass::PTime),
    q_abperm => ("q_ABperm", "Proposition 34",
        "A(x), R(x,y), R(y,x), B(y)", PaperClass::NpComplete),

    // ---- Section 7.4: repeated variables (REP) ----
    z1 => ("z1", "Section 7.4",
        "R(x,x), S(x,y), R(y,y)", PaperClass::NpComplete),
    z2 => ("z2", "Section 7.4",
        "R(x,x), S(x,y), R(y,z)", PaperClass::NpComplete),
    z3 => ("z3", "Proposition 36",
        "R(x,x), R(x,y), A(y)", PaperClass::PTime),

    // ---- Section 8.1: 3-chains ----
    q_3chain => ("q_3chain", "Proposition 38",
        "R(x,y), R(y,z), R(z,w)", PaperClass::NpComplete),

    // ---- Section 8.2: 3-confluences (Figure 7) ----
    q_ac3conf => ("q_AC3conf", "Proposition 39, Figure 7a",
        "A(x), R(x,y), R(z,y), R(z,w), C(w)", PaperClass::NpComplete),
    q_ts3conf => ("q_TS3conf", "Proposition 41, Figure 7b",
        "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)", PaperClass::PTime),
    q_as3conf => ("q_AS3conf", "Open problem, Figure 7c",
        "A(x), R(x,y), R(z,y), R(z,w), S^x(z,w)", PaperClass::Open),

    // ---- Section 8.3: chain-confluence mixes ----
    q_ac3cc => ("q_AC3cc", "Proposition 42",
        "A(x), R(x,y), R(y,z), R(w,z), C(w)", PaperClass::NpComplete),
    q_as3cc => ("q_AS3cc", "Proposition 42",
        "A(x), R(x,y), R(y,z), R(w,z), S(w,z)", PaperClass::NpComplete),
    q_c3cc => ("q_C3cc", "Proposition 43",
        "R(x,y), R(y,z), R(w,z), C(w)", PaperClass::NpComplete),
    q_s3cc => ("q_S3cc", "Open problem, Section 8.3",
        "R(x,y), R(y,z), R(w,z), S(w,z)", PaperClass::Open),

    // ---- Section 8.4: permutation plus R ----
    q_swx3perm_r => ("q_Swx3perm-R", "Proposition 44",
        "S(w,x), R(x,y), R(y,z), R(z,y)", PaperClass::PTime),
    q_sxy3perm_r => ("q_Sxy3perm-R", "Proposition 45",
        "S^x(x,y), R(x,y), R(y,z), R(z,y)", PaperClass::NpComplete),
    q_ac3perm_r => ("q_AC3perm-R", "Proposition 46",
        "A(x), R(x,y), R(y,z), R(z,y), C(z)", PaperClass::NpComplete),
    q_ab3perm_r => ("q_AB3perm-R", "Proposition 46",
        "A(x), R(x,y), B(y), R(y,z), R(z,y)", PaperClass::NpComplete),
    q_sxybc3perm_r => ("q_SxyBC3perm-R", "Proposition 46",
        "S(x,y), R(x,y), B(y), R(y,z), R(z,y), C(z)", PaperClass::NpComplete),
    q_asxy3perm_r => ("q_ASxy3perm-R", "Open problem, Section 8.4",
        "A(x), S(x,y), R(x,y), R(y,z), R(z,y)", PaperClass::Open),
    q_sxyb3perm_r => ("q_SxyB3perm-R", "Open problem, Section 8.4",
        "S(x,y), R(x,y), B(y), R(y,z), R(z,y)", PaperClass::Open),
    q_sxyc3perm_r => ("q_SxyC3perm-R", "Open problem, Section 8.4",
        "S(x,y), R(x,y), R(y,z), R(z,y), C(z)", PaperClass::Open),

    // ---- Section 8.5: three R-atoms with repeated variables ----
    z4 => ("z4", "Proposition 47",
        "R(x,x), R(x,y), S(x,y), R(y,y)", PaperClass::NpComplete),
    z5 => ("z5", "Proposition 47 / Example 60",
        "A(x), R(x,y), R(y,z), R(z,z)", PaperClass::NpComplete),
    z6 => ("z6", "Open problem, Section 8.5",
        "A(x), R(x,y), R(y,y), R(y,z), C(z)", PaperClass::Open),
    z7 => ("z7", "Open problem, Section 8.5",
        "A(x), R(x,y), R(y,x), R(y,y)", PaperClass::Open),
}

/// Looks up a named query by its paper name (case-sensitive).
pub fn by_name(name: &str) -> Option<NamedQuery> {
    all_named_queries().into_iter().find(|nq| nq.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::normalize;
    use crate::homomorphism::{is_minimal, minimize};
    use crate::triad::has_triad;

    #[test]
    fn catalogue_parses_and_is_well_formed() {
        let all = all_named_queries();
        assert!(
            all.len() >= 40,
            "expected a large catalogue, got {}",
            all.len()
        );
        for nq in &all {
            assert!(nq.query.validate().is_ok(), "{} invalid", nq.name);
            assert!(nq.query.num_atoms() >= 1);
        }
    }

    #[test]
    fn names_are_unique() {
        let all = all_named_queries();
        let mut names: Vec<&str> = all.iter().map(|n| n.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("q_chain").is_some());
        assert!(by_name("q_ABperm").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn catalogue_queries_are_minimal() {
        // The paper assumes minimal queries (Section 4.1); every catalogue
        // entry is already minimal as a stand-alone query.
        for nq in all_named_queries() {
            assert!(
                is_minimal(&nq.query),
                "{} should be minimal but minimizes to {}",
                nq.name,
                minimize(&nq.query)
            );
        }
    }

    #[test]
    fn binary_and_ssj_flags_match_the_papers_fragment() {
        for nq in all_named_queries() {
            // Everything except q_lin and q_tripod is a binary query.
            if matches!(nq.name, "q_lin" | "q_tripod") {
                assert!(!nq.query.is_binary(), "{}", nq.name);
            } else {
                assert!(nq.query.is_binary(), "{}", nq.name);
            }
            // Single-self-join holds for the entire catalogue.
            assert!(nq.query.is_single_self_join(), "{}", nq.name);
        }
    }

    #[test]
    fn triad_status_of_flagship_queries() {
        assert!(has_triad(&normalize(&q_triangle().query)));
        assert!(has_triad(&normalize(&q_tripod().query)));
        assert!(has_triad(&normalize(&q_sj1_rats().query)));
        assert!(!has_triad(&normalize(&q_rats().query)));
        assert!(!has_triad(&normalize(&q_chain().query)));
        assert!(!has_triad(&normalize(&q_abperm().query)));
    }

    #[test]
    fn paper_class_distribution_is_sensible() {
        let all = all_named_queries();
        let hard = all
            .iter()
            .filter(|n| n.paper_class == PaperClass::NpComplete)
            .count();
        let easy = all
            .iter()
            .filter(|n| n.paper_class == PaperClass::PTime)
            .count();
        let open = all
            .iter()
            .filter(|n| n.paper_class == PaperClass::Open)
            .count();
        assert!(hard >= 20, "hard = {hard}");
        assert!(easy >= 10, "easy = {easy}");
        assert!(open >= 5, "open = {open}");
    }
}
