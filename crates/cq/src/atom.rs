//! Atoms (subgoals) of a conjunctive query.

use crate::ids::{RelId, Var};

/// A single atom `R(z_1, ..., z_k)` of a Boolean conjunctive query.
///
/// Atoms carry an *endogenous/exogenous* flag (Section 2): exogenous atoms
/// provide context and their tuples may never be placed in a contingency set.
/// The paper writes exogenous atoms with a superscript `x`, e.g. `W^x(x,y,z)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol of this atom.
    pub relation: RelId,
    /// The argument list; variables may repeat (e.g. `R(x,x)`).
    pub args: Vec<Var>,
    /// `true` if the atom is exogenous (not deletable).
    pub exogenous: bool,
}

impl Atom {
    /// Creates an endogenous atom.
    pub fn new(relation: RelId, args: Vec<Var>) -> Self {
        Atom {
            relation,
            args,
            exogenous: false,
        }
    }

    /// Creates an exogenous atom.
    pub fn exogenous(relation: RelId, args: Vec<Var>) -> Self {
        Atom {
            relation,
            args,
            exogenous: true,
        }
    }

    /// Arity of the atom (length of the argument list).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The *set* of variables occurring in the atom, deduplicated and sorted.
    ///
    /// This is `var(g)` in the paper's notation.
    pub fn var_set(&self) -> Vec<Var> {
        let mut vs = self.args.clone();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Whether the variable `v` occurs anywhere in the argument list.
    pub fn contains_var(&self, v: Var) -> bool {
        self.args.contains(&v)
    }

    /// Whether the atom repeats a variable, e.g. `R(x,x)` (the paper's REP
    /// condition applies when a self-join atom has a repeated variable).
    pub fn has_repeated_var(&self) -> bool {
        let vs = self.var_set();
        vs.len() < self.args.len()
    }

    /// Positions (0-based) at which variable `v` occurs.
    pub fn positions_of(&self, v: Var) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == v).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_set_dedups_and_sorts() {
        let a = Atom::new(RelId(0), vec![Var(3), Var(1), Var(3)]);
        assert_eq!(a.var_set(), vec![Var(1), Var(3)]);
        assert_eq!(a.arity(), 3);
        assert!(a.has_repeated_var());
    }

    #[test]
    fn no_repeated_var() {
        let a = Atom::new(RelId(0), vec![Var(0), Var(1)]);
        assert!(!a.has_repeated_var());
        assert!(a.contains_var(Var(0)));
        assert!(!a.contains_var(Var(2)));
    }

    #[test]
    fn exogenous_constructor_sets_flag() {
        let a = Atom::exogenous(RelId(1), vec![Var(0)]);
        assert!(a.exogenous);
        let b = Atom::new(RelId(1), vec![Var(0)]);
        assert!(!b.exogenous);
    }

    #[test]
    fn positions_of_reports_all_occurrences() {
        let a = Atom::new(RelId(0), vec![Var(2), Var(5), Var(2)]);
        assert_eq!(a.positions_of(Var(2)), vec![0, 2]);
        assert_eq!(a.positions_of(Var(5)), vec![1]);
        assert!(a.positions_of(Var(9)).is_empty());
    }
}
