//! Conjunctive-query substrate for the resilience library.
//!
//! This crate implements every *query-side* notion used by the paper
//! "New Results for the Complexity of Resilience for Binary Conjunctive
//! Queries with Self-Joins" (PODS 2020):
//!
//! * the data model of Boolean conjunctive queries with endogenous and
//!   exogenous atoms ([`Query`], [`Atom`], [`Schema`]);
//! * a small Datalog-style parser ([`parse_query`]);
//! * query homomorphisms, containment, equivalence and minimization
//!   ([`homomorphism`]);
//! * the dual hypergraph and its path/connectivity machinery
//!   ([`hypergraph`]);
//! * the binary graph of a binary query (Definition 8, [`binary_graph`]);
//! * self-join-free domination (Definition 3) and self-join domination
//!   (Definition 16) with the induced normal form ([`domination`]);
//! * triad detection (Definition 5, [`triad`]);
//! * linearity and pseudo-linearity tests (Section 2.4 and Theorem 25,
//!   [`linear`]);
//! * the self-join pattern analysis of Sections 6–8: paths, chains,
//!   confluences, permutations and repeated-variable (REP) patterns
//!   ([`patterns`]);
//! * the dichotomy classifier of Theorem 37 extended with the Section 8
//!   catalogue ([`mod@classify`]);
//! * a catalogue of every named query appearing in the paper
//!   ([`catalogue`]).
//!
//! The crate is dependency-free and purely combinatorial: databases and
//! resilience computations live in the `database` and `resilience-core`
//! crates.

pub mod atom;
pub mod binary_graph;
pub mod canon;
pub mod catalogue;
pub mod classify;
pub mod domination;
pub mod homomorphism;
pub mod hypergraph;
pub mod ids;
pub mod linear;
pub mod parse;
pub mod patterns;
pub mod query;
pub mod schema;
pub mod triad;

pub use atom::Atom;
pub use canon::{
    canonicalize, canonicalize_with_budget, shape_isomorphic, CanonKey, CanonicalQuery,
};
pub use classify::{
    classify, structurally_isomorphic, Classification, Complexity, Evidence, HardnessReason,
    PtimeAlgorithm,
};
pub use ids::{RelId, Var};
pub use parse::{parse_query, ParseError};
pub use query::{Query, QueryBuilder};
pub use schema::{RelationDecl, Schema};
