//! Triads (Definition 5): the structure responsible for hardness of
//! self-join-free queries, which Theorem 24 shows remains a hardness
//! criterion in the presence of self-joins.
//!
//! A *triad* is a set of three endogenous atoms `{S0, S1, S2}` such that for
//! every pair `i, j` there is a path from `S_i` to `S_j` in the dual
//! hypergraph `H(q)` that uses no variable occurring in the third atom.

use crate::hypergraph::DualHypergraph;
use crate::ids::Var;
use crate::query::Query;
use std::collections::HashSet;

/// A triad, reported as the three atom indices (sorted ascending).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Triad {
    /// Indices of the three endogenous atoms forming the triad.
    pub atoms: [usize; 3],
}

/// Checks whether the specific triple of endogenous atoms forms a triad.
pub fn is_triad(q: &Query, h: &DualHypergraph, triple: [usize; 3]) -> bool {
    for &atom_idx in &triple {
        if q.atom(atom_idx).exogenous {
            return false;
        }
    }
    // Distinctness.
    if triple[0] == triple[1] || triple[1] == triple[2] || triple[0] == triple[2] {
        return false;
    }
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let other = 3 - i - j;
            let forbidden: HashSet<Var> = q.atom_var_set(triple[other]).into_iter().collect();
            if !h.has_path_avoiding(triple[i], triple[j], &forbidden, &HashSet::new()) {
                return false;
            }
        }
    }
    true
}

/// Finds one triad of `q` if any exists.
///
/// Triads should be searched for on the *normal form* of the query (all
/// dominated relations exogenous, see [`crate::domination::normalize`]);
/// this function works on whatever labelling `q` carries.
pub fn find_triad(q: &Query) -> Option<Triad> {
    let endo = q.endogenous_atoms();
    if endo.len() < 3 {
        return None;
    }
    let h = DualHypergraph::new(q);
    for a in 0..endo.len() {
        for b in (a + 1)..endo.len() {
            for c in (b + 1)..endo.len() {
                let triple = [endo[a], endo[b], endo[c]];
                if is_triad(q, &h, triple) {
                    return Some(Triad { atoms: triple });
                }
            }
        }
    }
    None
}

/// Convenience wrapper: does `q` contain a triad?
pub fn has_triad(q: &Query) -> bool {
    find_triad(q).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::normalize;
    use crate::parse_query;

    #[test]
    fn triangle_has_triad() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let t = find_triad(&q).expect("triangle must have a triad");
        assert_eq!(t.atoms, [0, 1, 2]);
    }

    #[test]
    fn tripod_has_triad_after_normalization() {
        // q_T :- A(x), B(y), C(z), W(x,y,z): the triad is {A, B, C}, visible
        // once W is exogenous (it is dominated by A).
        let q = parse_query("A(x), B(y), C(z), W(x,y,z)").unwrap();
        let n = normalize(&q);
        let t = find_triad(&n).expect("tripod must have a triad");
        assert_eq!(t.atoms, [0, 1, 2]);
    }

    #[test]
    fn rats_has_no_triad_after_normalization() {
        // q_rats: A dominates R and T, so only two endogenous atoms remain.
        let q = parse_query("R(x,y), A(x), T(z,x), S(y,z)").unwrap();
        let n = normalize(&q);
        assert!(find_triad(&n).is_none());
        // Without normalization the raw query *looks* like it has a triad,
        // which is exactly the subtlety of Figure 1c.
        assert!(find_triad(&q).is_some());
    }

    #[test]
    fn linear_query_has_no_triad() {
        let q = parse_query("A(x), R(x,y), S(y,z), C(z)").unwrap();
        assert!(!has_triad(&q));
    }

    #[test]
    fn sj1_rats_has_triad() {
        // q_sj1rats :- A(x), R(x,y), R(y,z), R(z,x): the three R-atoms form a
        // triad and are not dominated (Section 5.1).
        let q = parse_query("A(x), R(x,y), R(y,z), R(z,x)").unwrap();
        let n = normalize(&q);
        let t = find_triad(&n).expect("self-join variation of rats has a triad");
        assert_eq!(t.atoms, [1, 2, 3]);
    }

    #[test]
    fn sj1_brats_has_triad() {
        let q = parse_query("B(y), R(x,y), A(x), R(z,x), R(y,z)").unwrap();
        let n = normalize(&q);
        assert!(has_triad(&n));
    }

    #[test]
    fn chain_query_has_no_triad() {
        let q = parse_query("R(x,y), R(y,z)").unwrap();
        assert!(!has_triad(&q));
    }

    #[test]
    fn exogenous_atoms_cannot_be_triad_members() {
        let q = parse_query("R^x(x,y), S(y,z), T(z,x)").unwrap();
        assert!(!has_triad(&q));
    }

    #[test]
    fn is_triad_rejects_duplicate_indices() {
        let q = parse_query("R(x,y), S(y,z), T(z,x)").unwrap();
        let h = DualHypergraph::new(&q);
        assert!(!is_triad(&q, &h, [0, 0, 1]));
    }

    #[test]
    fn triad_requires_robust_connectivity() {
        // A star query: S0, S1, S2 all share the single variable x, so every
        // path between two of them must use x which occurs in the third atom.
        let q = parse_query("A(x), B(x), C(x)").unwrap();
        assert!(!has_triad(&q));
    }

    #[test]
    fn four_atom_query_with_embedded_triangle() {
        let q = parse_query("R(x,y), S(y,z), T(z,x), U(x,w)").unwrap();
        let t = find_triad(&q).unwrap();
        assert_eq!(t.atoms, [0, 1, 2]);
    }
}
