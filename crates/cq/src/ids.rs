//! Lightweight interned identifiers for variables and relation symbols.
//!
//! Both [`Var`] and [`RelId`] are plain `u32` newtypes: queries are tiny
//! (a handful of atoms), but the structures built on top of them (witness
//! hypergraphs, flow networks, hitting-set searches) iterate over them in hot
//! loops, so they should be `Copy`, hashable and cheap to compare.

use std::fmt;

/// An existential variable of a Boolean conjunctive query.
///
/// Variables are indices into the owning [`crate::Query`]'s variable table;
/// they are only meaningful relative to that query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A relation symbol of the vocabulary.
///
/// Relation ids are indices into the owning [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct RelId(pub u32);

impl RelId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn var_index_roundtrip() {
        assert_eq!(Var(7).index(), 7);
        assert_eq!(RelId(3).index(), 3);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(Var(1));
        set.insert(Var(1));
        set.insert(Var(2));
        assert_eq!(set.len(), 2);
        assert!(Var(1) < Var(2));
        assert!(RelId(0) < RelId(9));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", Var(4)), "v4");
        assert_eq!(format!("{:?}", RelId(2)), "rel2");
    }
}
